//! The paper's motivating network-management analyses (§1), expressed as
//! GMDJ queries over distributed NetFlow-style data:
//!
//! 1. "On an hourly basis, what fraction of the total number of flows is
//!    due to Web traffic?"
//! 2. "On an hourly basis, what fraction of the total traffic flowing into
//!    the network is from IP subnets whose total hourly traffic is within
//!    10% of the maximum?"
//!
//! Both are *correlated aggregate* queries: the second aggregate is guarded
//! by a condition over the first. Run with:
//! `cargo run --example ip_flow_analysis`

use skalla::prelude::*;

/// Build a synthetic flow table: 5 routers × 24 hours of traffic.
fn flow_table(schema: &std::sync::Arc<Schema>) -> Result<Table, SkallaError> {
    let mut rows = Vec::new();
    // Deterministic pseudo-random mix of web and non-web traffic.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for router in 0..5i64 {
        for hour in 0..24i64 {
            let flows = 40 + (next() % 40) as i64;
            for _ in 0..flows {
                let web = next() % 100 < 60; // ~60% web traffic
                let port = if web {
                    80
                } else {
                    1024 + (next() % 40000) as i64
                };
                let subnet = (next() % 32) as i64;
                let bytes = 200 + (next() % 100_000) as i64;
                rows.push(vec![
                    Value::Int(router),
                    Value::Int(hour),
                    Value::Int(subnet),
                    Value::Int(port),
                    Value::Int(bytes),
                ]);
            }
        }
    }
    Table::from_rows(schema.clone(), &rows)
}

fn main() -> Result<(), SkallaError> {
    let schema = Schema::from_pairs([
        ("router", DataType::Int64),
        ("hour", DataType::Int64),
        ("subnet", DataType::Int64),
        ("dstport", DataType::Int64),
        ("bytes", DataType::Int64),
    ])?
    .into_arc();
    let flow = flow_table(&schema)?;

    // One local warehouse adjacent to each router (the paper's deployment
    // model): router is the partition attribute.
    let parts = partition_by_values(
        &flow,
        0,
        &(0..5)
            .map(|r| (Value::Int(r), r as usize))
            .collect::<Vec<_>>(),
        5,
    )?;
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let dist = DistributionInfo::from_partitioning(&parts);
    let wh = DistributedWarehouse::launch(catalogs, CostModel::lan_2002())?;
    let schemas = std::collections::HashMap::from([("flow".to_string(), schema)]);

    // ---------------------------------------------------------- question 1
    // Hourly web-traffic fraction: per hour, COUNT all flows and COUNT the
    // flows with dstport 80; the fraction is cnt_web / cnt_all.
    let q1 = parse_query(
        "BASE DISTINCT hour FROM flow;
         MD COUNT(*) AS cnt_all WHERE b.hour = r.hour;
         MD COUNT(*) AS cnt_web WHERE b.hour = r.hour AND r.dstport = 80;",
        &schemas,
    )?;
    let (plan, report) = plan_query(&q1, &dist, OptFlags::all())?;
    let (result, metrics) = wh.execute(&plan)?;
    println!("Q1: hourly web-traffic fraction");
    println!(
        "  plan: {} coalescing step(s), {} synchronization(s)",
        report.coalesce_steps, report.num_synchronizations
    );
    for row in result.sorted().rows().iter().take(5) {
        let hour = row[0].as_int()?;
        let all = row[1].as_int()? as f64;
        let web = row[2].as_int()? as f64;
        println!(
            "  hour {hour:>2}: {:.1}% web ({} flows)",
            100.0 * web / all,
            all as i64
        );
    }
    println!("  … ({} hours) | {}", result.len(), metrics.summary());

    // ---------------------------------------------------------- question 2
    // Per hour: total traffic, the maximum per-subnet hourly traffic, and
    // the traffic from subnets within 10% of that maximum.
    //
    // Stage A (inner grouping): per (hour, subnet), SUM(bytes).
    let q2a = parse_query(
        "BASE DISTINCT hour, subnet FROM flow;
         MD SUM(bytes) AS subnet_bytes WHERE b.hour = r.hour AND b.subnet = r.subnet;",
        &schemas,
    )?;
    let (plan_a, _) = plan_query(&q2a, &dist, OptFlags::all())?;
    let (per_subnet, _) = wh.execute(&plan_a)?;

    // Stage B (outer grouping): per hour over the *stage-A result* as an
    // explicit base-side relation — MAX(subnet_bytes) per hour, computed at
    // the coordinator, then a distributed pass counts the heavy traffic.
    let mut hour_max: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    let mut hour_total: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    for row in per_subnet.rows() {
        let hour = row[0].as_int()?;
        let sb = row[2].as_int()?;
        let e = hour_max.entry(hour).or_insert(0);
        *e = (*e).max(sb);
        *hour_total.entry(hour).or_insert(0) += sb;
    }

    // Heavy subnets: subnet_bytes >= 0.9 * max for that hour.
    println!("\nQ2: traffic share of subnets within 10% of the hourly maximum");
    for (hour, max) in hour_max.iter().take(5) {
        let threshold = 0.9 * *max as f64;
        let heavy: i64 = per_subnet
            .rows()
            .iter()
            .filter(|r| r[0] == Value::Int(*hour))
            .filter(|r| r[2].as_int().unwrap() as f64 >= threshold)
            .map(|r| r[2].as_int().unwrap())
            .sum();
        let total = hour_total[hour];
        println!(
            "  hour {hour:>2}: {:.1}% of traffic from near-peak subnets (max {max} B)",
            100.0 * heavy as f64 / total as f64
        );
    }

    // Cross-check stage A against the centralized reference.
    let mut full = Catalog::new();
    full.register("flow", flow);
    assert_eq!(
        per_subnet.sorted(),
        eval_expr_centralized(&q2a, &full)?.sorted()
    );
    println!("\ndistributed results match the centralized reference ✓");

    wh.shutdown()?;
    Ok(())
}
