//! Data cubes, rollups, and marginal distributions over a distributed
//! warehouse — the OLAP constructs the paper's introduction cites (Gray et
//! al.'s CUBE, the unpivot operator), expressed as GMDJ expressions and
//! evaluated by Skalla without ever shipping detail data.
//!
//! Run with: `cargo run --example datacube`

use skalla::gmdj::{build_cube_base, build_rollup_base, cube_expr, rollup_expr, unpivot_expr};
use skalla::prelude::*;
use skalla::tpcr::{self, EXTENDEDPRICE_COL};

fn main() -> Result<(), SkallaError> {
    // TPCR sales data across 4 sites.
    let config = tpcr::TpcrConfig::scale(0.05);
    let table = tpcr::generate(&config);
    let parts = tpcr::partition_by_nation(&table, 4)?;
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("tpcr", p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::lan_2002())?;

    let region = table.schema().index_of("regionname")?;
    let segment = table.schema().index_of("mktsegment")?;
    let returnflag = table.schema().index_of("returnflag")?;

    // ------------------------------------------------------------- the cube
    // CUBE BY (regionname, mktsegment): revenue at every granularity. The
    // cube base is assembled at the coordinator from warehouse metadata;
    // the single GMDJ computes every cell in one distributed round.
    let base = build_cube_base(&table, table.schema(), &[region, segment])?;
    println!(
        "cube base: {} cells over (regionname, mktsegment)",
        base.len()
    );
    let cube = cube_expr(
        base,
        "tpcr",
        &[region, segment],
        vec![
            AggSpec::count_star("orders"),
            AggSpec::sum(Expr::detail(EXTENDEDPRICE_COL), "revenue")?,
        ],
    )?;
    let (cells, metrics) = wh.execute(&DistPlan::unoptimized(cube))?;
    println!("cube computed: {}", metrics.summary());

    // Show the region-level slice (mktsegment = ALL).
    println!("\nrevenue by region (segment = ALL):");
    let mut slice: Vec<_> = cells
        .rows()
        .iter()
        .filter(|r| !r[0].is_null() && r[1].is_null())
        .collect();
    slice.sort_by(|a, b| a[0].cmp(&b[0]));
    for row in slice {
        println!(
            "  {:<12} {:>6} orders  {:>14.2}",
            row[0],
            row[2],
            row[3].as_f64()?
        );
    }
    let grand = cells
        .rows()
        .iter()
        .find(|r| r[0].is_null() && r[1].is_null())
        .expect("grand total cell");
    println!(
        "  {:<12} {:>6} orders  {:>14.2}",
        "ALL",
        grand[2],
        grand[3].as_f64()?
    );

    // ------------------------------------------------------------ the rollup
    let rbase = build_rollup_base(&table, table.schema(), &[region, segment])?;
    let rollup = rollup_expr(
        rbase,
        "tpcr",
        &[region, segment],
        vec![AggSpec::avg(Expr::detail(EXTENDEDPRICE_COL), "avg_price")?],
    )?;
    let (rcells, _) = wh.execute(&DistPlan::unoptimized(rollup))?;
    println!(
        "\nrollup: {} hierarchical cells (vs {} in the full cube)",
        rcells.len(),
        cells.len()
    );

    // ----------------------------------------------------------- the unpivot
    // Marginal distributions of two categorical attributes in one query.
    let (unpivot, _) = unpivot_expr(&table, table.schema(), "tpcr", &[segment, returnflag])?;
    let (marginals, _) = wh.execute(&DistPlan::unoptimized(unpivot))?;
    println!("\nmarginal distribution of mktsegment:");
    let mut rows: Vec<_> = marginals
        .rows()
        .iter()
        .filter(|r| r[0] == Value::str("mktsegment"))
        .collect();
    rows.sort_by(|a, b| a[1].cmp(&b[1]));
    for row in rows {
        println!("  {:<12} {:>6}", row[1], row[2]);
    }

    // --------------------------------------------------------- verification
    let mut full = Catalog::new();
    full.register("tpcr", table.clone());
    let base = build_cube_base(&table, table.schema(), &[region, segment])?;
    let cube2 = cube_expr(
        base,
        "tpcr",
        &[region, segment],
        vec![
            AggSpec::count_star("orders"),
            AggSpec::sum(Expr::detail(EXTENDEDPRICE_COL), "revenue")?,
        ],
    )?;
    // Distributed SUM adds per-site partial sums, so float totals differ
    // from the centralized row-order sum by rounding — compare cells with
    // a relative tolerance.
    let reference = eval_expr_centralized(&cube2, &full)?.sorted();
    let got = cells.sorted();
    assert_eq!(got.len(), reference.len());
    for (a, b) in got.rows().iter().zip(reference.rows()) {
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
        assert_eq!(a[2], b[2]); // counts are exact
        let (x, y) = (a[3].as_f64()?, b[3].as_f64()?);
        assert!((x - y).abs() <= 1e-9 * y.abs().max(1.0), "{x} vs {y}");
    }
    println!("\ndistributed cube matches the centralized reference ✓");

    wh.shutdown()?;
    Ok(())
}
