//! A tour of the Egil optimizer: how each of the paper's §4 analyses
//! reacts to query shape and distribution knowledge.
//!
//! Run with: `cargo run --example optimizer_tour`

use std::collections::HashMap;

use skalla::prelude::*;

fn show(title: &str, query: &GmdjExpr, dist: &DistributionInfo, flags: OptFlags) {
    let (plan, report) = plan_query(query, dist, flags).expect("plan");
    println!("── {title}");
    println!("{}", report.render());
    println!("   segments: {:?}\n", plan.segments());
}

fn main() -> Result<(), SkallaError> {
    let schema = Schema::from_pairs([
        ("sas", DataType::Int64),
        ("das", DataType::Int64),
        ("nb", DataType::Int64),
    ])?
    .into_arc();
    let schemas = HashMap::from([("flow".to_string(), schema)]);

    // A partitioned deployment: 4 sites, sas ranges [0,9], [10,19], ….
    let constrained = DistributionInfo::with_constraints(
        4,
        Some(0),
        true,
        (0..4)
            .map(|i| {
                SiteConstraint::none()
                    .with_range(0, Interval::closed(i as f64 * 10.0, i as f64 * 10.0 + 9.0))
            })
            .collect(),
    )?;
    let unknown = DistributionInfo::unknown(4);

    // 1. The correlated query (paper Example 1): not coalescible, but with
    //    a partition attribute the whole chain collapses to one sync.
    let correlated = parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS cnt1, SUM(nb) AS sum1 WHERE b.sas = r.sas AND b.das = r.das;
         MD COUNT(*) AS cnt2 WHERE b.sas = r.sas AND b.das = r.das
                               AND r.nb >= b.sum1 / b.cnt1;",
        &schemas,
    )?;
    show(
        "correlated query, full knowledge (Example 5: one synchronization)",
        &correlated,
        &constrained,
        OptFlags::all(),
    );
    show(
        "correlated query, no distribution knowledge (Prop. 1 only)",
        &correlated,
        &unknown,
        OptFlags::all(),
    );

    // 2. Independent GMDJs: coalescing fires (θ₂ ignores MD₁'s outputs).
    let independent = parse_query(
        "BASE DISTINCT sas FROM flow;
         MD COUNT(*) AS cnt_all WHERE b.sas = r.sas;
         MD SUM(nb) AS big_bytes WHERE b.sas = r.sas AND r.nb > 1000;",
        &schemas,
    )?;
    show(
        "independent GMDJs (coalescing, §4.3)",
        &independent,
        &unknown,
        OptFlags::all(),
    );

    // 3. Theorem 4 in action: a linear-arithmetic condition. Site ranges on
    //    sas turn `b.das + b.sas < r.sas * 2` into per-site base filters
    //    like `b.das + b.sas < 2·max(sasᵢ)` (the paper's Example 2 twist).
    let linear = parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS c WHERE b.das + b.sas < r.sas * 2;",
        &schemas,
    )?;
    show(
        "linear-arithmetic condition (Theorem 4 group reduction)",
        &linear,
        &constrained,
        OptFlags {
            coord_group_reduction: true,
            ..OptFlags::none()
        },
    );
    // Show the actual derived filter for site 0.
    let (plan, _) = plan_query(
        &linear,
        &constrained,
        OptFlags {
            coord_group_reduction: true,
            ..OptFlags::none()
        },
    )?;
    if let Some(filters) = &plan.rounds[0].coord_filters {
        for (i, f) in filters.iter().enumerate() {
            println!("   site {i} base filter: {f}");
        }
        println!();
    }

    // 4. Grouping on a non-partitioned attribute: Corollary 1 cannot mark
    //    inter-round synchronizations local-only (multiple sites update the
    //    same group), but Proposition 2 still eliminates the base
    //    synchronization, and the distribution-independent reduction
    //    remains available.
    let non_partition = parse_query(
        "BASE DISTINCT das FROM flow;
         MD COUNT(*) AS c1 WHERE b.das = r.das;
         MD SUM(nb) AS s2 WHERE b.das = r.das AND r.nb > 500;",
        &schemas,
    )?;
    show(
        "grouping on a non-partition attribute (das): Prop. 2 only",
        &non_partition,
        &constrained,
        OptFlags {
            sync_reduction: true,
            site_group_reduction: true,
            ..OptFlags::none()
        },
    );

    Ok(())
}
