//! Quickstart: build a tiny distributed warehouse, run the paper's
//! Example 1 query, and inspect the cost breakdown.
//!
//! Run with: `cargo run --example quickstart`

use std::collections::HashMap;

use skalla::prelude::*;

fn main() -> Result<(), SkallaError> {
    // ----------------------------------------------------------------- data
    // The paper's running example: IP flow records. Each router dumps one
    // tuple per flow; RouterId (here: SourceAS) is the partition attribute.
    let schema = Schema::from_pairs([
        ("sas", DataType::Int64), // source autonomous system
        ("das", DataType::Int64), // destination autonomous system
        ("nb", DataType::Int64),  // NumBytes
    ])?
    .into_arc();

    let mut rows = Vec::new();
    for i in 0..1000i64 {
        rows.push(vec![
            Value::Int(i % 8),       // sas
            Value::Int((i * 7) % 5), // das
            Value::Int(64 + (i * 37) % 1400),
        ]);
    }
    let flow = Table::from_rows(schema.clone(), &rows)?;

    // Partition across 4 sites on the source AS — every flow from a given
    // AS is captured by the same router.
    let parts = partition_by_hash(&flow, 0, 4)?;
    println!(
        "partitioned {} flows across {} sites",
        flow.len(),
        parts.num_sites()
    );

    // ---------------------------------------------------------------- query
    // Paper Example 1: per (sas, das), the total number of flows and the
    // number of flows whose NumBytes exceeds the group average.
    let query = parse_query(
        "BASE DISTINCT sas, das FROM flow KEY sas, das;
         MD COUNT(*) AS cnt1, SUM(nb) AS sum1
            WHERE b.sas = r.sas AND b.das = r.das;
         MD COUNT(*) AS cnt2
            WHERE b.sas = r.sas AND b.das = r.das AND r.nb >= b.sum1 / b.cnt1;",
        &HashMap::from([("flow".to_string(), schema)]),
    )?;
    println!("\nquery: {query}");

    // ----------------------------------------------------------------- plan
    let dist = DistributionInfo::from_partitioning(&parts);
    let (plan, report) = plan_query(&query, &dist, OptFlags::all())?;
    println!("\nEgil plan report:\n{}", report.render());

    // -------------------------------------------------------------- execute
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::lan_2002())?;
    let (result, metrics) = wh.execute(&plan)?;

    println!("\nfirst rows of the result ({} groups):", result.len());
    let preview = Relation::from_rows_unchecked(
        result.schema().clone(),
        result.sorted().rows().iter().take(6).cloned().collect(),
    );
    println!("{preview}");
    println!("execution: {}", metrics.summary());

    // ------------------------------------------------------------ cross-check
    let mut full = Catalog::new();
    full.register("flow", flow);
    let reference = eval_expr_centralized(&query, &full)?;
    assert_eq!(result.sorted(), reference.sorted());
    println!("\ndistributed result matches the centralized reference ✓");

    wh.shutdown()?;
    Ok(())
}
