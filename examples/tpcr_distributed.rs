//! Run the paper's TPC-R-style workload with every optimizer-flag
//! combination and compare costs — a miniature version of the §5
//! experimental study.
//!
//! Run with: `cargo run --release --example tpcr_distributed`

use skalla::prelude::*;
use skalla::tpcr::{self, CUSTNAME_COL, EXTENDEDPRICE_COL};

fn main() -> Result<(), SkallaError> {
    let n_sites = 4;
    let config = tpcr::TpcrConfig::scale(0.1); // 6000 rows, 100 customers
    let table = tpcr::generate(&config);
    let parts = tpcr::partition_by_nation(&table, n_sites)?;
    println!(
        "TPCR: {} tuples over {} sites ({} customers, partition attribute: nationkey)",
        table.len(),
        n_sites,
        config.num_customers
    );

    // The correlated query of the experiments: per customer, the number of
    // line items and the number priced at or above the customer's average.
    let query = {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::avg(Expr::detail(EXTENDEDPRICE_COL), "avg1")?,
            ],
            Expr::base(0).eq(Expr::detail(CUSTNAME_COL)),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            Expr::base(0)
                .eq(Expr::detail(CUSTNAME_COL))
                .and(Expr::detail(EXTENDEDPRICE_COL).ge(Expr::base(2))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject {
                cols: vec![CUSTNAME_COL],
            },
            "tpcr",
            vec![md1, md2],
            vec![0],
        )?
    };

    // Distribution knowledge anchored on the grouping attribute (custname
    // is functionally dependent on nationkey, hence partitioned).
    let reanchored = Partitioning {
        parts: parts.parts.clone(),
        partition_col: Some(CUSTNAME_COL),
    };
    let dist = DistributionInfo::from_partitioning(&reanchored);

    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("tpcr", p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::lan_2002())?;

    println!(
        "\n{:<28} {:>6} {:>12} {:>12} {:>11} {:>6}",
        "flags", "syncs", "bytes_down", "bytes_up", "modeled_s", "match"
    );

    let variants: Vec<(&str, OptFlags)> = vec![
        ("none", OptFlags::none()),
        (
            "site-reduction",
            OptFlags {
                site_group_reduction: true,
                ..OptFlags::none()
            },
        ),
        (
            "coord-reduction",
            OptFlags {
                coord_group_reduction: true,
                ..OptFlags::none()
            },
        ),
        (
            "sync-reduction",
            OptFlags {
                sync_reduction: true,
                ..OptFlags::none()
            },
        ),
        (
            "coalesce",
            OptFlags {
                coalesce: true,
                ..OptFlags::none()
            },
        ),
        ("all", OptFlags::all()),
    ];

    let mut reference: Option<Relation> = None;
    for (label, flags) in variants {
        let (plan, report) = plan_query(&query, &dist, flags)?;
        let (result, metrics) = wh.execute(&plan)?;
        let sorted = result.sorted();
        let matches = match &reference {
            None => {
                reference = Some(sorted);
                "ref"
            }
            Some(r) if *r == sorted => "ok",
            Some(_) => "MISMATCH",
        };
        println!(
            "{:<28} {:>6} {:>12} {:>12} {:>11.4} {:>6}",
            label,
            report.num_synchronizations,
            metrics.total_bytes_down(),
            metrics.total_bytes_up(),
            metrics.modeled_time_s(),
            matches
        );
        assert_ne!(matches, "MISMATCH", "optimization changed the result");
    }

    // The anti-baseline the paper argues against: shipping detail data.
    let (ship_result, ship_metrics) = wh.execute_ship_all(&query)?;
    assert_eq!(&ship_result.sorted(), reference.as_ref().unwrap());
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>11.4} {:>6}",
        "ship-all-detail (baseline)",
        "-",
        ship_metrics.total_bytes_down(),
        ship_metrics.total_bytes_up(),
        ship_metrics.modeled_time_s(),
        "ok"
    );

    wh.shutdown()?;
    println!("\nall plan variants agree; Skalla never ships detail data (Theorem 2)");
    Ok(())
}
