//! The `skalla` interactive shell.
//!
//! ```sh
//! cargo run -p skalla-cli                 # interactive
//! echo '...' | cargo run -p skalla-cli    # scripted
//! skalla --load 0.05 4                    # preload a warehouse
//! ```

use std::io::{self, BufRead, IsTerminal, Write};

use skalla_cli::{Outcome, Session};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut session = Session::new();

    // Optional --load <scale> <sites> preloads a warehouse.
    if let Some(i) = args.iter().position(|a| a == "--load") {
        let scale = args.get(i + 1).and_then(|a| a.parse().ok()).unwrap_or(0.05);
        let sites = args.get(i + 2).and_then(|a| a.parse().ok()).unwrap_or(4);
        match session.load_tpcr(scale, sites) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let stdin = io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        println!("Skalla distributed OLAP shell — \\help for commands");
    }

    loop {
        if interactive {
            let prompt = if session.in_query() {
                "     -> "
            } else {
                "skalla> "
            };
            print!("{prompt}");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                // EOF: flush any pending query, then exit.
                if session.in_query() {
                    if let Outcome::Continue(out) = session.handle_line("") {
                        if !out.is_empty() {
                            println!("{out}");
                        }
                    }
                }
                return;
            }
            Ok(_) => match session.handle_line(&line) {
                Outcome::Quit => return,
                Outcome::Continue(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
            },
            Err(e) => {
                eprintln!("input error: {e}");
                return;
            }
        }
    }
}
