//! The `skalla` interactive shell, serving endpoint, and client.
//!
//! ```sh
//! cargo run -p skalla-cli                 # interactive
//! echo '...' | cargo run -p skalla-cli    # scripted
//! skalla --load 0.05 4                    # preload a warehouse
//! skalla --fault-seed 7 --drop-rate 0.2 --load 0.05 4   # lossy network
//! skalla --crash-site 2:5 --load 0.05 4   # site 2 dies after 5 messages
//! skalla --replication 2 --load 0.05 4    # 2-way replicated partitions
//! skalla --skew on --replication 2 --load 0.05 4   # force skew-aware execution
//! skalla --checkpoint-dir /tmp/skalla --load 0.05 4   # round-granular WAL
//! skalla --data-dir /tmp/skalla-data --load 10 8      # out-of-core segment store
//! skalla --data-dir /tmp/d --disk-fault-seed 7 --bitflip-rate 0.5 --load 0.05 4  # flaky disks
//! skalla serve --listen 127.0.0.1:7878 --scale 0.05 --sites 4   # TCP server
//! skalla client --connect 127.0.0.1:7878  # remote shell over the server
//! ```

use std::io::{self, BufRead, IsTerminal, Write};
use std::path::PathBuf;

use skalla_cli::{render_preview, Outcome, Session};
use skalla_core::{CheckpointWal, DegradedMode};
use skalla_net::FaultPlan;
use skalla_serve::{ServeClient, ServeConfig, Server};

/// Parse `--fault-seed <n>`, `--drop-rate <r>`, and `--crash-site
/// <id>[:<after>]` into a [`FaultPlan`]. Returns `None` when no fault flag
/// is present; exits with a usage message on a malformed value.
fn fault_plan_from_args(args: &[String]) -> Option<FaultPlan> {
    let mut plan = FaultPlan::none();
    let mut any = false;
    let value = |flag: &str, i: usize| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        })
    };
    for (i, arg) in args.iter().enumerate() {
        match arg.as_str() {
            "--fault-seed" => {
                plan.seed = value(arg, i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --fault-seed expects an integer");
                    std::process::exit(2);
                });
                any = true;
            }
            "--drop-rate" => {
                let r: f64 = value(arg, i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --drop-rate expects a probability in [0, 1]");
                    std::process::exit(2);
                });
                plan = plan.with_drop_rate(r);
                any = true;
            }
            "--crash-site" => {
                let spec = value(arg, i);
                let (site, after) = match spec.split_once(':') {
                    Some((s, a)) => (s.parse(), a.parse()),
                    None => (spec.parse(), Ok(0)),
                };
                match (site, after) {
                    (Ok(site), Ok(after)) => plan = plan.with_crash(site, after),
                    _ => {
                        eprintln!("error: --crash-site expects <site>[:<after_messages>]");
                        std::process::exit(2);
                    }
                }
                any = true;
            }
            _ => {}
        }
    }
    any.then_some(plan)
}

/// The value following `flag`, if the flag is present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            }
        })
}

/// Parse the value of `flag`, exiting with a usage message on garbage.
fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} got an unparsable value `{v}`");
            std::process::exit(2);
        })
    })
}

/// `skalla serve …`: run the TCP serving endpoint until stdin reaches
/// EOF (Ctrl-D interactively, or the end of a piped script).
fn run_serve(args: &[String]) {
    let mut cfg = ServeConfig::default();
    if let Some(plan) = fault_plan_from_args(args) {
        cfg.faults = plan;
    }
    if let Some(listen) = flag_value(args, "--listen") {
        cfg.listen = listen;
    }
    if let Some(scale) = flag_parse(args, "--scale") {
        cfg.scale = scale;
    }
    if let Some(sites) = flag_parse(args, "--sites") {
        cfg.sites = sites;
    }
    if let Some(r) = flag_parse(args, "--replication") {
        cfg.replication = r;
    }
    if let Some(depth) = flag_parse(args, "--queue-depth") {
        cfg.queue_depth = depth;
    }
    if let Some(n) = flag_parse(args, "--interleave") {
        cfg.max_interleave = n;
    }
    if let Some(entries) = flag_parse(args, "--cache") {
        cfg.cache_entries = entries;
    }
    if let Some(workers) = flag_parse::<usize>(args, "--workers") {
        cfg.coord_workers = workers;
    }
    if let Some(shards) = flag_parse::<usize>(args, "--sync-shards") {
        cfg.sync_shards = Some(shards);
    }
    if let Some(mode) = flag_value(args, "--degrade") {
        cfg.degraded = match mode.as_str() {
            "fail" => DegradedMode::Fail,
            "partial" => DegradedMode::Partial,
            "failover" => DegradedMode::Failover,
            other => {
                eprintln!("error: --degrade expects fail|partial|failover, got `{other}`");
                std::process::exit(2);
            }
        };
    }

    let scale = cfg.scale;
    let sites = cfg.sites;
    let server = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!(
        "skalla-serve: listening on {} — {sites} sites, TPCR scale {scale}; EOF on stdin stops",
        server.local_addr()
    );
    let _ = io::stdout().flush();

    // Serve until stdin closes, then stop in order.
    let mut sink = String::new();
    while matches!(io::stdin().lock().read_line(&mut sink), Ok(n) if n > 0) {
        sink.clear();
    }
    let stats = server.stats();
    println!(
        "skalla-serve: {} sessions, {} queries ({} completed, {} failed, {} busy), cache {}/{} hit/miss",
        stats.sessions,
        stats.queries,
        stats.sched.completed,
        stats.sched.failed,
        stats.sched.rejected,
        stats.cache.hits,
        stats.cache.misses
    );
    if let Err(e) = server.shutdown() {
        eprintln!("error: shutdown: {e}");
        std::process::exit(1);
    }
}

/// `skalla client --connect <addr>`: a line-oriented remote shell.
/// Queries are terminated by a blank line, exactly like the local
/// shell; `\stats`, `\invalidate`, and `\quit` are understood.
fn run_client(args: &[String]) {
    let addr = flag_value(args, "--connect").unwrap_or_else(|| {
        eprintln!("usage: skalla client --connect <host:port>");
        std::process::exit(2);
    });
    let mut client = ServeClient::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let stdin = io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        println!("connected to {addr} — blank line runs the query, \\quit exits");
    }
    let mut buffer = String::new();
    let run = |buffer: &mut String, client: &mut ServeClient| {
        let text = buffer.trim().to_string();
        buffer.clear();
        if text.is_empty() {
            return;
        }
        match client.query_with_retry(&text, 32) {
            Ok((reply, busy)) => {
                println!("{}", render_preview(&reply.rows, 20));
                let mut tail = format!("-- {} groups | {}", reply.rows.len(), reply.summary);
                if reply.cache_hit {
                    tail.push_str(" | served from cache");
                }
                if busy > 0 {
                    tail.push_str(&format!(" | {busy} busy retries"));
                }
                println!("{tail}");
            }
            Err(e) => println!("error: {e}"),
        }
    };
    loop {
        if interactive {
            print!(
                "{}",
                if buffer.is_empty() {
                    "skalla> "
                } else {
                    "     -> "
                }
            );
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                run(&mut buffer, &mut client);
                return;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                return;
            }
        }
        match line.trim() {
            "\\quit" | "\\q" => return,
            "\\stats" => match client.stats() {
                Ok(s) => println!(
                    "sessions {} | queries {} | completed {} failed {} busy {} in-flight {} | cache {} hit(s) {} miss(es), {} cached",
                    s.sessions,
                    s.queries,
                    s.sched.completed,
                    s.sched.failed,
                    s.sched.rejected,
                    s.sched.in_flight,
                    s.cache.hits,
                    s.cache.misses,
                    s.cache.entries
                ),
                Err(e) => println!("error: {e}"),
            },
            "\\invalidate" => match client.invalidate() {
                Ok(()) => println!("result cache invalidated"),
                Err(e) => println!("error: {e}"),
            },
            "" => run(&mut buffer, &mut client),
            _ => buffer.push_str(&line),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return run_serve(&args[1..]),
        Some("client") => return run_client(&args[1..]),
        _ => {}
    }
    let mut session = Session::new();

    // Fault flags must be installed before --load wires the network.
    if let Some(plan) = fault_plan_from_args(&args) {
        session.set_fault_plan(plan);
    }

    // --replication <r>: r-way ring-replicated partitions on the next load.
    if let Some(i) = args.iter().position(|a| a == "--replication") {
        let r: usize = args
            .get(i + 1)
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("error: --replication expects a factor >= 1");
                std::process::exit(2);
            });
        session.set_replication(r);
    }

    // --workers <n> / --sync-shards <s>: coordinator sync pipeline shape,
    // same knobs as the in-shell `\sync [workers [shards]]` command.
    if let Some(workers) = flag_parse::<usize>(&args, "--workers") {
        session.set_sync_workers(workers);
    }
    if let Some(shards) = flag_parse::<usize>(&args, "--sync-shards") {
        session.set_sync_shards(Some(shards));
    }

    // --skew auto|off|on: skew-aware execution override, same knob as the
    // in-shell `\skew` command.
    if let Some(mode) = flag_value(&args, "--skew") {
        match mode.as_str() {
            "auto" => session.set_skew_policy(None),
            "off" => session.set_skew_policy(Some(skalla_core::SkewPolicy::disabled())),
            "on" => session.set_skew_policy(Some(skalla_core::SkewPolicy {
                split: true,
                offload: true,
                ..skalla_core::SkewPolicy::default()
            })),
            other => {
                eprintln!("error: --skew expects auto|off|on, got `{other}`");
                std::process::exit(2);
            }
        }
    }

    // --checkpoint-dir <path>: round-granular checkpoint WAL; a restarted
    // shell pointed at the same directory resumes an interrupted query
    // re-executing at most one round.
    if let Some(i) = args.iter().position(|a| a == "--checkpoint-dir") {
        let dir = PathBuf::from(args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --checkpoint-dir needs a path");
            std::process::exit(2);
        }));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: --checkpoint-dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        session.set_checkpoint_wal(CheckpointWal::new(dir.join("skalla.wal")));
    }

    // --data-dir <path>: out-of-core mode — \load generates straight to
    // per-site segment files under the directory and sites scan from disk,
    // so scale is bounded by disk, not memory. --segment-rows tunes the
    // zone-map granularity.
    if let Some(dir) = flag_value(&args, "--data-dir") {
        session.set_data_dir(Some(PathBuf::from(dir)));
    }
    if let Some(rows) = flag_parse::<usize>(&args, "--segment-rows") {
        session.set_segment_rows(rows);
    }

    // --disk-fault-seed <n> [--bitflip-rate <r>] [--torn-write-rate <r>]
    // [--short-read-rate <r>] [--stale-footer-rate <r>]: seeded disk-fault
    // injection for out-of-core loads. Write-time faults (bit flips, torn
    // writes) land in the generated segment files as durable corruption;
    // read-time faults (short reads, stale footers) corrupt what sites
    // see without touching the bytes on disk. Pair with `\scrub` and
    // `\degrade failover` to exercise the integrity machinery.
    if let Some(seed) = flag_parse::<u64>(&args, "--disk-fault-seed") {
        let mut plan = skalla_storage::DiskFaultPlan::seeded(seed);
        if let Some(r) = flag_parse::<f64>(&args, "--bitflip-rate") {
            plan = plan.with_bitflip_rate(r);
        }
        if let Some(r) = flag_parse::<f64>(&args, "--torn-write-rate") {
            plan = plan.with_torn_write_rate(r);
        }
        if let Some(r) = flag_parse::<f64>(&args, "--short-read-rate") {
            plan = plan.with_short_read_rate(r);
        }
        if let Some(r) = flag_parse::<f64>(&args, "--stale-footer-rate") {
            plan = plan.with_stale_footer_rate(r);
        }
        session.set_disk_fault_plan(Some(plan));
    } else if flag_value(&args, "--bitflip-rate").is_some() {
        eprintln!("error: --bitflip-rate needs --disk-fault-seed <n>");
        std::process::exit(2);
    }

    // Optional --load <scale> <sites> preloads a warehouse.
    if let Some(i) = args.iter().position(|a| a == "--load") {
        let scale = args.get(i + 1).and_then(|a| a.parse().ok()).unwrap_or(0.05);
        let sites = args.get(i + 2).and_then(|a| a.parse().ok()).unwrap_or(4);
        match session.load_tpcr(scale, sites) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let stdin = io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        println!("Skalla distributed OLAP shell — \\help for commands");
    }

    loop {
        if interactive {
            let prompt = if session.in_query() {
                "     -> "
            } else {
                "skalla> "
            };
            print!("{prompt}");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                // EOF: flush any pending query, then exit.
                if session.in_query() {
                    if let Outcome::Continue(out) = session.handle_line("") {
                        if !out.is_empty() {
                            println!("{out}");
                        }
                    }
                }
                return;
            }
            Ok(_) => match session.handle_line(&line) {
                Outcome::Quit => return,
                Outcome::Continue(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
            },
            Err(e) => {
                eprintln!("input error: {e}");
                return;
            }
        }
    }
}
