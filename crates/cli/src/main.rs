//! The `skalla` interactive shell.
//!
//! ```sh
//! cargo run -p skalla-cli                 # interactive
//! echo '...' | cargo run -p skalla-cli    # scripted
//! skalla --load 0.05 4                    # preload a warehouse
//! skalla --fault-seed 7 --drop-rate 0.2 --load 0.05 4   # lossy network
//! skalla --crash-site 2:5 --load 0.05 4   # site 2 dies after 5 messages
//! skalla --replication 2 --load 0.05 4    # 2-way replicated partitions
//! skalla --checkpoint-dir /tmp/skalla --load 0.05 4   # round-granular WAL
//! ```

use std::io::{self, BufRead, IsTerminal, Write};
use std::path::PathBuf;

use skalla_cli::{Outcome, Session};
use skalla_core::CheckpointWal;
use skalla_net::FaultPlan;

/// Parse `--fault-seed <n>`, `--drop-rate <r>`, and `--crash-site
/// <id>[:<after>]` into a [`FaultPlan`]. Returns `None` when no fault flag
/// is present; exits with a usage message on a malformed value.
fn fault_plan_from_args(args: &[String]) -> Option<FaultPlan> {
    let mut plan = FaultPlan::none();
    let mut any = false;
    let value = |flag: &str, i: usize| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        })
    };
    for (i, arg) in args.iter().enumerate() {
        match arg.as_str() {
            "--fault-seed" => {
                plan.seed = value(arg, i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --fault-seed expects an integer");
                    std::process::exit(2);
                });
                any = true;
            }
            "--drop-rate" => {
                let r: f64 = value(arg, i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --drop-rate expects a probability in [0, 1]");
                    std::process::exit(2);
                });
                plan = plan.with_drop_rate(r);
                any = true;
            }
            "--crash-site" => {
                let spec = value(arg, i);
                let (site, after) = match spec.split_once(':') {
                    Some((s, a)) => (s.parse(), a.parse()),
                    None => (spec.parse(), Ok(0)),
                };
                match (site, after) {
                    (Ok(site), Ok(after)) => plan = plan.with_crash(site, after),
                    _ => {
                        eprintln!("error: --crash-site expects <site>[:<after_messages>]");
                        std::process::exit(2);
                    }
                }
                any = true;
            }
            _ => {}
        }
    }
    any.then_some(plan)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut session = Session::new();

    // Fault flags must be installed before --load wires the network.
    if let Some(plan) = fault_plan_from_args(&args) {
        session.set_fault_plan(plan);
    }

    // --replication <r>: r-way ring-replicated partitions on the next load.
    if let Some(i) = args.iter().position(|a| a == "--replication") {
        let r: usize = args
            .get(i + 1)
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("error: --replication expects a factor >= 1");
                std::process::exit(2);
            });
        session.set_replication(r);
    }

    // --checkpoint-dir <path>: round-granular checkpoint WAL; a restarted
    // shell pointed at the same directory resumes an interrupted query
    // re-executing at most one round.
    if let Some(i) = args.iter().position(|a| a == "--checkpoint-dir") {
        let dir = PathBuf::from(args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --checkpoint-dir needs a path");
            std::process::exit(2);
        }));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: --checkpoint-dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        session.set_checkpoint_wal(CheckpointWal::new(dir.join("skalla.wal")));
    }

    // Optional --load <scale> <sites> preloads a warehouse.
    if let Some(i) = args.iter().position(|a| a == "--load") {
        let scale = args.get(i + 1).and_then(|a| a.parse().ok()).unwrap_or(0.05);
        let sites = args.get(i + 2).and_then(|a| a.parse().ok()).unwrap_or(4);
        match session.load_tpcr(scale, sites) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    let stdin = io::stdin();
    let interactive = stdin.is_terminal();
    if interactive {
        println!("Skalla distributed OLAP shell — \\help for commands");
    }

    loop {
        if interactive {
            let prompt = if session.in_query() {
                "     -> "
            } else {
                "skalla> "
            };
            print!("{prompt}");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                // EOF: flush any pending query, then exit.
                if session.in_query() {
                    if let Outcome::Continue(out) = session.handle_line("") {
                        if !out.is_empty() {
                            println!("{out}");
                        }
                    }
                }
                return;
            }
            Ok(_) => match session.handle_line(&line) {
                Outcome::Quit => return,
                Outcome::Continue(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
            },
            Err(e) => {
                eprintln!("input error: {e}");
                return;
            }
        }
    }
}
