#![warn(missing_docs)]

//! # skalla-cli
//!
//! The interactive shell behind the `skalla` binary: load a TPCR warehouse,
//! type GMDJ queries in the textual language, and inspect plans, costs, and
//! results.
//!
//! ```text
//! skalla> \load 0.05 4
//! loaded tpcr: 3000 tuples across 4 sites (partitioned on nationkey)
//! skalla> BASE DISTINCT nationname FROM tpcr;
//!      -> MD COUNT(*) AS orders, AVG(extendedprice) AS avg_price
//!      ->    WHERE b.nationname = r.nationname;
//!      ->
//! nationname | orders | avg_price
//! ...
//! ```
//!
//! Commands start with `\`; anything else accumulates into the query buffer
//! and executes on an empty line. The session logic lives in [`Session`] so
//! it is unit-testable; `main.rs` is a thin stdin loop.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use skalla_core::{
    CheckpointWal, DegradedMode, DistPlan, DistributedWarehouse, ExecMetrics, OptFlags,
    RetryPolicy, SkewPolicy,
};
use skalla_gmdj::to_sql;
use skalla_net::{CostModel, FaultPlan};
use skalla_planner::{choose_plan, parse_query, plan_query, DistributionInfo};
use skalla_storage::{
    Catalog, DiskFaultGuard, DiskFaultPlan, SegmentFile, TableStats, DEFAULT_SEGMENT_ROWS,
};
use skalla_tpcr::{
    generate, generate_to_dir, partition_by_nation, tpcr_schema, TpcrConfig, CITYNAME_COL,
    CUSTKEY_COL, CUSTNAME_COL, NATIONKEY_COL,
};
use skalla_types::{Relation, Result, Schema, SkallaError};

/// What the shell should do after handling one line.
#[derive(Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Print this text (possibly empty) and continue.
    Continue(String),
    /// The user asked to leave.
    Quit,
}

/// Optimizer-flag selection for the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlagMode {
    None,
    All,
    /// Cost-based: pick the cheapest flag combination per query.
    Auto,
}

/// An interactive session: a loaded warehouse plus shell state.
pub struct Session {
    warehouse: Option<DistributedWarehouse>,
    dist: Option<DistributionInfo>,
    stats: Option<TableStats>,
    schemas: HashMap<String, Arc<Schema>>,
    flag_mode: FlagMode,
    explain: bool,
    faults: FaultPlan,
    degraded: DegradedMode,
    retry: RetryPolicy,
    /// Partition replication factor applied on the next `\load` (1 = none).
    replication: usize,
    /// When set, every executed query checkpoints each synchronized round
    /// here and resumes from the log on re-execution.
    checkpoint: Option<CheckpointWal>,
    /// Coordinator merge workers applied to every executed plan (>1 runs
    /// synchronization through the sharded pipeline).
    coord_workers: usize,
    /// Sync shard-count override (None = one shard per worker, rounded to
    /// a power of two).
    coord_shards: Option<usize>,
    /// Skew-policy override applied to every executed plan. `None` keeps
    /// whatever the planner decided (Egil auto-enables on replicated,
    /// imbalanced loads); `Some` forces the policy on or off.
    skew: Option<SkewPolicy>,
    /// Metrics of the most recently executed query, for `\metrics`.
    last_metrics: Option<ExecMetrics>,
    /// When set, `\load` generates straight to per-site segment files
    /// under this directory and sites scan out-of-core instead of holding
    /// their partition in memory.
    data_dir: Option<PathBuf>,
    /// Rows per segment for out-of-core loads.
    segment_rows: usize,
    /// Zone-map pruning override applied to every executed plan (`None`
    /// keeps the plan default, which is on).
    segment_prune: Option<bool>,
    /// Per-site segment-file summaries of the current out-of-core load,
    /// for `\segments`.
    segments_info: Option<Vec<SegSiteInfo>>,
    /// Seeded disk-fault plan applied to the next out-of-core `\load`
    /// (installed scoped to the data directory, so only warehouse segment
    /// files are affected).
    disk_faults: Option<DiskFaultPlan>,
    /// Keeps the installed disk-fault scope alive for the lifetime of the
    /// current out-of-core load.
    disk_fault_guard: Option<DiskFaultGuard>,
    buffer: String,
    /// Rows shown per result (keeps wide groups readable).
    pub max_rows: usize,
}

/// One site's segment file in an out-of-core load.
struct SegSiteInfo {
    path: String,
    rows: usize,
    segments: usize,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh, unloaded session.
    pub fn new() -> Session {
        Session {
            warehouse: None,
            dist: None,
            stats: None,
            schemas: HashMap::new(),
            flag_mode: FlagMode::Auto,
            explain: false,
            faults: FaultPlan::none(),
            degraded: DegradedMode::Fail,
            retry: RetryPolicy::default(),
            replication: 1,
            checkpoint: None,
            coord_workers: 1,
            coord_shards: None,
            skew: None,
            last_metrics: None,
            data_dir: None,
            segment_rows: DEFAULT_SEGMENT_ROWS,
            segment_prune: None,
            segments_info: None,
            disk_faults: None,
            disk_fault_guard: None,
            buffer: String::new(),
            max_rows: 20,
        }
    }

    /// `true` while a multi-line query is being accumulated.
    pub fn in_query(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Handle one input line.
    pub fn handle_line(&mut self, line: &str) -> Outcome {
        let trimmed = line.trim();
        if trimmed.starts_with('\\') {
            return self.command(trimmed);
        }
        if trimmed.is_empty() {
            if self.buffer.is_empty() {
                return Outcome::Continue(String::new());
            }
            let text = std::mem::take(&mut self.buffer);
            return Outcome::Continue(match self.run_query(&text) {
                Ok(out) => out,
                Err(e) => format!("error: {e}"),
            });
        }
        self.buffer.push_str(line);
        self.buffer.push('\n');
        Outcome::Continue(String::new())
    }

    fn command(&mut self, cmd: &str) -> Outcome {
        let mut parts = cmd.split_whitespace();
        let head = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        let out = match head {
            "\\q" | "\\quit" | "\\exit" => return Outcome::Quit,
            "\\help" | "\\?" => Ok(HELP.to_string()),
            "\\load" => self.cmd_load(&args),
            "\\tables" => self.cmd_tables(),
            "\\flags" => self.cmd_flags(&args),
            "\\explain" => {
                self.explain = args.first().is_none_or(|a| *a != "off");
                Ok(format!(
                    "explain {}",
                    if self.explain { "on" } else { "off" }
                ))
            }
            "\\sql" => self.cmd_sql(),
            "\\cost" => self.cmd_cost(),
            "\\faults" => self.cmd_faults(&args),
            "\\degrade" => self.cmd_degrade(&args),
            "\\replicate" => self.cmd_replicate(&args),
            "\\failover" => self.cmd_failover(),
            "\\sync" => self.cmd_sync(&args),
            "\\skew" => self.cmd_skew(&args),
            "\\segments" => self.cmd_segments(&args),
            "\\scrub" => self.cmd_scrub(),
            "\\metrics" => self.cmd_metrics(),
            other => Err(SkallaError::parse(format!(
                "unknown command `{other}` (try \\help)"
            ))),
        };
        Outcome::Continue(match out {
            Ok(s) => s,
            Err(e) => format!("error: {e}"),
        })
    }

    fn cmd_load(&mut self, args: &[&str]) -> Result<String> {
        let scale: f64 = args
            .first()
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| SkallaError::parse("usage: \\load <scale> <sites>"))?;
        let sites: usize = args
            .get(1)
            .and_then(|a| a.parse().ok())
            .ok_or_else(|| SkallaError::parse("usage: \\load <scale> <sites>"))?;
        self.load_tpcr(scale, sites)
    }

    /// Install a fault plan for the *next* `\load` (also used by the
    /// `--fault-seed`/`--drop-rate`/`--crash-site` binary flags).
    pub fn set_fault_plan(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Set the degraded-mode policy applied to every executed plan.
    pub fn set_degraded_mode(&mut self, mode: DegradedMode) {
        self.degraded = mode;
    }

    /// Set the retry policy applied to every executed plan (deadline,
    /// retries, backoff). The degraded mode set via [`Session::set_degraded_mode`]
    /// or `\degrade` still wins.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Set the partition replication factor for the next load (also used by
    /// the `--replication` binary flag).
    pub fn set_replication(&mut self, replication: usize) {
        self.replication = replication.max(1);
    }

    /// Seeded disk-fault injection for the next out-of-core `\load`
    /// (the `--disk-fault-seed`/`--bitflip-rate` binary flags). `None`
    /// removes any previously configured plan; the scope installed by an
    /// earlier load stays active until the next load replaces it.
    pub fn set_disk_fault_plan(&mut self, plan: Option<DiskFaultPlan>) {
        self.disk_faults = plan;
    }

    /// Out-of-core mode for the next `\load`: generate straight to
    /// per-site segment files under `dir` and have sites scan from disk
    /// (also used by the `--data-dir` binary flag). `None` restores
    /// in-memory loads.
    pub fn set_data_dir(&mut self, dir: Option<PathBuf>) {
        self.data_dir = dir;
    }

    /// Rows per segment for out-of-core loads (also used by the
    /// `--segment-rows` binary flag). Smaller segments mean tighter zone
    /// maps (more pruning) but more footer metadata and decode calls.
    pub fn set_segment_rows(&mut self, rows: usize) {
        self.segment_rows = rows.max(1);
    }

    /// Set the coordinator sync worker count for every executed plan (also
    /// used by the `--workers` binary flag). Equivalent to `\sync <n>`.
    pub fn set_sync_workers(&mut self, workers: usize) {
        self.coord_workers = workers.max(1);
    }

    /// Override the sharded-sync shard count for every executed plan (also
    /// used by the `--sync-shards` binary flag). Rounded up to a power of
    /// two by the engine; `None` restores the default of 4 shards/worker.
    pub fn set_sync_shards(&mut self, shards: Option<usize>) {
        self.coord_shards = shards.map(|s| s.max(1));
    }

    /// Override the skew policy applied to every executed plan (also used
    /// by the `--skew` binary flag). `None` restores the planner's own
    /// (auto) decision. Equivalent to `\skew on|off|auto`.
    pub fn set_skew_policy(&mut self, skew: Option<SkewPolicy>) {
        self.skew = skew;
    }

    /// Checkpoint every executed query to `wal`, round by round, and resume
    /// from it (also used by the `--checkpoint-dir` binary flag). A session
    /// restarted onto the same log re-executes at most the round that was
    /// in flight when the previous coordinator died; re-running a query the
    /// log already covers completely returns its recorded result directly.
    pub fn set_checkpoint_wal(&mut self, wal: CheckpointWal) {
        self.checkpoint = Some(wal);
    }

    /// `\faults [off | seed <n> | drop <r> | dup <r> | delay <r> | crash <site> <after>]…`
    ///
    /// With no arguments, shows the current plan. Changes take effect on the
    /// next `\load` (the fabric is wired at warehouse launch).
    fn cmd_faults(&mut self, args: &[&str]) -> Result<String> {
        let usage = || {
            SkallaError::parse(
                "usage: \\faults [off | seed <n> | drop <rate> | dup <rate> | delay <rate> | crash <site> <after>]…",
            )
        };
        let mut i = 0;
        while i < args.len() {
            match args[i] {
                "off" => {
                    self.faults = FaultPlan::none();
                    i += 1;
                }
                "seed" => {
                    self.faults.seed = args
                        .get(i + 1)
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(usage)?;
                    i += 2;
                }
                "drop" => {
                    let r: f64 = args
                        .get(i + 1)
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(usage)?;
                    self.faults = std::mem::take(&mut self.faults).with_drop_rate(r);
                    i += 2;
                }
                "dup" => {
                    let r: f64 = args
                        .get(i + 1)
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(usage)?;
                    self.faults = std::mem::take(&mut self.faults).with_dup_rate(r);
                    i += 2;
                }
                "delay" => {
                    let r: f64 = args
                        .get(i + 1)
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(usage)?;
                    self.faults = std::mem::take(&mut self.faults).with_delay_rate(r);
                    i += 2;
                }
                "crash" => {
                    let site: u32 = args
                        .get(i + 1)
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(usage)?;
                    let after: u64 = args
                        .get(i + 2)
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(usage)?;
                    self.faults = std::mem::take(&mut self.faults).with_crash(site, after);
                    i += 3;
                }
                _ => return Err(usage()),
            }
        }
        let f = &self.faults;
        let mut out = if f.is_noop() {
            "faults: none".to_string()
        } else {
            format!(
                "faults: seed {} drop {} dup {} delay {}",
                f.seed, f.drop_rate, f.dup_rate, f.delay_rate
            )
        };
        for c in &f.crashes {
            let _ = write!(out, " crash({} after {})", c.node, c.after_messages);
        }
        if !args.is_empty() && self.warehouse.is_some() {
            out.push_str("\n(applies on next \\load)");
        }
        Ok(out)
    }

    /// `\degrade [fail|partial|failover]` — what the coordinator does after
    /// retries are exhausted: fail the query, return a partial result with
    /// coverage accounting, or (with replicated partitions, see
    /// `\replicate`) re-plan the round onto surviving replicas for an exact
    /// answer.
    fn cmd_degrade(&mut self, args: &[&str]) -> Result<String> {
        match args.first() {
            Some(&"fail") => self.degraded = DegradedMode::Fail,
            Some(&"partial") => self.degraded = DegradedMode::Partial,
            Some(&"failover") => self.degraded = DegradedMode::Failover,
            Some(other) => {
                return Err(SkallaError::parse(format!(
                    "unknown degraded mode `{other}` (fail|partial|failover)"
                )))
            }
            None => {}
        }
        Ok(format!("degraded mode: {}", degraded_name(self.degraded)))
    }

    /// `\replicate [r]` — the partition replication factor (ring placement)
    /// for the next `\load`. `r > 1` is what makes `\degrade failover`
    /// effective: a crashed site's partitions are re-planned onto surviving
    /// replicas and the answer stays exact.
    fn cmd_replicate(&mut self, args: &[&str]) -> Result<String> {
        if let Some(a) = args.first() {
            let r: usize = a
                .parse()
                .map_err(|_| SkallaError::parse("usage: \\replicate [factor]"))?;
            self.replication = r.max(1);
        }
        let mut out = format!("replication factor: {}", self.replication);
        if !args.is_empty() && self.warehouse.is_some() {
            out.push_str("\n(applies on next \\load)");
        }
        Ok(out)
    }

    /// `\failover` — the replica placement of the loaded warehouse and the
    /// failover counters of the last query.
    fn cmd_failover(&self) -> Result<String> {
        let wh = self
            .warehouse
            .as_ref()
            .ok_or_else(|| SkallaError::exec("no warehouse loaded (try \\load 0.05 4)"))?;
        let mut out = String::new();
        match wh.replica_map() {
            None => {
                let _ = writeln!(out, "replication: off (set \\replicate 2 before \\load)");
            }
            Some(map) => {
                let _ = writeln!(
                    out,
                    "table `{}`: {} partitions × {} replicas (ring placement)",
                    map.table,
                    map.num_parts(),
                    map.replication()
                );
                for p in 0..map.num_parts() {
                    let hosts: Vec<String> = map
                        .hosts_of(p)
                        .iter()
                        .map(|s| format!("site {s}"))
                        .collect();
                    let _ = writeln!(out, "  partition {p}: {}", hosts.join(", "));
                }
            }
        }
        let _ = write!(out, "degraded mode: {}", degraded_name(self.degraded));
        if let Some(m) = &self.last_metrics {
            let _ = write!(
                out,
                "\nlast query: {} failover(s), {} partition(s) reassigned, {} lost",
                m.failovers, m.parts_reassigned, m.parts_lost
            );
        }
        Ok(out)
    }

    /// `\sync [workers [shards]]` — coordinator merge workers (and
    /// optionally the shard count) for every executed plan. `1` worker is
    /// the serial `BaseResult` path; more runs the sharded, pipelined
    /// synchronization engine with each worker owning a fixed shard range.
    fn cmd_sync(&mut self, args: &[&str]) -> Result<String> {
        let usage = || SkallaError::parse("usage: \\sync [workers [shards]]");
        if let Some(a) = args.first() {
            let n: usize = a.parse().map_err(|_| usage())?;
            self.coord_workers = n.max(1);
            self.coord_shards = match args.get(1) {
                Some(s) => Some(s.parse::<usize>().map_err(|_| usage())?.max(1)),
                None => None,
            };
        }
        let shards = match self.coord_shards {
            Some(s) => format!("{s} shards"),
            None => "default shards".to_string(),
        };
        Ok(format!(
            "coordinator sync workers: {} ({}, {shards})",
            self.coord_workers,
            if self.coord_workers > 1 {
                "sharded pipeline"
            } else {
                "serial"
            }
        ))
    }

    /// `\skew [auto | off | on [split_threshold [offload_factor]]]` —
    /// skew-aware execution for every executed plan. `auto` (the default)
    /// defers to the planner, which enables splitting and offload on
    /// replicated warehouses whose learned partition loads are imbalanced;
    /// `on` forces both hot-partition splitting (above the given imbalance
    /// threshold) and mid-round straggler offload (past the given multiple
    /// of the round's median site time); `off` forces the uniform path.
    fn cmd_skew(&mut self, args: &[&str]) -> Result<String> {
        let usage = || SkallaError::parse("usage: \\skew [auto | off | on [threshold [factor]]]");
        match args.first() {
            None => {}
            Some(&"auto") => self.skew = None,
            Some(&"off") => self.skew = Some(SkewPolicy::disabled()),
            Some(&"on") => {
                let mut p = SkewPolicy {
                    split: true,
                    offload: true,
                    ..SkewPolicy::default()
                };
                if let Some(t) = args.get(1) {
                    p.split_threshold = t.parse().map_err(|_| usage())?;
                }
                if let Some(f) = args.get(2) {
                    p.offload_factor = f.parse().map_err(|_| usage())?;
                }
                self.skew = Some(p);
            }
            Some(_) => return Err(usage()),
        }
        Ok(match &self.skew {
            None => "skew execution: auto (planner decides from learned loads)".to_string(),
            Some(p) if p.is_disabled() => "skew execution: off (forced uniform)".to_string(),
            Some(p) => format!(
                "skew execution: on (split above {:.2}× imbalance, offload past {:.1}× median)",
                p.split_threshold, p.offload_factor
            ),
        })
    }

    /// `\scrub` — walk every registered segment file at every site,
    /// verifying checksums off the query path; corrupt files are
    /// quarantined and, when replication permits, repaired from a
    /// surviving replica.
    fn cmd_scrub(&mut self) -> Result<String> {
        let wh = self
            .warehouse
            .as_ref()
            .ok_or_else(|| SkallaError::exec("no warehouse loaded (try \\load 0.05 4)"))?;
        let summary = wh.scrub()?;
        Ok(summary.summary())
    }

    /// `\metrics` — the full per-round cost table of the last query, with
    /// the synchronization breakdown (decode / merge / finalize and, for
    /// sharded rounds, worker/shard counts and utilization).
    fn cmd_metrics(&self) -> Result<String> {
        let m = self
            .last_metrics
            .as_ref()
            .ok_or_else(|| SkallaError::exec("no query executed yet"))?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", m.render_rounds());
        for r in &m.rounds {
            if r.sync_workers == 0 {
                continue;
            }
            let _ = write!(
                out,
                "{:<14} sync: decode {:.4}s, merge {:.4}s, finalize {:.4}s",
                r.label, r.sync_decode_s, r.sync_merge_s, r.sync_finalize_s
            );
            if r.sync_workers > 1 {
                let _ = write!(
                    out,
                    " ({} workers × {} shards, {:.0}% busy, {:.2}× imbalance)",
                    r.sync_workers,
                    r.sync_shards,
                    r.sync_utilization * 100.0,
                    r.sync_imbalance
                );
            } else {
                let _ = write!(out, " (serial)");
            }
            let _ = writeln!(out);
        }
        if m.rounds.iter().any(|r| r.sync_workers > 1) {
            let _ = writeln!(
                out,
                "sync worker imbalance: {:.2}× (busiest/mean merge seconds)",
                m.sync_imbalance()
            );
        }
        if m.parts_split + m.offloads > 0 || m.skew_ratio > 0.0 {
            let _ = writeln!(
                out,
                "skew: {:.2}× partition imbalance, top group share {:.0}%, \
                 {} hot split(s), {} offload(s) ({} won by helpers)",
                m.skew_ratio,
                m.skew_top_share * 100.0,
                m.parts_split,
                m.offloads,
                m.offload_wins
            );
        }
        let _ = write!(out, "{}", m.summary());
        Ok(out)
    }

    /// Load a TPCR warehouse (also callable programmatically).
    pub fn load_tpcr(&mut self, scale: f64, sites: usize) -> Result<String> {
        if let Some(dir) = self.data_dir.clone() {
            return self.load_tpcr_out_of_core(scale, sites, &dir);
        }
        self.segments_info = None;
        let table = generate(&TpcrConfig::scale(scale));
        let rows = table.len();
        let parts = partition_by_nation(&table, sites)?;
        self.stats = Some(TableStats::collect(&table));
        // Distribution knowledge: exact per-site value sets for the whole
        // nationkey-derived column family, so the optimizer can discover
        // derived partition attributes (custname, cityname, …).
        let constraints =
            parts.site_constraints_for(&[NATIONKEY_COL, CUSTKEY_COL, CUSTNAME_COL, CITYNAME_COL]);
        self.dist = Some(
            DistributionInfo::with_constraints(sites, Some(NATIONKEY_COL), true, constraints)?
                .with_replication(self.replication),
        );
        self.schemas = HashMap::from([("tpcr".to_string(), table.schema().clone())]);
        if let Some(old) = self.warehouse.take() {
            old.shutdown()?;
        }
        self.warehouse = Some(if self.replication > 1 {
            DistributedWarehouse::launch_replicated(
                "tpcr",
                &parts,
                self.replication,
                CostModel::lan_2002(),
                self.faults.clone(),
            )?
        } else {
            let catalogs: Vec<Catalog> = parts
                .parts
                .iter()
                .map(|p| {
                    let mut c = Catalog::new();
                    c.register("tpcr", p.clone());
                    c
                })
                .collect();
            DistributedWarehouse::launch_with_faults(
                catalogs,
                CostModel::lan_2002(),
                self.faults.clone(),
            )?
        });
        let fault_note = if self.faults.is_noop() {
            String::new()
        } else {
            " [fault injection active]".to_string()
        };
        let replica_note = if self.replication > 1 {
            format!(" [{}-way replicated]", self.replication)
        } else {
            String::new()
        };
        Ok(format!(
            "loaded tpcr: {rows} tuples across {sites} sites (partitioned on nationkey){replica_note}{fault_note}"
        ))
    }

    /// The `--data-dir` load path: the generator streams each site's
    /// partition straight into a segment file, sites open the files and
    /// scan them segment-at-a-time, and catalog statistics come from the
    /// zone-map footers — the full relation is never materialized
    /// anywhere, so scale is bounded by disk, not memory.
    fn load_tpcr_out_of_core(
        &mut self,
        scale: f64,
        sites: usize,
        dir: &std::path::Path,
    ) -> Result<String> {
        if self.replication > 1 {
            return Err(SkallaError::plan(
                "replicated loads are in-memory only (unset --data-dir or \\replicate 1)",
            ));
        }
        // Install the disk-fault scope before generation so write-time
        // faults (bit flips, torn writes) land in the files as durable
        // corruption, exactly as a flaky disk would leave them.
        self.disk_fault_guard = self
            .disk_faults
            .clone()
            .filter(|p| !p.is_noop())
            .map(|p| p.install(dir));
        let cfg = TpcrConfig::scale(scale);
        let paths = generate_to_dir(&cfg, sites, self.segment_rows, dir)?;
        let mut catalogs = Vec::with_capacity(sites);
        let mut stats: Option<TableStats> = None;
        let mut info = Vec::with_capacity(sites);
        for path in &paths {
            let file = Arc::new(SegmentFile::open(path)?);
            let site_stats = file.table_stats();
            match &mut stats {
                None => stats = Some(site_stats),
                Some(acc) => acc.merge(&site_stats),
            }
            info.push(SegSiteInfo {
                path: path.display().to_string(),
                rows: file.total_rows(),
                segments: file.num_segments(),
            });
            let mut c = Catalog::new();
            c.register_segments("tpcr", file);
            catalogs.push(c);
        }
        let rows: usize = info.iter().map(|s| s.rows).sum();
        let nsegs: usize = info.iter().map(|s| s.segments).sum();
        self.stats = stats;
        // Partition knowledge without per-site value sets: deriving exact
        // constraints would mean scanning the data this mode exists to
        // avoid materializing. Nation partitioning is still declared, so
        // Corollary-1 optimizations on nationkey apply.
        self.dist = Some(DistributionInfo {
            num_sites: sites,
            partition_col: Some(NATIONKEY_COL),
            is_partition_attribute: true,
            site_constraints: None,
            replication: 1,
            partition_info: None,
        });
        self.schemas = HashMap::from([("tpcr".to_string(), tpcr_schema())]);
        if let Some(old) = self.warehouse.take() {
            old.shutdown()?;
        }
        self.warehouse = Some(DistributedWarehouse::launch_with_faults(
            catalogs,
            CostModel::lan_2002(),
            self.faults.clone(),
        )?);
        self.segments_info = Some(info);
        let fault_note = if self.faults.is_noop() {
            String::new()
        } else {
            " [fault injection active]".to_string()
        };
        let disk_note = if self.disk_fault_guard.is_some() {
            " [disk-fault injection active]"
        } else {
            ""
        };
        Ok(format!(
            "loaded tpcr out-of-core: {rows} tuples across {sites} sites, {nsegs} segments of \
             ≤{} rows under {} (partitioned on nationkey){fault_note}{disk_note}",
            self.segment_rows,
            dir.display()
        ))
    }

    /// `\segments`: out-of-core storage status, pruning knob, and the last
    /// query's zone-map pruning counters.
    fn cmd_segments(&mut self, args: &[&str]) -> Result<String> {
        match (args.first().copied(), args.get(1).copied()) {
            (Some("prune"), Some(v @ ("on" | "off"))) => {
                self.segment_prune = Some(v == "on");
                return Ok(format!("segment pruning: {v}"));
            }
            (Some("prune"), Some("auto")) => {
                self.segment_prune = None;
                return Ok("segment pruning: auto (plan default: on)".to_string());
            }
            (None, None) => {}
            _ => return Err(SkallaError::parse("usage: \\segments [prune on|off|auto]")),
        }
        let mut out = String::new();
        match &self.segments_info {
            None => {
                let _ = writeln!(
                    out,
                    "storage: in-memory (start with --data-dir <path> for out-of-core segments)"
                );
            }
            Some(sites) => {
                let _ = writeln!(
                    out,
                    "storage: out-of-core, ≤{} rows/segment",
                    self.segment_rows
                );
                for (i, s) in sites.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  site {i}: {} rows in {} segment(s) — {}",
                        s.rows, s.segments, s.path
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "pruning: {}",
            match self.segment_prune {
                None => "auto (on)",
                Some(true) => "on",
                Some(false) => "off",
            }
        );
        if let Some(m) = &self.last_metrics {
            let (sc, sp) = (m.total_segments_scanned(), m.total_segments_pruned());
            if sc + sp > 0 {
                let _ = writeln!(out, "last query: {sc} segment(s) decoded, {sp} pruned");
            }
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_tables(&self) -> Result<String> {
        if self.schemas.is_empty() {
            return Ok("no warehouse loaded (try \\load 0.05 4)".to_string());
        }
        let mut out = String::new();
        for (name, schema) in &self.schemas {
            let _ = writeln!(out, "{name} {schema}");
            if let Some(stats) = &self.stats {
                let _ = writeln!(out, "  rows: {}", stats.rows);
            }
        }
        Ok(out.trim_end().to_string())
    }

    fn cmd_flags(&mut self, args: &[&str]) -> Result<String> {
        match args.first() {
            Some(&"none") => self.flag_mode = FlagMode::None,
            Some(&"all") => self.flag_mode = FlagMode::All,
            Some(&"auto") => self.flag_mode = FlagMode::Auto,
            Some(other) => {
                return Err(SkallaError::parse(format!(
                    "unknown flag mode `{other}` (none|all|auto)"
                )))
            }
            None => {}
        }
        Ok(format!("flags: {:?}", self.flag_mode).to_lowercase())
    }

    /// Estimate every optimizer-flag combination for the buffered query.
    fn cmd_cost(&self) -> Result<String> {
        use skalla_core::OptFlags;
        use skalla_planner::estimate_plan;

        if self.buffer.trim().is_empty() {
            return Err(SkallaError::parse(
                "type a query first, then \\cost before the terminating blank line",
            ));
        }
        let dist = self
            .dist
            .as_ref()
            .ok_or_else(|| SkallaError::exec("no warehouse loaded (try \\load 0.05 4)"))?;
        let stats = self.stats.as_ref().expect("loaded with warehouse");
        let expr = parse_query(&self.buffer, &self.schemas)?;
        let cost = CostModel::lan_2002();

        let mut out = format!(
            "{:<42} {:>6} {:>10} {:>10} {:>11}
",
            "flags", "syncs", "est_down", "est_up", "est_comm_s"
        );
        let mut best: Option<(f64, String)> = None;
        for bits in 0..16u32 {
            let flags = OptFlags {
                coalesce: bits & 1 != 0,
                site_group_reduction: bits & 2 != 0,
                coord_group_reduction: bits & 4 != 0,
                sync_reduction: bits & 8 != 0,
            };
            let (plan, _) = skalla_planner::plan_query(&expr, dist, flags)?;
            let est = estimate_plan(&plan, stats, dist.num_sites, &cost);
            let mut label = String::new();
            for (on, name) in [
                (flags.coalesce, "coalesce"),
                (flags.site_group_reduction, "site-red"),
                (flags.coord_group_reduction, "coord-red"),
                (flags.sync_reduction, "sync-red"),
            ] {
                if on {
                    if !label.is_empty() {
                        label.push('+');
                    }
                    label.push_str(name);
                }
            }
            if label.is_empty() {
                label = "(none)".to_string();
            }
            out.push_str(&format!(
                "{:<42} {:>6} {:>10} {:>10} {:>11.5}
",
                label, est.syncs, est.est_rows_down, est.est_rows_up, est.est_comm_s
            ));
            if best.as_ref().is_none_or(|(b, _)| est.est_comm_s < *b) {
                best = Some((est.est_comm_s, label));
            }
        }
        if let Some((_, label)) = best {
            out.push_str(&format!("cheapest: {label}"));
        }
        Ok(out)
    }

    fn cmd_sql(&self) -> Result<String> {
        if self.buffer.trim().is_empty() {
            return Err(SkallaError::parse(
                "type a query first, then \\sql before the terminating blank line",
            ));
        }
        let expr = parse_query(&self.buffer, &self.schemas)?;
        let schema = self
            .schemas
            .get(&expr.detail_name)
            .ok_or_else(|| SkallaError::not_found(format!("table `{}`", expr.detail_name)))?;
        to_sql(&expr, schema)
    }

    /// Parse, plan, execute, and render one query.
    pub fn run_query(&mut self, text: &str) -> Result<String> {
        let wh = self
            .warehouse
            .as_ref()
            .ok_or_else(|| SkallaError::exec("no warehouse loaded (try \\load 0.05 4)"))?;
        let dist = self.dist.as_ref().expect("loaded with warehouse");
        let expr = parse_query(text, &self.schemas)?;

        let (mut plan, report): (DistPlan, _) = match self.flag_mode {
            FlagMode::None => plan_query(&expr, dist, OptFlags::none())?,
            FlagMode::All => plan_query(&expr, dist, OptFlags::all())?,
            FlagMode::Auto => {
                let stats = self.stats.as_ref().expect("loaded with warehouse");
                let (plan, report, _) = choose_plan(&expr, dist, stats, &CostModel::lan_2002())?;
                (plan, report)
            }
        };

        plan.retry = self.retry.clone();
        plan.retry.degraded = self.degraded;
        plan.coord_parallelism = self.coord_workers.max(1);
        plan.sync_shards = self.coord_shards;
        if let Some(skew) = self.skew {
            plan.skew = skew;
        }
        if let Some(prune) = self.segment_prune {
            plan = plan.with_segment_prune(prune);
        }

        let mut out = String::new();
        if self.explain {
            let _ = writeln!(out, "{}", report.render());
            let _ = writeln!(out);
        }
        let (result, metrics) = match &self.checkpoint {
            Some(wal) => wh.execute_with_checkpoints(&plan, wal)?,
            None => wh.execute(&plan)?,
        };
        let _ = writeln!(out, "{}", render_preview(&result, self.max_rows));
        if self.explain {
            let _ = writeln!(out, "{}", metrics.render_rounds());
        }
        let _ = write!(out, "-- {} groups | {}", result.len(), metrics.summary());
        self.last_metrics = Some(metrics);
        Ok(out)
    }
}

/// The shell's spelling of a degraded mode.
fn degraded_name(mode: DegradedMode) -> &'static str {
    match mode {
        DegradedMode::Fail => "fail",
        DegradedMode::Partial => "partial",
        DegradedMode::Failover => "failover",
    }
}

/// Render at most `max_rows` rows of a relation (sorted for stability).
pub fn render_preview(rel: &Relation, max_rows: usize) -> String {
    let sorted = rel.sorted();
    if sorted.len() <= max_rows {
        return sorted.to_string();
    }
    let preview = Relation::from_rows_unchecked(
        sorted.schema().clone(),
        sorted.rows().iter().take(max_rows).cloned().collect(),
    );
    format!("{preview}… ({} more rows)", sorted.len() - max_rows)
}

const HELP: &str = "\
commands:
  \\load <scale> <sites>   generate TPCR data and launch a warehouse
  \\tables                 list tables and statistics
  \\flags [none|all|auto]  optimizer flags (auto = cost-based choice)
  \\explain [on|off]       print the Egil plan report before results
  \\sql                    show the SQL reduction of the buffered query
  \\cost                   estimate all 16 flag combinations for the buffered query
  \\faults [spec…]         show or set fault injection (off | seed <n> | drop <r> |
                          dup <r> | delay <r> | crash <site> <after>); applies on \\load
  \\degrade [mode]         coordinator behavior once retries are exhausted
                          (fail | partial | failover)
  \\replicate [r]          partition replication factor (ring) for the next \\load;
                          r > 1 makes `\\degrade failover` give exact answers
  \\failover               replica placement + failover counters of the last query
  \\sync [workers [shards]] coordinator merge workers (>1 = sharded sync pipeline)
  \\skew [mode]            skew-aware execution: auto (planner decides) | off |
                          on [split_threshold [offload_factor]]
  \\segments [prune …]     out-of-core storage status + last query's zone-map pruning
                          counters; `prune on|off|auto` overrides segment pruning
  \\scrub                  verify every segment file's checksums off the query path;
                          quarantine corrupt files and repair from replicas
  \\metrics                per-round cost table + sync/skew breakdown of the last query
  \\help                   this message
  \\q                      quit
queries:
  type a GMDJ query (BASE … ; MD … ;) across any number of lines and
  finish with an empty line to execute it.";

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded() -> Session {
        let mut s = Session::new();
        s.load_tpcr(0.02, 2).unwrap();
        s
    }

    const QUERY: &str = "BASE DISTINCT nationname FROM tpcr;
MD COUNT(*) AS orders, AVG(extendedprice) AS avg_price
   WHERE b.nationname = r.nationname;";

    #[test]
    fn load_and_query_end_to_end() {
        let mut s = loaded();
        let out = s.run_query(QUERY).unwrap();
        assert!(out.contains("nationname"));
        assert!(out.contains("orders"));
        assert!(out.contains("groups |"));
    }

    #[test]
    fn multi_line_accumulation_and_execution() {
        let mut s = loaded();
        for line in QUERY.lines() {
            assert_eq!(s.handle_line(line), Outcome::Continue(String::new()));
            assert!(s.in_query());
        }
        let Outcome::Continue(out) = s.handle_line("") else {
            panic!("query should execute");
        };
        assert!(out.contains("orders"), "{out}");
        assert!(!s.in_query());
    }

    #[test]
    fn commands_work() {
        let mut s = loaded();
        assert!(matches!(s.handle_line("\\help"), Outcome::Continue(h) if h.contains("\\load")));
        assert!(matches!(s.handle_line("\\q"), Outcome::Quit));
        assert!(matches!(s.handle_line("\\tables"), Outcome::Continue(t) if t.contains("tpcr")));
        assert!(
            matches!(s.handle_line("\\flags none"), Outcome::Continue(f) if f.contains("none"))
        );
        assert!(matches!(s.handle_line("\\explain on"), Outcome::Continue(e) if e.contains("on")));
        assert!(
            matches!(s.handle_line("\\bogus"), Outcome::Continue(e) if e.contains("unknown command"))
        );
    }

    #[test]
    fn out_of_core_load_matches_in_memory_and_reports_pruning() {
        let mut mem = loaded();
        let a = mem.run_query(QUERY).unwrap();

        let dir = std::env::temp_dir().join(format!("skalla-cli-ooc-{}", std::process::id()));
        let mut ooc = Session::new();
        ooc.set_data_dir(Some(dir.clone()));
        ooc.set_segment_rows(64);
        let msg = ooc.load_tpcr(0.02, 2).unwrap();
        assert!(msg.contains("out-of-core"), "{msg}");
        let b = ooc.run_query(QUERY).unwrap();

        // Same rendered result table, whatever the storage mode.
        let table = |s: &str| s.split("--").next().unwrap().to_string();
        assert_eq!(table(&a), table(&b));

        // \segments reports the storage layout and the scan counters.
        let Outcome::Continue(seg) = ooc.handle_line("\\segments") else {
            panic!("\\segments should answer");
        };
        assert!(seg.contains("out-of-core"), "{seg}");
        assert!(seg.contains("site 0"), "{seg}");
        assert!(seg.contains("decoded"), "{seg}");

        // The pruning override round-trips and queries still agree.
        assert!(matches!(
            ooc.handle_line("\\segments prune off"),
            Outcome::Continue(s) if s.contains("off")
        ));
        let c = ooc.run_query(QUERY).unwrap();
        assert_eq!(table(&b), table(&c));

        // In-memory sessions say so instead of pretending.
        let Outcome::Continue(seg_mem) = mem.handle_line("\\segments") else {
            panic!("\\segments should answer");
        };
        assert!(seg_mem.contains("in-memory"), "{seg_mem}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_mode_prints_report() {
        let mut s = loaded();
        s.handle_line("\\explain on");
        let out = s.run_query(QUERY).unwrap();
        assert!(out.contains("synchronizations"), "{out}");
        // The per-round table is also shown.
        assert!(out.contains("bytes_down"), "{out}");
    }

    #[test]
    fn flag_modes_agree_on_results() {
        let mut s = loaded();
        let auto = s.run_query(QUERY).unwrap();
        s.handle_line("\\flags none");
        let none = s.run_query(QUERY).unwrap();
        s.handle_line("\\flags all");
        let all = s.run_query(QUERY).unwrap();
        // The rendered table (before the metrics line) must be identical.
        let table = |s: &str| s.split("--").next().unwrap().to_string();
        assert_eq!(table(&auto), table(&none));
        assert_eq!(table(&none), table(&all));
    }

    #[test]
    fn sql_rendering_of_buffered_query() {
        let mut s = loaded();
        for line in QUERY.lines() {
            s.handle_line(line);
        }
        let Outcome::Continue(out) = s.handle_line("\\sql") else {
            panic!()
        };
        assert!(
            out.contains("WITH b0 AS (SELECT DISTINCT nationname FROM tpcr)"),
            "{out}"
        );
        // Buffer still intact: the query can still run.
        let Outcome::Continue(out) = s.handle_line("") else {
            panic!()
        };
        assert!(out.contains("orders"));
    }

    #[test]
    fn sync_reduction_discoverable_on_custname() {
        // The loaded distribution knowledge covers the derived-partitioned
        // column family, so a custname-grouped correlated query collapses
        // to a single synchronization under \flags all.
        let mut s = loaded();
        s.handle_line("\\flags all");
        s.handle_line("\\explain on");
        let out = s
            .run_query(
                "BASE DISTINCT custname FROM tpcr;
                 MD COUNT(*) AS c, AVG(extendedprice) AS a WHERE b.custname = r.custname;
                 MD COUNT(*) AS hi WHERE b.custname = r.custname AND r.extendedprice >= b.a;",
            )
            .unwrap();
        assert!(out.contains("synchronizations:        1"), "{out}");
    }

    #[test]
    fn cost_command_ranks_combinations() {
        let mut s = loaded();
        for line in QUERY.lines() {
            s.handle_line(line);
        }
        let Outcome::Continue(out) = s.handle_line("\\cost") else {
            panic!()
        };
        assert!(out.contains("(none)"), "{out}");
        assert!(out.contains("cheapest:"), "{out}");
        assert!(out.lines().count() >= 17, "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = Session::new();
        // No warehouse yet.
        let Outcome::Continue(out) = s.handle_line("\\tables") else {
            panic!()
        };
        assert!(out.contains("no warehouse"));
        s.handle_line("BASE DISTINCT nope FROM missing;");
        let Outcome::Continue(out) = s.handle_line("") else {
            panic!()
        };
        assert!(out.starts_with("error:"), "{out}");
        // Still usable afterwards.
        s.load_tpcr(0.02, 2).unwrap();
        assert!(s.run_query(QUERY).is_ok());
    }

    #[test]
    fn preview_truncates_long_results() {
        let mut s = loaded();
        s.max_rows = 3;
        let out = s.run_query(QUERY).unwrap();
        assert!(out.contains("more rows"), "{out}");
    }

    #[test]
    fn faults_command_round_trips() {
        let mut s = Session::new();
        let Outcome::Continue(out) = s.handle_line("\\faults") else {
            panic!()
        };
        assert_eq!(out, "faults: none");
        let Outcome::Continue(out) = s.handle_line("\\faults seed 7 drop 0.2 crash 2 5") else {
            panic!()
        };
        assert!(out.contains("seed 7"), "{out}");
        assert!(out.contains("drop 0.2"), "{out}");
        assert!(out.contains("crash(2 after 5)"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\faults off") else {
            panic!()
        };
        assert_eq!(out, "faults: none");
        let Outcome::Continue(out) = s.handle_line("\\faults drop") else {
            panic!()
        };
        assert!(out.contains("usage"), "{out}");
    }

    #[test]
    fn degrade_command_switches_modes() {
        let mut s = Session::new();
        let Outcome::Continue(out) = s.handle_line("\\degrade") else {
            panic!()
        };
        assert!(out.contains("fail"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\degrade partial") else {
            panic!()
        };
        assert!(out.contains("partial"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\degrade bogus") else {
            panic!()
        };
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn replicated_failover_matches_fault_free_run() {
        // Crash one of two sites mid-query under 2-way replication: the
        // coordinator re-plans onto the surviving replica and the rendered
        // result is identical to the fault-free run.
        let mut s = Session::new();
        s.handle_line("\\replicate 2");
        s.handle_line("\\degrade failover");
        s.handle_line("\\faults crash 2 4");
        s.set_retry_policy(RetryPolicy {
            deadline: std::time::Duration::from_millis(200),
            ..RetryPolicy::default()
        });
        let msg = s.load_tpcr(0.02, 2).unwrap();
        assert!(msg.contains("2-way replicated"), "{msg}");
        let failed_over = s.run_query(QUERY).unwrap();
        let mut clean = loaded();
        let fault_free = clean.run_query(QUERY).unwrap();
        let table = |s: &str| s.split("--").next().unwrap().to_string();
        assert_eq!(table(&failed_over), table(&fault_free));
        let Outcome::Continue(f) = s.handle_line("\\failover") else {
            panic!()
        };
        assert!(f.contains("2 partitions × 2 replicas"), "{f}");
        assert!(f.contains("failover(s)"), "{f}");
    }

    #[test]
    fn replicate_and_degrade_commands_round_trip() {
        let mut s = Session::new();
        let Outcome::Continue(out) = s.handle_line("\\replicate 3") else {
            panic!()
        };
        assert!(out.contains("replication factor: 3"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\degrade failover") else {
            panic!()
        };
        assert!(out.contains("failover"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\failover") else {
            panic!()
        };
        assert!(out.contains("no warehouse"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\replicate nope") else {
            panic!()
        };
        assert!(out.contains("usage"), "{out}");
    }

    #[test]
    fn checkpointed_query_appends_wal() {
        let dir = std::env::temp_dir().join(format!("skalla-cli-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = CheckpointWal::new(dir.join("cli.wal"));
        wal.clear().unwrap();
        let mut s = loaded();
        s.set_checkpoint_wal(wal.clone());
        let first = s.run_query(QUERY).unwrap();
        assert!(std::fs::metadata(wal.path()).unwrap().len() > 0);
        // Re-running the same query resumes from the completed log: the
        // rendered table is unchanged.
        let resumed = s.run_query(QUERY).unwrap();
        let table = |s: &str| s.split("--").next().unwrap().to_string();
        assert_eq!(table(&first), table(&resumed));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lossy_network_still_answers_queries() {
        // A seeded lossy fabric behind the shell: the retry machinery makes
        // the query come out identical to the fault-free run.
        let mut s = Session::new();
        s.handle_line("\\faults seed 42 drop 0.1");
        s.set_retry_policy(RetryPolicy {
            deadline: std::time::Duration::from_millis(200),
            ..RetryPolicy::default()
        });
        s.load_tpcr(0.02, 2).unwrap();
        let lossy = s.run_query(QUERY).unwrap();
        let mut clean = loaded();
        let fault_free = clean.run_query(QUERY).unwrap();
        let table = |s: &str| s.split("--").next().unwrap().to_string();
        assert_eq!(table(&lossy), table(&fault_free));
    }

    #[test]
    fn sync_command_and_metrics_breakdown() {
        let mut s = loaded();
        // Before any query, \metrics has nothing to show.
        let Outcome::Continue(out) = s.handle_line("\\metrics") else {
            panic!()
        };
        assert!(out.contains("no query executed"), "{out}");

        let Outcome::Continue(out) = s.handle_line("\\sync") else {
            panic!()
        };
        assert_eq!(out, "coordinator sync workers: 1 (serial, default shards)");
        let Outcome::Continue(out) = s.handle_line("\\sync 4") else {
            panic!()
        };
        assert_eq!(
            out,
            "coordinator sync workers: 4 (sharded pipeline, default shards)"
        );
        let Outcome::Continue(out) = s.handle_line("\\sync 4 32") else {
            panic!()
        };
        assert_eq!(
            out,
            "coordinator sync workers: 4 (sharded pipeline, 32 shards)"
        );
        // Dropping the shard override restores the default layout.
        let Outcome::Continue(out) = s.handle_line("\\sync 4") else {
            panic!()
        };
        assert_eq!(
            out,
            "coordinator sync workers: 4 (sharded pipeline, default shards)"
        );
        let Outcome::Continue(out) = s.handle_line("\\sync nope") else {
            panic!()
        };
        assert!(out.contains("usage"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\sync 4 nope") else {
            panic!()
        };
        assert!(out.contains("usage"), "{out}");

        // Sharded and serial runs agree on results; \metrics distinguishes
        // them at the prompt.
        let sharded = s.run_query(QUERY).unwrap();
        let Outcome::Continue(m) = s.handle_line("\\metrics") else {
            panic!()
        };
        assert!(m.contains("workers × "), "{m}");
        assert!(m.contains("sync: decode"), "{m}");
        s.handle_line("\\sync 1");
        let serial = s.run_query(QUERY).unwrap();
        let Outcome::Continue(m) = s.handle_line("\\metrics") else {
            panic!()
        };
        assert!(m.contains("(serial)"), "{m}");
        let table = |s: &str| s.split("--").next().unwrap().to_string();
        assert_eq!(table(&sharded), table(&serial));
    }

    #[test]
    fn skew_command_round_trips_and_overrides_plans() {
        let mut s = Session::new();
        let Outcome::Continue(out) = s.handle_line("\\skew") else {
            panic!()
        };
        assert!(out.contains("auto"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\skew on 1.25 2.5") else {
            panic!()
        };
        assert!(out.contains("split above 1.25×"), "{out}");
        assert!(out.contains("offload past 2.5× median"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\skew off") else {
            panic!()
        };
        assert!(out.contains("forced uniform"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\skew auto") else {
            panic!()
        };
        assert!(out.contains("auto"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\skew sideways") else {
            panic!()
        };
        assert!(out.contains("usage"), "{out}");
        let Outcome::Continue(out) = s.handle_line("\\skew on nope") else {
            panic!()
        };
        assert!(out.contains("usage"), "{out}");

        // A forced-on policy rides along on a replicated load and leaves a
        // visible trail in \metrics (the sketches report partition loads
        // even when nothing is hot enough to split).
        s.handle_line("\\replicate 2");
        s.handle_line("\\degrade failover");
        s.handle_line("\\skew on 1.05");
        s.load_tpcr(0.02, 2).unwrap();
        let forced = s.run_query(QUERY).unwrap();
        // Second run: the first run's sketches seed the load cache, so the
        // split decision has data to act on. Results stay identical.
        let again = s.run_query(QUERY).unwrap();
        let table = |s: &str| s.split("--").next().unwrap().to_string();
        assert_eq!(table(&forced), table(&again));
        let Outcome::Continue(m) = s.handle_line("\\metrics") else {
            panic!()
        };
        assert!(m.contains("skew:"), "{m}");
        assert!(m.contains("partition imbalance"), "{m}");

        // And forcing it off matches the uniform path bit-for-bit.
        s.handle_line("\\skew off");
        let uniform = s.run_query(QUERY).unwrap();
        assert_eq!(table(&forced), table(&uniform));
    }

    #[test]
    fn reload_replaces_warehouse() {
        let mut s = loaded();
        let msg = s.load_tpcr(0.01, 3).unwrap();
        assert!(msg.contains("3 sites"));
        assert!(s.run_query(QUERY).is_ok());
    }
}
