//! The distributed warehouse: coordinator-side execution of
//! Alg. GMDJDistribEval.
//!
//! [`DistributedWarehouse::launch`] spawns one worker thread per site, each
//! owning its local catalog, connected through the simulated network.
//! [`DistributedWarehouse::execute`] then drives a [`DistPlan`] through its
//! rounds exactly as the paper's Fig. 1 (right) describes: ship base
//! (fragments) down, evaluate sub-aggregates at the sites, synchronize the
//! base-result structure at the coordinator, repeat.
//!
//! [`DistributedWarehouse::execute_ship_all`] is the anti-baseline: ship all
//! detail data to the coordinator and evaluate centrally — the strategy
//! whose transfer volume Theorem 2 shows Skalla never needs.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use skalla_expr::{eval_base, Expr};
use skalla_gmdj::{eval_expr_centralized, AggSpec, GmdjExpr};
use skalla_net::{CostModel, Endpoint, FaultPlan, NodeId, SimNetwork, TransferStats};
use skalla_storage::Catalog;
use skalla_types::{DataType, Field, Relation, Result, Schema, SkallaError, Value};

use crate::baseresult::BaseResult;
use crate::message::Message;
use crate::metrics::{Coverage, ExecMetrics, RoundMetrics};
use crate::plan::{BaseRound, DegradedMode, DistPlan, RetryPolicy, Segment};
use crate::site::run_site;
use crate::sync::{ShardedSync, SyncOptions, SyncOutput, SyncSpec};

/// The synchronization structure a segment round merges fragments into:
/// the serial [`BaseResult`] or the sharded pipeline, per
/// [`DistPlan::coord_parallelism`].
enum Syncer {
    Serial(BaseResult),
    Sharded(ShardedSync),
}

/// A running distributed data warehouse: `n` site threads plus this
/// coordinator handle.
pub struct DistributedWarehouse {
    pub(crate) net: SimNetwork,
    pub(crate) coord: Endpoint,
    pub(crate) handles: Vec<JoinHandle<()>>,
    pub(crate) num_sites: usize,
    pub(crate) schemas: HashMap<String, Arc<Schema>>,
    /// Query epoch: stamped on every request, echoed by sites; replies
    /// from an aborted earlier query are recognized and dropped.
    pub(crate) epoch: AtomicU64,
}

impl DistributedWarehouse {
    /// Launch one site per catalog. The coordinator records each table's
    /// schema (global metadata every warehouse coordinator has).
    pub fn launch(catalogs: Vec<Catalog>, cost: CostModel) -> Result<DistributedWarehouse> {
        Self::launch_with_faults(catalogs, cost, FaultPlan::none())
    }

    /// [`DistributedWarehouse::launch`] with deterministic fault injection:
    /// the [`FaultPlan`] is threaded into every network endpoint, so the
    /// coordinator's deadline/retry/degradation machinery can be exercised
    /// reproducibly.
    pub fn launch_with_faults(
        catalogs: Vec<Catalog>,
        cost: CostModel,
        faults: FaultPlan,
    ) -> Result<DistributedWarehouse> {
        let n = catalogs.len();
        if n == 0 {
            return Err(SkallaError::plan("warehouse needs at least one site"));
        }
        let mut schemas: HashMap<String, Arc<Schema>> = HashMap::new();
        for c in &catalogs {
            for name in c.table_names() {
                let t = c.get(name)?;
                match schemas.get(name) {
                    None => {
                        schemas.insert(name.to_string(), t.schema().clone());
                    }
                    Some(existing) if **existing == **t.schema() => {}
                    Some(_) => {
                        return Err(SkallaError::schema(format!(
                            "table `{name}` has differing schemas across sites"
                        )))
                    }
                }
            }
        }

        let (net, mut endpoints) = SimNetwork::full_mesh_with_faults(n + 1, cost, faults);
        // endpoints[0] is the coordinator; 1..=n are the sites.
        let mut handles = Vec::with_capacity(n);
        // Drain from the back so indices stay valid.
        let mut site_endpoints: Vec<Endpoint> = endpoints.drain(1..).collect();
        let coord = endpoints.pop().expect("coordinator endpoint");
        for catalog in catalogs.into_iter().rev() {
            let ep = site_endpoints.pop().expect("site endpoint");
            handles.push(std::thread::spawn(move || run_site(ep, catalog)));
        }
        Ok(DistributedWarehouse {
            net,
            coord,
            handles,
            num_sites: n,
            schemas,
            epoch: AtomicU64::new(0),
        })
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The simulated network (for stats inspection).
    pub fn network(&self) -> &SimNetwork {
        &self.net
    }

    /// Schema of a named detail table.
    pub fn table_schema(&self, name: &str) -> Result<Arc<Schema>> {
        self.schemas
            .get(name)
            .cloned()
            .ok_or_else(|| SkallaError::not_found(format!("table `{name}`")))
    }

    fn send_framed(&self, site: NodeId, msg: &Message, round: u32) -> Result<()> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        self.coord.send(site, msg.to_wire_framed(epoch, round))
    }

    /// Send one round's requests and collect every reply, enforcing the
    /// retry policy's per-round deadline.
    ///
    /// Accepted in-order reply messages are handed to `sink`; duplicated
    /// frames and replayed chunks are discarded by sequence number, so the
    /// sink's (non-idempotent) merge sees each chunk exactly once. When a
    /// round's deadline expires, the plan and request are re-sent to every
    /// silent site (sites replay served rounds from a reply cache, so this
    /// is always safe) with exponential backoff. A site that exhausts the
    /// budget — or whose channel is gone — is handled per the degraded
    /// mode: [`DegradedMode::Fail`] errors naming the site,
    /// [`DegradedMode::Partial`] records it in `dead` and the round
    /// completes from the remaining sites.
    ///
    /// Seconds spent decoding reply frames off the wire are accumulated
    /// into `decode_s`, separately from whatever the sink does with the
    /// decoded message.
    #[allow(clippy::too_many_arguments)]
    fn collect_round(
        &self,
        round: u32,
        retry: &RetryPolicy,
        resend_plan: Option<&Message>,
        requests: &[(NodeId, Message)],
        dead: &mut HashSet<NodeId>,
        decode_s: &mut f64,
        sink: &mut dyn FnMut(NodeId, Message) -> Result<()>,
    ) -> Result<()> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let mut prog: BTreeMap<NodeId, SiteProgress> = requests
            .iter()
            .map(|(s, _)| (*s, SiteProgress::default()))
            .collect();
        for (site, req) in requests {
            if self.send_framed(*site, req, round).is_err() {
                self.site_lost(*site, retry, dead, &mut prog)?;
            }
        }
        let mut timeouts = 0u32;
        while prog.values().any(|p| !p.done) {
            let window = retry.deadline_for_attempt(timeouts);
            let mut deadline = Instant::now() + window;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let env = match self.coord.try_recv_for(remaining) {
                    Ok(Some(env)) => env,
                    Ok(None) => break, // attempt window expired
                    Err(e) => {
                        // Every peer endpoint is gone: no reply can ever
                        // arrive for the remaining sites.
                        if retry.degraded == DegradedMode::Fail {
                            return Err(e);
                        }
                        let silent: Vec<NodeId> = pending_sites(&prog);
                        for s in silent {
                            self.site_lost(s, retry, dead, &mut prog)?;
                        }
                        break;
                    }
                };
                let t_decode = Instant::now();
                let decoded = Message::from_wire_framed(&env.payload);
                *decode_s += t_decode.elapsed().as_secs_f64();
                let Ok((e, r, msg)) = decoded else {
                    continue; // unparseable frame: treated as loss, retry recovers
                };
                if e != epoch || r != round {
                    continue; // straggler from an aborted query or earlier round
                }
                let src = env.src;
                let Some(p) = prog.get_mut(&src) else {
                    continue; // not a participant in this round
                };
                if p.done {
                    continue; // duplicate after the site already completed
                }
                if let Message::Error { msg } = msg {
                    p.error_retries += 1;
                    if p.error_retries > retry.max_retries {
                        return Err(SkallaError::exec(format!("site {src}: {msg}")));
                    }
                    if self.resend(src, resend_plan, requests, round).is_err() {
                        self.site_lost(src, retry, dead, &mut prog)?;
                    }
                    continue;
                }
                let Some((seq, last)) = reply_seq_last(&msg) else {
                    return Err(SkallaError::exec(format!(
                        "site {src}: expected round reply, got {msg:?}"
                    )));
                };
                if seq != p.expected_seq {
                    continue; // duplicated or replayed chunk
                }
                p.expected_seq += 1;
                if last {
                    p.done = true;
                }
                sink(src, msg)?;
                // Replies are flowing; extend this attempt's window.
                deadline = Instant::now() + window;
                if prog.values().all(|p| p.done) {
                    break;
                }
            }
            let silent = pending_sites(&prog);
            if silent.is_empty() {
                break;
            }
            timeouts += 1;
            if timeouts > retry.max_retries {
                match retry.degraded {
                    DegradedMode::Fail => {
                        return Err(SkallaError::exec(format!(
                            "site {} did not respond within {:?} after {} retries",
                            silent[0], window, retry.max_retries
                        )));
                    }
                    DegradedMode::Partial => {
                        for s in silent {
                            self.site_lost(s, retry, dead, &mut prog)?;
                        }
                    }
                }
            } else {
                for s in silent {
                    if self.resend(s, resend_plan, requests, round).is_err() {
                        self.site_lost(s, retry, dead, &mut prog)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-send the plan (sites may have lost the original broadcast) and
    /// the site's round request.
    fn resend(
        &self,
        site: NodeId,
        plan: Option<&Message>,
        requests: &[(NodeId, Message)],
        round: u32,
    ) -> Result<()> {
        if let Some(p) = plan {
            self.send_framed(site, p, round)?;
        }
        let req = requests
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, m)| m)
            .expect("resend target was a participant");
        self.send_framed(site, req, round)
    }

    /// A site is gone for good (crashed channel or exhausted budget):
    /// fail the query or degrade, per the policy.
    fn site_lost(
        &self,
        site: NodeId,
        retry: &RetryPolicy,
        dead: &mut HashSet<NodeId>,
        prog: &mut BTreeMap<NodeId, SiteProgress>,
    ) -> Result<()> {
        match retry.degraded {
            DegradedMode::Fail => Err(SkallaError::exec(format!(
                "site {site} is unreachable (crashed or disconnected)"
            ))),
            DegradedMode::Partial => {
                if let Some(p) = prog.get_mut(&site) {
                    if p.expected_seq > 0 && !p.done {
                        // Some of the site's chunks were already folded into
                        // the synchronized structure; the merge cannot be
                        // rolled back (documented limitation — see
                        // docs/FAULT_MODEL.md).
                        return Err(SkallaError::exec(format!(
                            "site {site} was lost mid-reply; partially merged \
                             chunks cannot be rolled back"
                        )));
                    }
                    p.done = true;
                }
                dead.insert(site);
                if dead.len() == self.num_sites {
                    return Err(SkallaError::exec("every site failed; no result possible"));
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn round_metrics_from(
        &self,
        label: impl Into<String>,
        before: &TransferStats,
        site_times: &[f64],
        coord_compute_s: f64,
        groups: usize,
        rows_down: u64,
        rows_up: u64,
    ) -> RoundMetrics {
        let delta = self.net.stats().diff(before);
        let cost = self.net.cost_model();
        RoundMetrics {
            label: label.into(),
            bytes_down: delta.bytes_from(0),
            bytes_up: delta.bytes_to(0),
            rows_down,
            rows_up,
            messages: delta.total_messages(),
            site_compute_max_s: site_times.iter().copied().fold(0.0, f64::max),
            site_compute_total_s: site_times.iter().sum(),
            coord_compute_s,
            comm_modeled_s: delta.serial_time(&cost),
            sites: site_times.len(),
            groups,
            blocks_compiled: 0,
            blocks_interpreted: 0,
            sync_decode_s: 0.0,
            sync_merge_s: 0.0,
            sync_finalize_s: 0.0,
            sync_workers: 0,
            sync_shards: 0,
            sync_utilization: 0.0,
        }
    }

    /// Execute a distributed plan; returns the final relation and the cost
    /// breakdown.
    pub fn execute(&self, plan: &DistPlan) -> Result<(Relation, ExecMetrics)> {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        plan.validate()?;
        let expr = &plan.expr;
        let default_schema = self.table_schema(&expr.detail_name)?;
        expr.validate(&default_schema)?;

        let wall_start = Instant::now();
        let mut metrics = ExecMetrics {
            rounds: Vec::new(),
            wall_s: 0.0,
            cost_model: Some(self.net.cost_model()),
            coverage: None,
        };

        // Ship the plan. Coordinator-side group-reduction filters are
        // applied before shipping bases and never evaluated at the sites,
        // so they are stripped from the shipped copy (they can embed large
        // partition-value sets). A site whose channel is already gone is
        // either fatal or written off, per the degraded mode.
        let before = self.net.stats();
        let mut site_plan = plan.clone();
        for r in &mut site_plan.rounds {
            r.coord_filters = None;
        }
        let plan_msg = Message::Plan(site_plan);
        let mut dead: HashSet<NodeId> = HashSet::new();
        let mut round_no: u32 = 0;
        for site in 1..=self.num_sites as NodeId {
            if self.send_framed(site, &plan_msg, round_no).is_err() {
                match plan.retry.degraded {
                    DegradedMode::Fail => {
                        return Err(SkallaError::exec(format!(
                            "site {site} is unreachable (crashed or disconnected)"
                        )))
                    }
                    DegradedMode::Partial => {
                        dead.insert(site);
                        if dead.len() == self.num_sites {
                            return Err(SkallaError::exec("every site failed; no result possible"));
                        }
                    }
                }
            }
        }
        metrics
            .rounds
            .push(self.round_metrics_from("plan", &before, &[], 0.0, 0, 0, 0));

        // Base round.
        let mut current: Option<Relation> = match &plan.base_round {
            BaseRound::Coordinator(rel) => Some(rel.clone()),
            BaseRound::LocalOnly => None,
            BaseRound::Distributed => {
                round_no += 1;
                let before = self.net.stats();
                let requests: Vec<(NodeId, Message)> = (1..=self.num_sites as NodeId)
                    .filter(|s| !dead.contains(s))
                    .map(|s| (s, Message::ComputeBase))
                    .collect();
                let mut site_times = Vec::with_capacity(requests.len());
                let mut rows_up = 0u64;
                let mut combined: Option<Relation> = None;
                let mut coord_s = 0.0;
                let mut decode_s = 0.0;
                self.collect_round(
                    round_no,
                    &plan.retry,
                    Some(&plan_msg),
                    &requests,
                    &mut dead,
                    &mut decode_s,
                    &mut |_src, msg| {
                        let Message::BaseFragment { rel, compute_s } = msg else {
                            return Err(SkallaError::exec("expected BaseFragment"));
                        };
                        let t = Instant::now();
                        site_times.push(compute_s);
                        rows_up += rel.len() as u64;
                        match &mut combined {
                            None => combined = Some(rel),
                            Some(acc) => acc.union_all(rel)?,
                        }
                        coord_s += t.elapsed().as_secs_f64();
                        Ok(())
                    },
                )?;
                let t = Instant::now();
                let b0 = combined
                    .ok_or_else(|| SkallaError::exec("no base fragments received"))?
                    .distinct();
                coord_s += t.elapsed().as_secs_f64();
                let groups = b0.len();
                let mut rm = self.round_metrics_from(
                    "base",
                    &before,
                    &site_times,
                    coord_s + decode_s,
                    groups,
                    0,
                    rows_up,
                );
                rm.sync_decode_s = decode_s;
                metrics.rounds.push(rm);
                Some(b0)
            }
        };

        // Evaluation segments.
        for seg in plan.segments() {
            let (start, end, label) = match seg {
                Segment::Standard { op } => (op, op, format!("round {}", op + 1)),
                Segment::LocalRun { start, end } => {
                    (start, end, format!("local-run {}-{}", start + 1, end + 1))
                }
            };
            let local_base = start == 0 && matches!(plan.base_round, BaseRound::LocalOnly);
            let is_local_run = matches!(seg, Segment::LocalRun { .. });

            // Flattened aggregates + output fields + declared state types
            // for the segment.
            let mut specs: Vec<AggSpec> = Vec::new();
            let mut output_fields: Vec<Field> = Vec::new();
            let mut state_types: Vec<DataType> = Vec::new();
            for k in start..=end {
                let schema_k = self.table_schema(expr.detail_for_op(k))?;
                for a in expr.ops[k].all_aggs() {
                    state_types.extend(a.state_fields(&schema_k)?.into_iter().map(|f| f.dtype));
                }
                specs.extend(expr.ops[k].all_aggs().cloned());
                output_fields.extend(expr.ops[k].output_fields(&schema_k)?);
            }

            let before = self.net.stats();
            let t_coord = Instant::now();

            let mut x = if plan.coord_parallelism > 1 {
                let (base_schema, seed) = if local_base {
                    (Arc::new(expr.base_schema(&default_schema)?), None)
                } else {
                    let base = current
                        .as_ref()
                        .ok_or_else(|| SkallaError::exec("segment has no base relation"))?;
                    (base.schema().clone(), Some(base))
                };
                Syncer::Sharded(ShardedSync::new(
                    SyncSpec {
                        base_schema,
                        key_cols: expr.key.clone(),
                        specs,
                        state_types,
                        output: SyncOutput::Finalized(output_fields),
                        allow_new: local_base,
                    },
                    seed,
                    SyncOptions::for_workers(plan.coord_parallelism),
                )?)
            } else if local_base {
                let b0_schema = Arc::new(expr.base_schema(&default_schema)?);
                Syncer::Serial(BaseResult::empty(
                    b0_schema,
                    &expr.key,
                    specs,
                    output_fields,
                ))
            } else {
                let base = current
                    .as_ref()
                    .ok_or_else(|| SkallaError::exec("segment has no base relation"))?;
                Syncer::Serial(BaseResult::from_base(
                    base,
                    &expr.key,
                    specs,
                    output_fields,
                )?)
            };

            // Ship requests. For a multi-operator local run, a group must
            // reach site i if it could contribute to ANY operator in the
            // run, so per-site filters are the OR across the run's rounds —
            // and filtering is only possible when every round has filters.
            let filters: Option<Vec<Expr>> = if start == end {
                plan.rounds[start].coord_filters.clone()
            } else {
                let per_round: Option<Vec<&Vec<Expr>>> = plan.rounds[start..=end]
                    .iter()
                    .map(|r| r.coord_filters.as_ref())
                    .collect();
                per_round.map(|rounds_filters| {
                    (0..self.num_sites)
                        .map(|i| {
                            skalla_expr::simplify(&Expr::disjunction(
                                rounds_filters.iter().map(|fs| fs[i].clone()),
                            ))
                        })
                        .collect()
                })
            };
            let filters = filters.as_ref();
            let mut requests: Vec<(NodeId, Message)> = Vec::with_capacity(self.num_sites);
            let mut rows_down = 0u64;
            for site in 1..=self.num_sites as NodeId {
                if dead.contains(&site) {
                    continue;
                }
                let base_for_site: Option<Relation> = if local_base {
                    None
                } else {
                    let base = current.as_ref().expect("checked above");
                    let frag = match filters {
                        Some(fs) => filter_base(base, &fs[site as usize - 1])?,
                        None => base.clone(),
                    };
                    if frag.is_empty() && filters.is_some() {
                        // This site cannot contribute to any group.
                        continue;
                    }
                    Some(frag)
                };
                rows_down += base_for_site.as_ref().map_or(0, |b| b.len() as u64);
                let msg = if is_local_run || local_base {
                    Message::LocalRun {
                        start: start as u32,
                        end: end as u32,
                        base: base_for_site,
                    }
                } else {
                    Message::Round {
                        op_idx: start as u32,
                        base: base_for_site.expect("standard round ships a base"),
                    }
                };
                requests.push((site, msg));
            }
            let coord_prep_s = t_coord.elapsed().as_secs_f64();

            // Collect and synchronize. Fragments merge as they arrive —
            // with row blocking, chunks from fast sites are folded into X
            // while slower sites are still computing (paper §3.2). The
            // collector deduplicates chunks by sequence number, so the
            // non-idempotent merge is safe under retries and duplication.
            round_no += 1;
            let mut coord_sync_s = 0.0;
            let mut decode_s = 0.0;
            let mut site_times = Vec::with_capacity(requests.len());
            let mut rows_up = 0u64;
            let mut blocks_compiled = 0u64;
            let mut blocks_interpreted = 0u64;
            self.collect_round(
                round_no,
                &plan.retry,
                Some(&plan_msg),
                &requests,
                &mut dead,
                &mut decode_s,
                &mut |src, msg| {
                    let (h, compute_s, bc, bi, last) = match msg {
                        Message::RoundResult {
                            h,
                            compute_s,
                            blocks_compiled,
                            blocks_interpreted,
                            last,
                            ..
                        } => (h, compute_s, blocks_compiled, blocks_interpreted, last),
                        Message::LocalRunResult {
                            ship,
                            compute_s,
                            blocks_compiled,
                            blocks_interpreted,
                            last,
                            ..
                        } => (ship, compute_s, blocks_compiled, blocks_interpreted, last),
                        other => {
                            return Err(SkallaError::exec(format!(
                                "site {src}: expected round result, got {other:?}"
                            )))
                        }
                    };
                    blocks_compiled += u64::from(bc);
                    blocks_interpreted += u64::from(bi);
                    let t = Instant::now();
                    rows_up += h.len() as u64;
                    match &mut x {
                        // Serial: the closure time IS the merge time.
                        Syncer::Serial(b) => b.merge_fragment(&h, local_base)?,
                        // Sharded: the closure time is the router
                        // (validate + partition); merging happens on the
                        // worker pool, overlapped with receive.
                        Syncer::Sharded(s) => s.merge_chunk(h)?,
                    }
                    if last {
                        site_times.push(compute_s);
                    }
                    coord_sync_s += t.elapsed().as_secs_f64();
                    Ok(())
                },
            )?;
            let t_final = Instant::now();
            let (finalized, merge_s, finalize_s, workers, shards, utilization, sync_tail_s) =
                match x {
                    Syncer::Serial(b) => {
                        let rel = b.finalize()?;
                        let fin_s = t_final.elapsed().as_secs_f64();
                        (rel, coord_sync_s, fin_s, 1, 1, 0.0, coord_sync_s + fin_s)
                    }
                    Syncer::Sharded(s) => {
                        let (rel, stats) = s.finish()?;
                        (
                            rel,
                            stats.merge_busy_s,
                            stats.finalize_s,
                            stats.workers,
                            stats.shards,
                            stats.utilization(),
                            // The serialized (non-overlapped) coordinator
                            // cost: routing plus the drain after the last
                            // chunk.
                            coord_sync_s + stats.drain_s,
                        )
                    }
                };
            let groups = finalized.len();
            current = Some(finalized);
            let mut rm = self.round_metrics_from(
                label,
                &before,
                &site_times,
                coord_prep_s + decode_s + sync_tail_s,
                groups,
                rows_down,
                rows_up,
            );
            rm.blocks_compiled = blocks_compiled;
            rm.blocks_interpreted = blocks_interpreted;
            rm.sync_decode_s = decode_s;
            rm.sync_merge_s = merge_s;
            rm.sync_finalize_s = finalize_s;
            rm.sync_workers = workers;
            rm.sync_shards = shards;
            rm.sync_utilization = utilization;
            metrics.rounds.push(rm);
        }

        metrics.wall_s = wall_start.elapsed().as_secs_f64();
        metrics.coverage = Some(Coverage {
            responded: self.num_sites - dead.len(),
            total: self.num_sites,
        });
        let result = current.ok_or_else(|| SkallaError::exec("plan produced no result"))?;
        Ok((result, metrics))
    }

    /// The ship-all-detail-data baseline: every site sends its raw
    /// partition(s) to the coordinator, which evaluates the expression
    /// centrally. Skalla never does this — Theorem 2 bounds its transfers
    /// by the *result* size, while this baseline transfers the *fact
    /// relation*.
    pub fn execute_ship_all(&self, expr: &GmdjExpr) -> Result<(Relation, ExecMetrics)> {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        let wall_start = Instant::now();
        let mut names: Vec<&str> = vec![expr.detail_name.as_str()];
        for op in &expr.ops {
            if let Some(n) = &op.detail_name {
                if !names.contains(&n.as_str()) {
                    names.push(n);
                }
            }
        }

        let before = self.net.stats();
        let mut catalog = Catalog::new();
        let mut site_times: Vec<f64> = vec![0.0; self.num_sites];
        // The baseline takes no plan, so it runs under the default retry
        // policy (fail on an unresponsive site).
        let retry = RetryPolicy::default();
        let mut dead: HashSet<NodeId> = HashSet::new();
        let mut round_no: u32 = 0;
        let mut decode_s = 0.0;
        for name in names {
            round_no += 1;
            let requests: Vec<(NodeId, Message)> = (1..=self.num_sites as NodeId)
                .map(|s| {
                    (
                        s,
                        Message::ShipAllRequest {
                            table: name.to_string(),
                        },
                    )
                })
                .collect();
            let schema = self.table_schema(name)?;
            let mut builder = skalla_storage::TableBuilder::new(schema);
            self.collect_round(
                round_no,
                &retry,
                None,
                &requests,
                &mut dead,
                &mut decode_s,
                &mut |src, msg| {
                    let Message::ShipAllData { rel, compute_s } = msg else {
                        return Err(SkallaError::exec("expected ShipAllData"));
                    };
                    site_times[src as usize - 1] += compute_s;
                    for row in rel.rows() {
                        builder.push_row(row)?;
                    }
                    Ok(())
                },
            )?;
            catalog.register(name, builder.finish());
        }

        let rows_shipped: u64 = catalog
            .table_names()
            .iter()
            .map(|n| catalog.get(n).map(|t| t.len() as u64).unwrap_or(0))
            .sum();
        let t = Instant::now();
        let result = eval_expr_centralized(expr, &catalog)?;
        let groups = result.len();
        let coord_s = t.elapsed().as_secs_f64();

        let mut metrics = ExecMetrics {
            rounds: Vec::new(),
            wall_s: 0.0,
            cost_model: Some(self.net.cost_model()),
            coverage: Some(Coverage {
                responded: self.num_sites - dead.len(),
                total: self.num_sites,
            }),
        };
        let mut rm = self.round_metrics_from(
            "ship-all",
            &before,
            &site_times,
            coord_s + decode_s,
            groups,
            0,
            rows_shipped,
        );
        rm.sync_decode_s = decode_s;
        metrics.rounds.push(rm);
        metrics.wall_s = wall_start.elapsed().as_secs_f64();
        Ok((result, metrics))
    }

    /// Shut down all site threads. Best-effort: the shutdown message is
    /// sent reliably (it bypasses injected drop/delay faults), and a site
    /// whose channel is already gone — e.g. crashed by fault injection —
    /// has nothing left to shut down.
    pub fn shutdown(mut self) -> Result<()> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        for site in 1..=self.num_sites as NodeId {
            let _ = self
                .coord
                .send_reliable(site, Message::Shutdown.to_wire_framed(epoch, 0));
        }
        for h in self.handles.drain(..) {
            h.join()
                .map_err(|_| SkallaError::exec("site thread panicked"))?;
        }
        Ok(())
    }
}

impl Drop for DistributedWarehouse {
    fn drop(&mut self) {
        // Best-effort teardown if the user forgot to call shutdown().
        let epoch = self.epoch.load(Ordering::Relaxed);
        for site in 1..=self.num_sites as NodeId {
            let _ = self
                .coord
                .send_reliable(site, Message::Shutdown.to_wire_framed(epoch, 0));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-site reply progress within one collection round.
#[derive(Default)]
struct SiteProgress {
    /// The site's `last` chunk was accepted (or the site was written off).
    done: bool,
    /// Next chunk sequence number the coordinator will accept.
    expected_seq: u32,
    /// How many `Error` replies this site has been retried for.
    error_retries: u32,
}

fn pending_sites(prog: &BTreeMap<NodeId, SiteProgress>) -> Vec<NodeId> {
    prog.iter()
        .filter(|(_, p)| !p.done)
        .map(|(s, _)| *s)
        .collect()
}

/// The `(seq, last)` pair of a round reply; `None` for non-reply messages.
/// Single-message replies are their own final chunk.
fn reply_seq_last(msg: &Message) -> Option<(u32, bool)> {
    match msg {
        Message::BaseFragment { .. } | Message::ShipAllData { .. } => Some((0, true)),
        Message::RoundResult { seq, last, .. } => Some((*seq, *last)),
        Message::LocalRunResult { seq, last, .. } => Some((*seq, *last)),
        _ => None,
    }
}

/// Apply a coordinator-side group-reduction filter to the base relation.
fn filter_base(base: &Relation, filter: &Expr) -> Result<Relation> {
    if *filter == Expr::lit(true) {
        return Ok(base.clone());
    }
    if *filter == Expr::lit(false) {
        return Ok(Relation::empty(base.schema().clone()));
    }
    let mut rows = Vec::new();
    for row in base.rows() {
        match eval_base(filter, row)? {
            Value::Bool(true) => rows.push(row.clone()),
            Value::Bool(false) | Value::Null => {}
            other => {
                return Err(SkallaError::type_error(format!(
                    "group filter evaluated to {other}"
                )))
            }
        }
    }
    Ok(Relation::from_rows_unchecked(base.schema().clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_expr::Expr;
    use skalla_gmdj::{AggSpec, BaseSpec, GmdjBlock, GmdjOp};
    use skalla_storage::{partition_by_hash, Table};
    use skalla_types::DataType;

    fn flow_schema() -> Arc<Schema> {
        Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc()
    }

    fn flow_table(rows: usize) -> Table {
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Int((i % 7) as i64),
                    Value::Int((i % 5) as i64),
                    Value::Int((i * 13 % 101) as i64),
                ]
            })
            .collect();
        Table::from_rows(flow_schema(), &data).unwrap()
    }

    fn warehouse(n_sites: usize, rows: usize) -> (DistributedWarehouse, Catalog) {
        let t = flow_table(rows);
        let parts = partition_by_hash(&t, 0, n_sites).unwrap();
        let catalogs: Vec<Catalog> = parts
            .parts
            .iter()
            .map(|p| {
                let mut c = Catalog::new();
                c.register("flow", p.clone());
                c
            })
            .collect();
        let mut full = Catalog::new();
        full.register("flow", t);
        (
            DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap(),
            full,
        )
    }

    /// Example 1-shaped query (correlated: θ₂ references MD₁ outputs).
    fn example1() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::sum(Expr::detail(2), "sum1").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1)))
                .and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2)))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn distributed_matches_centralized() {
        let (wh, full) = warehouse(4, 200);
        let expr = example1();
        let plan = DistPlan::unoptimized(expr.clone());
        let (dist, metrics) = wh.execute(&plan).unwrap();
        let cent = eval_expr_centralized(&expr, &full).unwrap();
        assert_eq!(dist.sorted(), cent.sorted());
        // plan + base + 2 rounds
        assert_eq!(metrics.num_rounds(), 4);
        assert!(metrics.total_bytes() > 0);
        wh.shutdown().unwrap();
    }

    #[test]
    fn single_site_works() {
        let (wh, full) = warehouse(1, 50);
        let expr = example1();
        let (dist, _) = wh.execute(&DistPlan::unoptimized(expr.clone())).unwrap();
        let cent = eval_expr_centralized(&expr, &full).unwrap();
        assert_eq!(dist.sorted(), cent.sorted());
        wh.shutdown().unwrap();
    }

    #[test]
    fn site_group_reduction_preserves_result_and_cuts_traffic() {
        let (wh, full) = warehouse(4, 300);
        let expr = example1();
        let base_plan = DistPlan::unoptimized(expr.clone());
        let (r1, m1) = wh.execute(&base_plan).unwrap();

        let mut reduced = base_plan.clone();
        for r in &mut reduced.rounds {
            r.site_group_reduction = true;
        }
        let (r2, m2) = wh.execute(&reduced).unwrap();
        assert_eq!(r1.sorted(), r2.sorted());
        assert_eq!(
            r1.sorted(),
            eval_expr_centralized(&expr, &full).unwrap().sorted()
        );
        // Groups are partitioned on sas (hash), so each site matches only a
        // fraction: upstream traffic must shrink.
        assert!(m2.total_bytes_up() < m1.total_bytes_up());
        wh.shutdown().unwrap();
    }

    #[test]
    fn ship_all_baseline_matches_and_ships_more() {
        let (wh, _full) = warehouse(4, 5000);
        let expr = example1();
        let (dist, dm) = wh.execute(&DistPlan::unoptimized(expr.clone())).unwrap();
        let (ship, sm) = wh.execute_ship_all(&expr).unwrap();
        assert_eq!(dist.sorted(), ship.sorted());
        // 5000 detail rows dwarf the 35-group result: Theorem 2 in action.
        assert!(sm.total_bytes_up() > dm.total_bytes_up());
        wh.shutdown().unwrap();
    }

    #[test]
    fn coordinator_base_relation_plan() {
        let (wh, full) = warehouse(3, 120);
        let base = Relation::new(
            Schema::from_pairs([("sas", DataType::Int64)])
                .unwrap()
                .into_arc(),
            (0..7).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::avg(Expr::detail(2), "avg_nb").unwrap()],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let expr = GmdjExpr::new(BaseSpec::Relation(base), "flow", vec![op], vec![0]).unwrap();
        let (dist, _) = wh.execute(&DistPlan::unoptimized(expr.clone())).unwrap();
        let cent = eval_expr_centralized(&expr, &full).unwrap();
        assert_eq!(dist.sorted(), cent.sorted());
        wh.shutdown().unwrap();
    }

    #[test]
    fn filter_base_applies_predicates() {
        let base = Relation::new(
            Schema::from_pairs([("k", DataType::Int64)])
                .unwrap()
                .into_arc(),
            vec![vec![Value::Int(1)], vec![Value::Int(5)]],
        )
        .unwrap();
        assert_eq!(filter_base(&base, &Expr::lit(true)).unwrap().len(), 2);
        assert_eq!(filter_base(&base, &Expr::lit(false)).unwrap().len(), 0);
        let f = Expr::base(0).gt(Expr::lit(2));
        let out = filter_base(&base, &f).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0)[0], Value::Int(5));
        assert!(filter_base(&base, &Expr::base(0)).is_err());
    }

    #[test]
    fn launch_rejects_empty_and_mismatched() {
        assert!(DistributedWarehouse::launch(vec![], CostModel::free()).is_err());
        let mut c1 = Catalog::new();
        c1.register("t", Table::empty(flow_schema()));
        let mut c2 = Catalog::new();
        c2.register(
            "t",
            Table::empty(
                Schema::from_pairs([("x", DataType::Int64)])
                    .unwrap()
                    .into_arc(),
            ),
        );
        assert!(DistributedWarehouse::launch(vec![c1, c2], CostModel::free()).is_err());
    }

    #[test]
    fn metrics_breakdown_is_consistent() {
        let (wh, _) = warehouse(2, 100);
        let (_, m) = wh.execute(&DistPlan::unoptimized(example1())).unwrap();
        assert!(m.modeled_time_s() >= 0.0);
        assert!(m.wall_s > 0.0);
        assert_eq!(m.total_bytes(), m.total_bytes_down() + m.total_bytes_up());
        // Groups recorded on the final round equal the result size.
        assert!(m.rounds.last().unwrap().groups > 0);
        // MD₁ is a pure equi-join: both sites run it through compiled
        // kernels. MD₂ carries a correlated residual and stays interpreted.
        assert!(m.total_blocks_compiled() > 0);
        assert!(m.total_blocks_interpreted() > 0);
        assert!(m.summary().contains("compiled"));
        wh.shutdown().unwrap();
    }
}
