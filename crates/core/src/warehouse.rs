//! The distributed warehouse: coordinator-side execution of
//! Alg. GMDJDistribEval.
//!
//! [`DistributedWarehouse::launch`] spawns one worker thread per site, each
//! owning its local catalog, connected through the simulated network.
//! [`DistributedWarehouse::execute`] then drives a [`DistPlan`] through its
//! rounds exactly as the paper's Fig. 1 (right) describes: ship base
//! (fragments) down, evaluate sub-aggregates at the sites, synchronize the
//! base-result structure at the coordinator, repeat.
//!
//! [`DistributedWarehouse::execute_ship_all`] is the anti-baseline: ship all
//! detail data to the coordinator and evaluate centrally — the strategy
//! whose transfer volume Theorem 2 shows Skalla never needs.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use skalla_expr::{eval_base, Expr};
use skalla_gmdj::{eval_expr_centralized, AggSpec, GmdjExpr};
use skalla_net::{CostModel, Endpoint, FaultPlan, NodeId, SimNetwork, TransferStats};
use skalla_storage::{
    load_imbalance, partition_table_name, plan_splits, replicate_catalogs, write_segments, Catalog,
    PartFrag, PartSketch, Partitioning, ReplicaMap,
};
use skalla_types::{DataType, Field, Relation, Result, Schema, SkallaError, Value};

use crate::baseresult::BaseResult;
use crate::checkpoint::{plan_fingerprint, CheckpointRecord, CheckpointWal};
use crate::message::{Message, ScrubEntry};
use crate::metrics::{Coverage, ExecMetrics, RoundMetrics};
use crate::plan::{BaseRound, DegradedMode, DistPlan, RetryPolicy, Segment};
use crate::site::run_site;
use crate::sync::{ShardedSync, SyncOptions, SyncOutput, SyncSpec};

/// The synchronization structure a segment round merges fragments into:
/// the serial [`BaseResult`] or the sharded pipeline, per
/// [`DistPlan::coord_parallelism`].
enum Syncer {
    Serial(BaseResult),
    Sharded(ShardedSync),
}

/// The sync pipeline knobs a plan implies: `coord_parallelism` workers
/// with the default shard fan-out unless the plan pins a shard count.
fn sync_options_for(plan: &DistPlan) -> SyncOptions {
    let opts = SyncOptions::for_workers(plan.coord_parallelism);
    match plan.sync_shards {
        Some(s) => opts.with_shards(s),
        None => opts,
    }
}

/// Rows per segment when a scrub repair rewrites a partition to a fresh
/// segment file. Matches the default out-of-core generation granularity;
/// repairs are correctness-critical, not layout-critical.
const REPAIR_SEGMENT_ROWS: usize = 4096;

/// What a [`DistributedWarehouse::scrub`] pass found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubSummary {
    /// Segment-backed tables whose checksums were verified, across all
    /// sites.
    pub tables_scanned: u64,
    /// Column blocks whose CRCs checked out.
    pub blocks_verified: u64,
    /// Corrupt segment files detected, renamed `*.quarantined`, and
    /// unregistered at their site.
    pub quarantined: u64,
    /// Quarantined tables successfully rebuilt from a surviving replica
    /// and rebound at the damaged site.
    pub repaired: u64,
    /// Human-readable reports for corruption that could *not* be
    /// repaired (no replica map, no surviving replica, or the repair
    /// round itself failed). Empty when every quarantine was repaired.
    pub failures: Vec<String>,
}

impl ScrubSummary {
    /// One-line operator summary, used by the CLI `\scrub` command.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "scrub: {} table(s), {} block(s) verified, {} quarantined, {} repaired",
            self.tables_scanned, self.blocks_verified, self.quarantined, self.repaired
        );
        for f in &self.failures {
            s.push_str("\n  !! ");
            s.push_str(f);
        }
        s
    }
}

/// A running distributed data warehouse: `n` site threads plus this
/// coordinator handle.
pub struct DistributedWarehouse {
    pub(crate) net: SimNetwork,
    pub(crate) coord: Endpoint,
    pub(crate) handles: Vec<JoinHandle<()>>,
    pub(crate) num_sites: usize,
    pub(crate) schemas: HashMap<String, Arc<Schema>>,
    /// Query epoch: stamped on every request, echoed by sites; replies
    /// from an aborted earlier query are recognized and dropped. A
    /// failover re-plan bumps it mid-query, so stale fragments computed
    /// under the old partition assignment can never be merged twice.
    pub(crate) epoch: AtomicU64,
    /// Partition→host replica placement, present when the warehouse was
    /// launched via [`DistributedWarehouse::launch_replicated`]. Required
    /// for [`DegradedMode::Failover`].
    pub(crate) replicas: Option<ReplicaMap>,
    /// Per-table partition cardinalities learned from the sketches sites
    /// ship with round replies. Persists across queries, so a warehouse
    /// that has seen one query over a skewed table can split its hot
    /// partitions from the very first round of the next query.
    pub(crate) skew_loads: Mutex<HashMap<String, Vec<u64>>>,
}

impl DistributedWarehouse {
    /// Launch one site per catalog. The coordinator records each table's
    /// schema (global metadata every warehouse coordinator has).
    pub fn launch(catalogs: Vec<Catalog>, cost: CostModel) -> Result<DistributedWarehouse> {
        Self::launch_with_faults(catalogs, cost, FaultPlan::none())
    }

    /// [`DistributedWarehouse::launch`] with deterministic fault injection:
    /// the [`FaultPlan`] is threaded into every network endpoint, so the
    /// coordinator's deadline/retry/degradation machinery can be exercised
    /// reproducibly.
    pub fn launch_with_faults(
        catalogs: Vec<Catalog>,
        cost: CostModel,
        faults: FaultPlan,
    ) -> Result<DistributedWarehouse> {
        let n = catalogs.len();
        if n == 0 {
            return Err(SkallaError::plan("warehouse needs at least one site"));
        }
        let mut schemas: HashMap<String, Arc<Schema>> = HashMap::new();
        for c in &catalogs {
            for name in c.table_names() {
                // schema_of reads footer metadata for segment-backed
                // names — launch never materializes out-of-core tables.
                let s = c.schema_of(name)?;
                match schemas.get(name) {
                    None => {
                        schemas.insert(name.to_string(), s);
                    }
                    Some(existing) if **existing == *s => {}
                    Some(_) => {
                        return Err(SkallaError::schema(format!(
                            "table `{name}` has differing schemas across sites"
                        )))
                    }
                }
            }
        }

        let (net, mut endpoints) = SimNetwork::full_mesh_with_faults(n + 1, cost, faults);
        // endpoints[0] is the coordinator; 1..=n are the sites.
        let mut handles = Vec::with_capacity(n);
        // Drain from the back so indices stay valid.
        let mut site_endpoints: Vec<Endpoint> = endpoints.drain(1..).collect();
        let coord = endpoints.pop().expect("coordinator endpoint");
        for catalog in catalogs.into_iter().rev() {
            let ep = site_endpoints.pop().expect("site endpoint");
            handles.push(std::thread::spawn(move || run_site(ep, catalog)));
        }
        Ok(DistributedWarehouse {
            net,
            coord,
            handles,
            num_sites: n,
            schemas,
            epoch: AtomicU64::new(0),
            replicas: None,
            skew_loads: Mutex::new(HashMap::new()),
        })
    }

    /// Launch a warehouse where `table`'s partitions are `replication`-way
    /// replicated across the sites (ring placement: partition *p* lives on
    /// sites *p..p+r−1* mod *n*). Site *i*'s plain `table` is still its
    /// primary partition — fault-free execution is byte-identical to an
    /// unreplicated launch — but every hosted copy is also addressable by
    /// partition number, which is what lets the coordinator re-plan a
    /// round onto surviving replicas under [`DegradedMode::Failover`].
    pub fn launch_replicated(
        table: &str,
        parts: &Partitioning,
        replication: usize,
        cost: CostModel,
        faults: FaultPlan,
    ) -> Result<DistributedWarehouse> {
        let (catalogs, map) = replicate_catalogs(table, parts, replication)?;
        let mut wh = Self::launch_with_faults(catalogs, cost, faults)?;
        wh.replicas = Some(map);
        Ok(wh)
    }

    /// The replica placement map, if this warehouse was launched
    /// replicated.
    pub fn replica_map(&self) -> Option<&ReplicaMap> {
        self.replicas.as_ref()
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// The simulated network (for stats inspection).
    pub fn network(&self) -> &SimNetwork {
        &self.net
    }

    /// Schema of a named detail table.
    pub fn table_schema(&self, name: &str) -> Result<Arc<Schema>> {
        self.schemas
            .get(name)
            .cloned()
            .ok_or_else(|| SkallaError::not_found(format!("table `{name}`")))
    }

    /// Frame and send one message. `reliable` sends bypass injected
    /// drop/duplicate/delay faults (used by the serving layer to
    /// re-install plans when the engine is handed between interleaved
    /// queries, where a dropped install would silently corrupt results).
    fn send_framed(
        &self,
        site: NodeId,
        msg: &Message,
        epoch: u64,
        round: u32,
        reliable: bool,
    ) -> Result<()> {
        let frame = msg.to_wire_framed(epoch, round);
        if reliable {
            self.coord.send_reliable(site, frame)
        } else {
            self.coord.send(site, frame)
        }
    }

    /// Send one round's requests and collect every reply, enforcing the
    /// retry policy's per-round deadline.
    ///
    /// Accepted in-order reply messages are handed to `sink`; duplicated
    /// frames and replayed chunks are discarded by sequence number, so the
    /// sink's (non-idempotent) merge sees each chunk exactly once. When a
    /// round's deadline expires, the plan and request are re-sent to every
    /// silent site (sites replay served rounds from a reply cache, so this
    /// is always safe) with exponential backoff. A site that exhausts the
    /// budget — or whose channel is gone — is handled per the degraded
    /// mode: [`DegradedMode::Fail`] errors naming the site,
    /// [`DegradedMode::Partial`] records it in `dead` and the round
    /// completes from the remaining sites.
    ///
    /// With a [`FailoverRound`] (replicated launch +
    /// [`DegradedMode::Failover`]) the round is fault-transparent instead:
    /// replies are *staged* per site and only merged once the site's final
    /// chunk arrives, so a lost site's partial reply is discarded whole and
    /// its partitions are re-requested from surviving replicas via
    /// [`DistributedWarehouse::run_failover`] under a fresh epoch.
    ///
    /// Every request transmission (first send, retry, or failover restart)
    /// increments the site's entry in `attempts`, feeding the per-site
    /// retry histogram in [`ExecMetrics`].
    ///
    /// Seconds spent decoding reply frames off the wire are accumulated
    /// into `decode_s`, separately from whatever the sink does with the
    /// decoded message.
    /// `epoch` is the calling query run's private epoch: concurrent runs
    /// each allocate their own from the warehouse-global counter, so a
    /// site's reply cache can never replay one query's round to another.
    /// The returned epoch is the (possibly failover-bumped) epoch the
    /// round finished under, which the caller must adopt.
    #[allow(clippy::too_many_arguments)]
    fn collect_round(
        &self,
        epoch: u64,
        round: u32,
        retry: &RetryPolicy,
        resend_plan: Option<&Message>,
        requests: Vec<(NodeId, Message)>,
        dead: &mut HashSet<NodeId>,
        attempts: &mut BTreeMap<NodeId, u32>,
        decode_s: &mut f64,
        checksum_failures: &mut u64,
        mut failover: Option<&mut FailoverRound<'_>>,
        sink: &mut dyn FnMut(NodeId, Message) -> Result<()>,
    ) -> Result<u64> {
        let round_start = Instant::now();
        let mut st = RoundState {
            epoch,
            round,
            prog: requests
                .iter()
                .map(|(s, _)| (*s, SiteProgress::default()))
                .collect(),
            reqs: requests.into_iter().collect(),
            staged: BTreeMap::new(),
        };
        let offload_armed = failover
            .as_deref()
            .is_some_and(|fo| fo.offload_factor.is_some());
        let mut lost: Vec<NodeId> = Vec::new();
        for (site, req) in &st.reqs {
            *attempts.entry(*site).or_default() += 1;
            if self
                .coord
                .send(*site, req.to_wire_framed(st.epoch, round))
                .is_err()
            {
                lost.push(*site);
            }
        }
        self.handle_lost(
            lost,
            retry,
            dead,
            &mut st,
            failover.as_deref_mut(),
            attempts,
            resend_plan,
        )?;
        let mut timeouts = 0u32;
        while st.prog.values().any(|p| !p.done) {
            let window = retry.deadline_for_attempt(timeouts);
            let mut deadline = Instant::now() + window;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                // With offload armed, wake every couple of milliseconds to
                // check for stragglers instead of blocking out the full
                // attempt window.
                let wait = if offload_armed {
                    remaining.min(Duration::from_millis(2))
                } else {
                    remaining
                };
                let env = match self.coord.try_recv_for(wait) {
                    Ok(Some(env)) => env,
                    Ok(None) => {
                        if let (true, Some(fo)) = (offload_armed, failover.as_deref_mut()) {
                            self.maybe_offload(&mut st, fo, dead, round_start, attempts);
                            // Poll tick: the loop head breaks once the real
                            // attempt window has expired.
                            continue;
                        }
                        break; // attempt window expired
                    }
                    Err(e) => {
                        // Every peer endpoint is gone: no reply can ever
                        // arrive for the remaining sites.
                        if retry.degraded == DegradedMode::Fail {
                            return Err(e);
                        }
                        let silent = pending_sites(&st.prog);
                        self.handle_lost(
                            silent,
                            retry,
                            dead,
                            &mut st,
                            failover.as_deref_mut(),
                            attempts,
                            resend_plan,
                        )?;
                        break;
                    }
                };
                let t_decode = Instant::now();
                let decoded = Message::from_wire_framed(&env.payload);
                *decode_s += t_decode.elapsed().as_secs_f64();
                let Ok((e, r, msg)) = decoded else {
                    continue; // unparseable frame: treated as loss, retry recovers
                };
                if e != st.epoch || r != round {
                    continue; // straggler from an aborted query, earlier
                              // round, or pre-failover wave
                }
                let src = env.src;
                match st.prog.get(&src) {
                    Some(p) if !p.done => {}
                    // Not a participant, or a duplicate after completion.
                    _ => continue,
                }
                if let Message::Error { msg, corrupt } = msg {
                    // A checksum failure is deterministic — re-reading the
                    // same bytes fails the same way — so corrupt replies
                    // skip the retry budget entirely and go straight to
                    // failover (replicas are bit-identical) or the
                    // degradation ladder.
                    if corrupt {
                        *checksum_failures += 1;
                    }
                    let exhausted = corrupt || {
                        let p = st.prog.get_mut(&src).expect("participant checked");
                        p.error_retries += 1;
                        p.error_retries > retry.max_retries
                    };
                    if exhausted {
                        if failover.is_some() {
                            // The site keeps failing; its replicas may not.
                            self.handle_lost(
                                vec![src],
                                retry,
                                dead,
                                &mut st,
                                failover.as_deref_mut(),
                                attempts,
                                resend_plan,
                            )?;
                            continue;
                        }
                        match retry.degraded {
                            DegradedMode::Fail => {
                                let m = format!("site {src}: {msg}");
                                return Err(if corrupt {
                                    SkallaError::corrupt(m)
                                } else {
                                    SkallaError::exec(m)
                                });
                            }
                            // A persistently erroring site (e.g. a mid-tier
                            // whose cluster lost a leaf) degrades like a
                            // silent one: drop it and keep the survivors.
                            DegradedMode::Partial | DegradedMode::Failover => {
                                self.site_lost(src, retry, dead, &mut st.prog)?;
                                continue;
                            }
                        }
                    }
                    *attempts.entry(src).or_default() += 1;
                    if self.resend(src, resend_plan, &st).is_err() {
                        self.handle_lost(
                            vec![src],
                            retry,
                            dead,
                            &mut st,
                            failover.as_deref_mut(),
                            attempts,
                            resend_plan,
                        )?;
                    }
                    continue;
                }
                let Some((seq, last)) = reply_seq_last(&msg) else {
                    return Err(SkallaError::exec(format!(
                        "site {src}: expected round reply, got {msg:?}"
                    )));
                };
                {
                    let p = st.prog.get_mut(&src).expect("participant checked");
                    if reply_task(&msg) != p.task {
                        continue; // reply for a superseded assignment
                    }
                    if seq != p.expected_seq {
                        continue; // duplicated or replayed chunk
                    }
                    p.expected_seq += 1;
                    if last {
                        p.done = true;
                        p.done_at = Some(Instant::now());
                    }
                }
                match failover.as_deref_mut() {
                    // Under failover, chunks are staged and only merged
                    // once the site's reply is complete: a site lost
                    // mid-reply leaves nothing behind to roll back.
                    Some(fo) => {
                        st.staged.entry(src).or_default().push(msg);
                        if last {
                            for m in st.staged.remove(&src).unwrap_or_default() {
                                sink(src, m)?;
                            }
                            // The site's partitions are now served; a later
                            // failure of this site costs nothing this round.
                            fo.site_parts.remove(&src);
                            // First complete side of an offload offer wins:
                            // the loser's staged chunks are discarded whole
                            // and it owes nothing further this round.
                            if let Some(i) = fo
                                .offers
                                .iter()
                                .position(|o| o.laggard == src || o.helper == src)
                            {
                                let o = fo.offers.swap_remove(i);
                                let loser = if o.helper == src {
                                    fo.events.offload_wins += 1;
                                    // The helper just served the laggard's
                                    // residual work.
                                    fo.site_parts.remove(&o.laggard);
                                    o.laggard
                                } else {
                                    o.helper
                                };
                                st.staged.remove(&loser);
                                if let Some(p) = st.prog.get_mut(&loser) {
                                    p.done = true;
                                }
                            }
                        }
                    }
                    None => sink(src, msg)?,
                }
                // Replies are flowing; extend this attempt's window.
                deadline = Instant::now() + window;
                if st.prog.values().all(|p| p.done) {
                    break;
                }
            }
            let silent = pending_sites(&st.prog);
            if silent.is_empty() {
                break;
            }
            timeouts += 1;
            if timeouts > retry.max_retries {
                if let Some(fo) = failover.as_deref_mut() {
                    self.run_failover(silent, fo, dead, &mut st, attempts, resend_plan)?;
                    // The re-planned wave earns a fresh deadline budget;
                    // this terminates because every failover permanently
                    // removes at least one site.
                    timeouts = 0;
                } else {
                    match retry.degraded {
                        DegradedMode::Fail => {
                            return Err(SkallaError::exec(format!(
                                "site {} did not respond within {:?} after {} retries",
                                silent[0], window, retry.max_retries
                            )));
                        }
                        DegradedMode::Partial | DegradedMode::Failover => {
                            for s in silent {
                                self.site_lost(s, retry, dead, &mut st.prog)?;
                            }
                        }
                    }
                }
            } else {
                let mut lost = Vec::new();
                for s in silent {
                    *attempts.entry(s).or_default() += 1;
                    if self.resend(s, resend_plan, &st).is_err() {
                        lost.push(s);
                    }
                }
                self.handle_lost(
                    lost,
                    retry,
                    dead,
                    &mut st,
                    failover.as_deref_mut(),
                    attempts,
                    resend_plan,
                )?;
            }
        }
        Ok(st.epoch)
    }

    /// Mid-round straggler offload: once at least half the round's sites
    /// have delivered their final chunk, a site lagging
    /// `offload_factor ×` the median completion time has its residual
    /// fragments duplicated to one idle replica host under a fresh task
    /// id. Both sides keep computing; the first to finish wins and the
    /// other's staged reply is discarded whole (see the acceptance path in
    /// `collect_round`). A laggard gets at most one outstanding offer, and
    /// the helper must host every owed fragment's partition — answers are
    /// bit-for-bit unchanged because replicas are bit-identical and the
    /// task-id check keeps the two assignments from ever mixing.
    fn maybe_offload(
        &self,
        st: &mut RoundState,
        fo: &mut FailoverRound<'_>,
        dead: &HashSet<NodeId>,
        round_start: Instant,
        attempts: &mut BTreeMap<NodeId, u32>,
    ) {
        let Some(factor) = fo.offload_factor else {
            return;
        };
        let mut done_times: Vec<f64> = st
            .prog
            .values()
            .filter_map(|p| p.done_at)
            .map(|t| t.duration_since(round_start).as_secs_f64())
            .collect();
        if done_times.len() * 2 < st.prog.len() {
            return; // not enough finishers to estimate the round's pace
        }
        done_times.sort_by(f64::total_cmp);
        let median = done_times[done_times.len() / 2];
        if round_start.elapsed().as_secs_f64() < factor * median {
            return;
        }
        let laggards: Vec<NodeId> = st
            .prog
            .iter()
            .filter(|(s, p)| {
                !p.done
                    && !fo
                        .offers
                        .iter()
                        .any(|o| o.laggard == **s || o.helper == **s)
            })
            .map(|(s, _)| *s)
            .collect();
        for laggard in laggards {
            let owed = match fo.site_parts.get(&laggard) {
                Some(fs) if !fs.is_empty() => fs.clone(),
                _ => continue,
            };
            // The idle site that finished earliest, hosts every owed
            // fragment's partition, and is not already part of an offer.
            let helper = st
                .prog
                .iter()
                .filter(|(s, p)| {
                    **s != laggard
                        && p.done
                        && p.done_at.is_some()
                        && !dead.contains(s)
                        && !fo
                            .offers
                            .iter()
                            .any(|o| o.laggard == **s || o.helper == **s)
                        && owed.iter().all(|f| {
                            fo.replicas
                                .hosts_of(f.part as usize)
                                .contains(&(**s as usize - 1))
                        })
                })
                .min_by_key(|(s, p)| (p.done_at.expect("filtered"), **s))
                .map(|(s, _)| *s);
            let Some(helper) = helper else {
                continue;
            };
            let task = fo.next_task;
            fo.next_task += 1;
            let Ok(req) = (fo.mk_request)(&owed, task) else {
                continue;
            };
            if self
                .coord
                .send(helper, req.to_wire_framed(st.epoch, st.round))
                .is_err()
            {
                // The helper's channel is gone; the normal loss paths
                // will detect and handle its death.
                continue;
            }
            st.reqs.insert(helper, req);
            st.prog.insert(
                helper,
                SiteProgress {
                    task,
                    ..SiteProgress::default()
                },
            );
            *attempts.entry(helper).or_default() += 1;
            fo.offers.push(OffloadOffer { laggard, helper });
            fo.events.offloads += 1;
        }
    }

    /// Route sites that are gone for good either to the failover re-plan
    /// (when this round runs one) or to the degraded-mode ladder.
    #[allow(clippy::too_many_arguments)]
    fn handle_lost(
        &self,
        lost: Vec<NodeId>,
        retry: &RetryPolicy,
        dead: &mut HashSet<NodeId>,
        st: &mut RoundState,
        failover: Option<&mut FailoverRound<'_>>,
        attempts: &mut BTreeMap<NodeId, u32>,
        resend_plan: Option<&Message>,
    ) -> Result<()> {
        if lost.is_empty() {
            return Ok(());
        }
        match failover {
            Some(fo) => self.run_failover(lost, fo, dead, st, attempts, resend_plan),
            None => {
                for s in lost {
                    self.site_lost(s, retry, dead, &mut st.prog)?;
                }
                Ok(())
            }
        }
    }

    /// Re-plan the current wave after `lost` sites failed (Failover rung):
    /// write them off, reassign their unserved partitions to the next
    /// surviving replica in ring order, bump the query epoch — so
    /// fragments computed under the old assignment, in flight or replayed
    /// from a site's reply cache, can never be merged — and restart every
    /// site that still owes partitions with a request rebuilt for the new
    /// assignment. Staged chunks of restarted sites are discarded;
    /// together with reply staging this keeps the invariant that each
    /// partition's detail tuples are folded into the synchronized
    /// base-result exactly once. A partition with no surviving replica is
    /// dropped from the round (Partial semantics, reported as `parts_lost`).
    fn run_failover(
        &self,
        lost: Vec<NodeId>,
        fo: &mut FailoverRound<'_>,
        dead: &mut HashSet<NodeId>,
        st: &mut RoundState,
        attempts: &mut BTreeMap<NodeId, u32>,
        resend_plan: Option<&Message>,
    ) -> Result<()> {
        let t = Instant::now();
        // Outstanding offload offers are void: the epoch bump below
        // invalidates any in-flight offer replies, and restarts below are
        // issued under task 0. Helpers not owing partitions of their own
        // drop back to done.
        for o in std::mem::take(&mut fo.offers) {
            st.staged.remove(&o.helper);
            if let Some(p) = st.prog.get_mut(&o.helper) {
                p.done = true;
            }
        }
        let mut worklist = lost;
        let res = loop {
            for site in std::mem::take(&mut worklist) {
                if !dead.insert(site) {
                    continue;
                }
                fo.events.failovers += 1;
                st.staged.remove(&site);
                st.reqs.remove(&site);
                if let Some(p) = st.prog.get_mut(&site) {
                    p.done = true;
                }
                if dead.len() == self.num_sites {
                    break;
                }
                // Fragment-granular re-plan: only the dead site's unserved
                // fragments move, each to the next surviving host of its
                // partition in ring order. A fragment with no surviving
                // host is dropped; the partition-level fix-up below
                // accounts the loss once per partition.
                for frag in fo.site_parts.remove(&site).unwrap_or_default() {
                    let next = fo
                        .replicas
                        .hosts_of(frag.part as usize)
                        .iter()
                        .map(|&h| (h + 1) as NodeId)
                        .find(|h| !dead.contains(h));
                    if let Some(h) = next {
                        fo.site_parts.entry(h).or_default().push(frag);
                        fo.events.parts_reassigned += 1;
                    }
                }
                // Ownership fix-up: partitions assigned to the dead site
                // move to their next surviving replica (feeding the next
                // round's layout and the coverage report), or are lost.
                for part in 0..fo.assignment.len() {
                    if fo.assignment[part] != Some(site) {
                        continue;
                    }
                    let next = fo
                        .replicas
                        .hosts_of(part)
                        .iter()
                        .map(|&h| (h + 1) as NodeId)
                        .find(|h| !dead.contains(h));
                    fo.assignment[part] = next;
                    if next.is_none() {
                        fo.events.parts_lost += 1;
                    }
                }
            }
            if dead.len() == self.num_sites {
                break Err(SkallaError::exec("every site failed; no result possible"));
            }
            // Everything computed so far under the old assignment is stale.
            st.epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
            // Restart every site that still owes fragments — including
            // previously-done sites that just inherited some (only the
            // inherited fragments are requested; their own are already
            // merged). Restarts are the round's authoritative wave again,
            // so they run under task 0.
            let restart: Vec<(NodeId, Vec<PartFrag>)> = fo
                .site_parts
                .iter()
                .map(|(s, ps)| (*s, ps.clone()))
                .collect();
            for (site, mut parts) in restart {
                parts.sort_unstable();
                parts.dedup();
                fo.site_parts.insert(site, parts.clone());
                let req = (fo.mk_request)(&parts, 0)?;
                st.staged.remove(&site);
                st.prog.insert(site, SiteProgress::default());
                st.reqs.insert(site, req);
                *attempts.entry(site).or_default() += 1;
                let send = || -> Result<()> {
                    if let Some(p) = resend_plan {
                        self.coord
                            .send(site, p.to_wire_framed(st.epoch, st.round))?;
                    }
                    self.coord
                        .send(site, st.reqs[&site].to_wire_framed(st.epoch, st.round))
                };
                if send().is_err() {
                    worklist.push(site);
                }
            }
            if worklist.is_empty() {
                break Ok(());
            }
        };
        fo.events.failover_s += t.elapsed().as_secs_f64();
        res
    }

    /// Re-send the plan (sites may have lost the original broadcast) and
    /// the site's round request, under the round's current epoch.
    fn resend(&self, site: NodeId, plan: Option<&Message>, st: &RoundState) -> Result<()> {
        if let Some(p) = plan {
            self.coord
                .send(site, p.to_wire_framed(st.epoch, st.round))?;
        }
        let req = st.reqs.get(&site).expect("resend target was a participant");
        self.coord
            .send(site, req.to_wire_framed(st.epoch, st.round))
    }

    /// A site is gone for good (crashed channel or exhausted budget) and
    /// no failover is possible: fail the query or degrade, per the policy.
    /// [`DegradedMode::Failover`] without an applicable replica map falls
    /// back to Partial semantics — the next rung of the ladder.
    fn site_lost(
        &self,
        site: NodeId,
        retry: &RetryPolicy,
        dead: &mut HashSet<NodeId>,
        prog: &mut BTreeMap<NodeId, SiteProgress>,
    ) -> Result<()> {
        match retry.degraded {
            DegradedMode::Fail => Err(SkallaError::exec(format!(
                "site {site} is unreachable (crashed or disconnected)"
            ))),
            DegradedMode::Partial | DegradedMode::Failover => {
                if let Some(p) = prog.get_mut(&site) {
                    if p.expected_seq > 0 && !p.done {
                        // Some of the site's chunks were already folded into
                        // the synchronized structure; the merge cannot be
                        // rolled back (documented limitation — see
                        // docs/FAULT_MODEL.md; the Failover rung stages
                        // chunks precisely to avoid this).
                        return Err(SkallaError::exec(format!(
                            "site {site} was lost mid-reply; partially merged \
                             chunks cannot be rolled back"
                        )));
                    }
                    p.done = true;
                }
                dead.insert(site);
                if dead.len() == self.num_sites {
                    return Err(SkallaError::exec("every site failed; no result possible"));
                }
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn round_metrics_from(
        &self,
        label: impl Into<String>,
        before: &TransferStats,
        site_times: &[f64],
        coord_compute_s: f64,
        groups: usize,
        rows_down: u64,
        rows_up: u64,
    ) -> RoundMetrics {
        let delta = self.net.stats().diff(before);
        let cost = self.net.cost_model();
        RoundMetrics {
            label: label.into(),
            bytes_down: delta.bytes_from(0),
            bytes_up: delta.bytes_to(0),
            rows_down,
            rows_up,
            messages: delta.total_messages(),
            site_compute_max_s: site_times.iter().copied().fold(0.0, f64::max),
            site_compute_total_s: site_times.iter().sum(),
            coord_compute_s,
            comm_modeled_s: delta.serial_time(&cost),
            sites: site_times.len(),
            groups,
            blocks_compiled: 0,
            blocks_interpreted: 0,
            sync_decode_s: 0.0,
            sync_merge_s: 0.0,
            sync_finalize_s: 0.0,
            sync_workers: 0,
            sync_shards: 0,
            sync_utilization: 0.0,
            sync_imbalance: 0.0,
            segments_scanned: 0,
            segments_pruned: 0,
            blocks_verified: 0,
        }
    }

    /// Execute a distributed plan; returns the final relation and the cost
    /// breakdown.
    pub fn execute(&self, plan: &DistPlan) -> Result<(Relation, ExecMetrics)> {
        self.execute_inner(plan, None)
    }

    /// [`DistributedWarehouse::execute`] with round-granular checkpointing.
    ///
    /// After every synchronization the coordinator appends the
    /// synchronized base-result to `wal`; before executing, it consults
    /// `wal` for the latest intact record of this exact plan (matched by
    /// [`plan_fingerprint`]) and resumes from the last completed
    /// synchronization — Theorem 1 makes that relation the entire query
    /// state, so a coordinator that crashed between rounds re-executes at
    /// most the one round that was in flight. The number of
    /// synchronizations restored is reported as
    /// [`ExecMetrics::resumed_syncs`]; a corrupt, torn, or missing WAL
    /// restores nothing and the query re-executes from the start. A WAL
    /// whose last record already covers every synchronization yields the
    /// final result after only a plan broadcast.
    pub fn execute_with_checkpoints(
        &self,
        plan: &DistPlan,
        wal: &CheckpointWal,
    ) -> Result<(Relation, ExecMetrics)> {
        self.execute_inner(plan, Some(wal))
    }

    fn execute_inner(
        &self,
        plan: &DistPlan,
        wal: Option<&CheckpointWal>,
    ) -> Result<(Relation, ExecMetrics)> {
        let mut run = QueryRun::new(self, plan, wal, false)?;
        while !run.step()? {}
        run.into_result()
    }

    /// Begin a resumable, round-granular execution of `plan` for the
    /// serving layer.
    ///
    /// The returned [`QueryRun`] advances exactly one synchronization
    /// round per [`QueryRun::step`] call, so an admission scheduler can
    /// interleave rounds from many concurrent queries over the same site
    /// engines — Theorem 1 guarantees the synchronized base-result held
    /// by the run *is* the whole query state between rounds. Each run
    /// allocates a private epoch, and plan (re-)installs use reliable
    /// sends; see [`QueryRun`] for the isolation argument.
    pub fn begin(&self, plan: &DistPlan) -> Result<QueryRun<'_>> {
        QueryRun::new(self, plan, None, true)
    }

    /// The ship-all-detail-data baseline: every site sends its raw
    /// partition(s) to the coordinator, which evaluates the expression
    /// centrally. Skalla never does this — Theorem 2 bounds its transfers
    /// by the *result* size, while this baseline transfers the *fact
    /// relation*.
    pub fn execute_ship_all(&self, expr: &GmdjExpr) -> Result<(Relation, ExecMetrics)> {
        let mut epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let wall_start = Instant::now();
        let mut names: Vec<&str> = vec![expr.detail_name.as_str()];
        for op in &expr.ops {
            if let Some(n) = &op.detail_name {
                if !names.contains(&n.as_str()) {
                    names.push(n);
                }
            }
        }

        let before = self.net.stats();
        let mut catalog = Catalog::new();
        let mut site_times: Vec<f64> = vec![0.0; self.num_sites];
        // The baseline takes no plan, so it runs under the default retry
        // policy (fail on an unresponsive site).
        let retry = RetryPolicy::default();
        let mut dead: HashSet<NodeId> = HashSet::new();
        let mut attempts: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut round_no: u32 = 0;
        let mut decode_s = 0.0;
        let mut checksum_failures = 0u64;
        for name in names {
            round_no += 1;
            let requests: Vec<(NodeId, Message)> = (1..=self.num_sites as NodeId)
                .map(|s| {
                    (
                        s,
                        Message::ShipAllRequest {
                            table: name.to_string(),
                        },
                    )
                })
                .collect();
            let schema = self.table_schema(name)?;
            let mut builder = skalla_storage::TableBuilder::new(schema);
            epoch = self.collect_round(
                epoch,
                round_no,
                &retry,
                None,
                requests,
                &mut dead,
                &mut attempts,
                &mut decode_s,
                &mut checksum_failures,
                None,
                &mut |src, msg| {
                    let Message::ShipAllData { rel, compute_s } = msg else {
                        return Err(SkallaError::exec("expected ShipAllData"));
                    };
                    site_times[src as usize - 1] += compute_s;
                    for row in rel.rows() {
                        builder.push_row(row)?;
                    }
                    Ok(())
                },
            )?;
            catalog.register(name, builder.finish());
        }

        let rows_shipped: u64 = catalog
            .table_names()
            .iter()
            .map(|n| catalog.get(n).map(|t| t.len() as u64).unwrap_or(0))
            .sum();
        let t = Instant::now();
        let result = eval_expr_centralized(expr, &catalog)?;
        let groups = result.len();
        let coord_s = t.elapsed().as_secs_f64();

        let mut metrics = ExecMetrics {
            cost_model: Some(self.net.cost_model()),
            coverage: Some(Coverage {
                responded: self.num_sites - dead.len(),
                total: self.num_sites,
            }),
            site_attempts: attempts,
            checksum_failures,
            ..ExecMetrics::default()
        };
        let mut rm = self.round_metrics_from(
            "ship-all",
            &before,
            &site_times,
            coord_s + decode_s,
            groups,
            0,
            rows_shipped,
        );
        rm.sync_decode_s = decode_s;
        metrics.rounds.push(rm);
        metrics.wall_s = wall_start.elapsed().as_secs_f64();
        Ok((result, metrics))
    }

    /// Rebind `table` at every site to a fresh on-disk segment file —
    /// site *i* (1-based) opens `paths[i-1]` and registers it under the
    /// plain table name, replacing whatever backed it before (in-memory
    /// or an older segment file). The replacement must keep the table's
    /// schema. Returns per-site row counts once every site has opened and
    /// validated its file.
    ///
    /// Results cached from earlier queries over `table` are stale after
    /// this returns; callers holding a result cache must invalidate it
    /// (the serving layer's `QueryScheduler::reload_segments` does so).
    pub fn load_segments(&self, table: &str, paths: &[String]) -> Result<Vec<u64>> {
        if paths.len() != self.num_sites {
            return Err(SkallaError::plan(format!(
                "{} segment paths for {} sites",
                paths.len(),
                self.num_sites
            )));
        }
        if !self.schemas.contains_key(table) {
            return Err(SkallaError::not_found(format!("table `{table}`")));
        }
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let retry = RetryPolicy::default();
        let mut dead: HashSet<NodeId> = HashSet::new();
        let mut attempts: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut decode_s = 0.0;
        // Under replicated placement site i's file holds partition i - 1;
        // naming it lets the site bind the partition alias to the same
        // file, so partition-addressed scans stream from disk too.
        let replicated = self
            .replicas
            .as_ref()
            .is_some_and(|r| r.table == table && r.num_parts() == self.num_sites);
        let requests: Vec<(NodeId, Message)> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    i as NodeId + 1,
                    Message::LoadSegments {
                        table: table.to_string(),
                        path: p.clone(),
                        part: replicated.then_some(i as u64),
                    },
                )
            })
            .collect();
        let mut rows = vec![0u64; self.num_sites];
        let mut checksum_failures = 0u64;
        self.collect_round(
            epoch,
            0,
            &retry,
            None,
            requests,
            &mut dead,
            &mut attempts,
            &mut decode_s,
            &mut checksum_failures,
            None,
            &mut |src, msg| {
                let Message::SegmentsLoaded { rows: r } = msg else {
                    return Err(SkallaError::exec(format!(
                        "site {src}: expected SegmentsLoaded, got {msg:?}"
                    )));
                };
                rows[src as usize - 1] = r;
                Ok(())
            },
        )?;
        Ok(rows)
    }

    /// Walk every registered segment file at every site, verifying block
    /// checksums off the query path.
    ///
    /// Each site CRC-checks all of its segment-backed tables
    /// ([`skalla_storage::SegmentFile::verify`] — no decode, no query
    /// interference), quarantines corrupt files (renamed
    /// `<path>.quarantined` and unregistered so no later query can read
    /// them), and reports per-table results. The coordinator then repairs
    /// each quarantined partition from a surviving replica: the
    /// partition's rows are re-fetched from a ring replica host
    /// (addressed by its partition-explicit catalog name), written to a
    /// *fresh-generation* segment path, and rebound at the damaged site.
    /// Repair requires a replicated launch whose replica map covers the
    /// damaged table and a surviving replica for the partition; otherwise
    /// the table stays quarantined and the failure is reported in
    /// [`ScrubSummary::failures`].
    pub fn scrub(&self) -> Result<ScrubSummary> {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let retry = RetryPolicy::default();
        let mut dead: HashSet<NodeId> = HashSet::new();
        let mut attempts: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut decode_s = 0.0;
        let mut checksum_failures = 0u64;
        let requests: Vec<(NodeId, Message)> = (1..=self.num_sites as NodeId)
            .map(|s| (s, Message::ScrubRequest))
            .collect();
        let mut reports: Vec<(NodeId, ScrubEntry)> = Vec::new();
        self.collect_round(
            epoch,
            0,
            &retry,
            None,
            requests,
            &mut dead,
            &mut attempts,
            &mut decode_s,
            &mut checksum_failures,
            None,
            &mut |src, msg| {
                let Message::ScrubReport { entries } = msg else {
                    return Err(SkallaError::exec(format!(
                        "site {src}: expected ScrubReport, got {msg:?}"
                    )));
                };
                reports.extend(entries.into_iter().map(|e| (src, e)));
                Ok(())
            },
        )?;
        let mut summary = ScrubSummary::default();
        for (site, e) in reports {
            summary.tables_scanned += 1;
            summary.blocks_verified += e.blocks;
            let Some(err) = e.error else { continue };
            summary.quarantined += 1;
            match self.repair_partition(site, &e.table, &e.path) {
                Ok(()) => summary.repaired += 1,
                Err(re) => summary.failures.push(format!(
                    "site {site} `{}`: {err}; not repaired: {re}",
                    e.table
                )),
            }
        }
        Ok(summary)
    }

    /// Repair one quarantined segment-backed table at `site`: re-fetch the
    /// site's primary partition from a surviving ring replica, write it to
    /// a fresh segment file, and rebind the table at the damaged site.
    ///
    /// The repair is written to a fresh-generation path
    /// (`<old>.r<epoch>`), never the original: deterministic disk-fault
    /// plans key their decisions on the file path, so re-using the
    /// corrupted path could deterministically re-corrupt the repair.
    fn repair_partition(&self, site: NodeId, table: &str, old_path: &str) -> Result<()> {
        let r = self
            .replicas
            .as_ref()
            .filter(|r| r.table == table && r.num_parts() == self.num_sites)
            .ok_or_else(|| {
                SkallaError::exec("no replica map covers the table; replication needed for repair")
            })?;
        let part = site as usize - 1;
        let donor = r
            .hosts_of(part)
            .iter()
            .map(|&h| (h + 1) as NodeId)
            .find(|&h| h != site)
            .ok_or_else(|| {
                SkallaError::exec(format!("partition {part} has no surviving replica"))
            })?;
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let retry = RetryPolicy::default();
        let mut dead: HashSet<NodeId> = HashSet::new();
        let mut attempts: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut decode_s = 0.0;
        let mut checksum_failures = 0u64;
        let schema = self.table_schema(table)?;
        let mut builder = skalla_storage::TableBuilder::new(schema);
        self.collect_round(
            epoch,
            0,
            &retry,
            None,
            vec![(
                donor,
                Message::ShipAllRequest {
                    table: partition_table_name(table, part),
                },
            )],
            &mut dead,
            &mut attempts,
            &mut decode_s,
            &mut checksum_failures,
            None,
            &mut |_src, msg| {
                let Message::ShipAllData { rel, .. } = msg else {
                    return Err(SkallaError::exec("expected ShipAllData"));
                };
                for row in rel.rows() {
                    builder.push_row(row)?;
                }
                Ok(())
            },
        )?;
        let fresh = builder.finish();
        let path = format!("{old_path}.r{epoch}");
        write_segments(&path, &fresh, REPAIR_SEGMENT_ROWS)?;
        let mut rows_loaded = 0u64;
        self.collect_round(
            epoch,
            1,
            &retry,
            None,
            vec![(
                site,
                Message::LoadSegments {
                    table: table.to_string(),
                    path: path.clone(),
                    part: Some(part as u64),
                },
            )],
            &mut dead,
            &mut attempts,
            &mut decode_s,
            &mut checksum_failures,
            None,
            &mut |src, msg| {
                let Message::SegmentsLoaded { rows } = msg else {
                    return Err(SkallaError::exec(format!(
                        "site {src}: expected SegmentsLoaded, got {msg:?}"
                    )));
                };
                rows_loaded = rows;
                Ok(())
            },
        )?;
        if rows_loaded != fresh.len() as u64 {
            return Err(SkallaError::exec(format!(
                "repair of `{table}` at site {site} loaded {rows_loaded} rows, wrote {}",
                fresh.len()
            )));
        }
        Ok(())
    }

    /// Shut down all site threads. Best-effort: the shutdown message is
    /// sent reliably (it bypasses injected drop/delay faults), and a site
    /// whose channel is already gone — e.g. crashed by fault injection —
    /// has nothing left to shut down.
    pub fn shutdown(mut self) -> Result<()> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        for site in 1..=self.num_sites as NodeId {
            let _ = self
                .coord
                .send_reliable(site, Message::Shutdown.to_wire_framed(epoch, 0));
        }
        for h in self.handles.drain(..) {
            h.join()
                .map_err(|_| SkallaError::exec("site thread panicked"))?;
        }
        Ok(())
    }
}

/// A resumable, round-granular execution of one [`DistPlan`], created by
/// [`DistributedWarehouse::begin`].
///
/// Theorem 1 (§5) makes the synchronized base-result after round *k* the
/// *entire* query state — the property the checkpoint WAL already relies
/// on. `QueryRun` exploits the same property in the other direction:
/// because all cross-round state lives at the coordinator, an execution
/// can be suspended after any synchronization and another query's round
/// can run on the same site engines in between. The serving layer's
/// scheduler does exactly that, calling [`QueryRun::step`] round-robin
/// across admitted queries.
///
/// Isolation between interleaved runs rests on two mechanisms:
///
/// * **Epochs** — every run allocates a private epoch from the
///   warehouse-global counter. Sites echo the epoch on replies and key
///   their reply caches by `(epoch, round)`, so one query's fragments —
///   in flight, duplicated, or replayed from a cache — are never merged
///   into another query's synchronization.
/// * **Plan re-installs** — each site holds a single installed plan.
///   Whenever the scheduler hands the engines from one run to another it
///   calls [`QueryRun::mark_plan_stale`]; the next [`QueryRun::step`]
///   then re-installs this run's plan on every live site *reliably*
///   (bypassing injected drop/duplicate/delay faults) before issuing
///   requests, so no site ever computes a round under the wrong plan.
pub struct QueryRun<'a> {
    wh: &'a DistributedWarehouse,
    wal: Option<&'a CheckpointWal>,
    plan: DistPlan,
    /// The plan as shipped to sites (coordinator-only filters stripped).
    plan_msg: Message,
    /// This run's private epoch; a mid-run failover bumps it further.
    epoch: u64,
    /// Whether every live site currently has this run's plan installed.
    plan_installed: bool,
    /// Re-install plans with reliable sends (serving mode).
    reliable_plan: bool,
    dead: HashSet<NodeId>,
    /// Live partition→site assignment (replicated launches only).
    assignment: Vec<Option<NodeId>>,
    use_replicas: bool,
    events: FailoverEvents,
    metrics: ExecMetrics,
    /// The synchronized base-result so far — by Theorem 1, the entire
    /// query state between rounds.
    current: Option<Relation>,
    round_no: u32,
    fp: Option<u64>,
    base_syncs: u32,
    segments: Vec<Segment>,
    next_seg: usize,
    pending_base: bool,
    wall_start: Instant,
    done: bool,
}

impl<'a> QueryRun<'a> {
    fn new(
        wh: &'a DistributedWarehouse,
        plan: &DistPlan,
        wal: Option<&'a CheckpointWal>,
        reliable_plan: bool,
    ) -> Result<QueryRun<'a>> {
        // Each run gets a fresh epoch, so concurrent runs can never
        // confuse the sites' per-(epoch, round) reply caches.
        let epoch = wh.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        plan.validate()?;
        let expr = &plan.expr;
        let default_schema = wh.table_schema(&expr.detail_name)?;
        expr.validate(&default_schema)?;

        let wall_start = Instant::now();
        let mut metrics = ExecMetrics {
            cost_model: Some(wh.net.cost_model()),
            ..ExecMetrics::default()
        };

        // The Failover rung engages only when the warehouse is replicated,
        // the plan touches the replicated table exclusively, and there is
        // one primary partition per site (so the planner's per-site
        // group-reduction filters map 1:1 onto partitions). Otherwise
        // `DegradedMode::Failover` behaves as Partial — the next rung of
        // the degradation ladder.
        let use_replicas = wh.replicas.as_ref().is_some_and(|r| {
            plan.retry.degraded == DegradedMode::Failover
                && r.num_parts() == wh.num_sites
                && std::iter::once(&expr.detail_name)
                    .chain(expr.ops.iter().filter_map(|op| op.detail_name.as_ref()))
                    .all(|n| *n == r.table)
        });
        let mut events = FailoverEvents::default();

        // Checkpointing: resume from the latest intact WAL record of this
        // exact plan, and append one record per completed synchronization.
        let fp = wal.map(|_| plan_fingerprint(plan));
        let resume = match (wal, fp) {
            (Some(w), Some(fp)) => w.load_latest(fp)?,
            _ => None,
        };
        let base_syncs = u32::from(matches!(plan.base_round, BaseRound::Distributed));
        let resume_synced = resume.as_ref().map_or(0, |r| r.synced);
        metrics.resumed_syncs = resume_synced;

        // Ship the plan. Coordinator-side group-reduction filters are
        // applied before shipping bases and never evaluated at the sites,
        // so they are stripped from the shipped copy (they can embed large
        // partition-value sets). A site whose channel is already gone is
        // either fatal or written off, per the degraded mode.
        let before = wh.net.stats();
        let mut site_plan = plan.clone();
        for r in &mut site_plan.rounds {
            r.coord_filters = None;
        }
        let plan_msg = Message::Plan(site_plan);
        let mut dead: HashSet<NodeId> = HashSet::new();
        for site in 1..=wh.num_sites as NodeId {
            if wh
                .send_framed(site, &plan_msg, epoch, 0, reliable_plan)
                .is_err()
            {
                match plan.retry.degraded {
                    DegradedMode::Fail => {
                        return Err(SkallaError::exec(format!(
                            "site {site} is unreachable (crashed or disconnected)"
                        )))
                    }
                    DegradedMode::Partial | DegradedMode::Failover => {
                        dead.insert(site);
                        if dead.len() == wh.num_sites {
                            return Err(SkallaError::exec("every site failed; no result possible"));
                        }
                    }
                }
            }
        }
        metrics
            .rounds
            .push(wh.round_metrics_from("plan", &before, &[], 0.0, 0, 0, 0));

        // Initial partition→site assignment: each partition on its primary
        // site, except where the primary was already unreachable at plan
        // broadcast — those start on the next live replica in ring order
        // (or nowhere, if none survives).
        let replicas = if use_replicas {
            wh.replicas.as_ref()
        } else {
            None
        };
        let assignment: Vec<Option<NodeId>> = match replicas {
            Some(r) => {
                events.failovers += dead.len() as u64;
                let a: Vec<Option<NodeId>> = (0..r.num_parts())
                    .map(|part| {
                        r.hosts_of(part)
                            .iter()
                            .map(|&h| (h + 1) as NodeId)
                            .find(|h| !dead.contains(h))
                    })
                    .collect();
                for (part, host) in a.iter().enumerate() {
                    match host {
                        None => events.parts_lost += 1,
                        Some(h) if *h != (r.primary(part) + 1) as NodeId => {
                            events.parts_reassigned += 1;
                        }
                        Some(_) => {}
                    }
                }
                a
            }
            None => Vec::new(),
        };

        // Base state. A checkpointed run whose record already covers the
        // base synchronization adopts the checkpointed state directly —
        // by Theorem 1 it is the whole query state — and skips the
        // already-synchronized segments.
        let mut current: Option<Relation> = match &plan.base_round {
            BaseRound::Coordinator(rel) => Some(rel.clone()),
            _ => None,
        };
        let pending_base = matches!(plan.base_round, BaseRound::Distributed) && resume_synced == 0;
        if let Some(rec) = &resume {
            if rec.synced > 0 {
                current = Some(rec.state.clone());
            }
        }
        let segments = plan.segments();
        let next_seg = (resume_synced.saturating_sub(base_syncs) as usize).min(segments.len());

        Ok(QueryRun {
            wh,
            wal,
            plan: plan.clone(),
            plan_msg,
            epoch,
            plan_installed: true,
            reliable_plan,
            dead,
            assignment,
            use_replicas,
            events,
            metrics,
            current,
            round_no: 0,
            fp,
            base_syncs,
            segments,
            next_seg,
            pending_base,
            wall_start,
            done: false,
        })
    }

    /// The replica map, when the Failover rung is engaged for this run.
    fn replica_ctx(&self) -> Option<&'a ReplicaMap> {
        let wh = self.wh;
        if self.use_replicas {
            wh.replicas.as_ref()
        } else {
            None
        }
    }

    /// The per-site fragment layout for a failover round: the uniform
    /// whole-partition assignment, unless the plan enables skew splitting
    /// and the learned load sketch flags a hot partition — then the
    /// balanced [`plan_splits`] layout, with hot partitions cut into row
    /// ranges across their surviving ring replicas. Exactness is
    /// unconditional: fragments are disjoint row ranges over bit-identical
    /// replicas, so per-group sub-aggregates merge additively exactly as
    /// cross-site fragments always have.
    fn plan_site_frags(&mut self, replicas: &ReplicaMap) -> BTreeMap<NodeId, Vec<PartFrag>> {
        let uniform = site_parts_from(&self.assignment);
        if !self.plan.skew.split {
            return uniform;
        }
        let loads = match self.wh.skew_loads.lock().get(&replicas.table) {
            Some(l) => l.clone(),
            None => return uniform, // no sketch yet: first round learns
        };
        let owners: Vec<Option<usize>> = self
            .assignment
            .iter()
            .map(|a| a.map(|h| h as usize - 1))
            .collect();
        let alive: Vec<bool> = (0..self.wh.num_sites)
            .map(|s| !self.dead.contains(&((s + 1) as NodeId)))
            .collect();
        match plan_splits(
            &loads,
            &owners,
            replicas,
            &alive,
            self.plan.skew.split_threshold,
            self.plan.skew.max_split,
        ) {
            Some((work, split)) => {
                self.metrics.parts_split += split.len() as u64;
                work.into_iter()
                    .map(|(s, fs)| ((s + 1) as NodeId, fs))
                    .collect()
            }
            None => uniform,
        }
    }

    /// Fold the sketches piggybacked on a round's replies into the
    /// warehouse's persistent per-table load cache (so the *next* round —
    /// or the next query — can split hot partitions) and into this run's
    /// skew metrics.
    fn absorb_sketches(&mut self, table: &str, sketches: &[PartSketch]) {
        if sketches.is_empty() {
            return;
        }
        let mut cache = self.wh.skew_loads.lock();
        let loads = cache.entry(table.to_string()).or_default();
        for sk in sketches {
            if loads.len() <= sk.part as usize {
                loads.resize(sk.part as usize + 1, 0);
            }
            loads[sk.part as usize] = sk.rows;
            let share = sk.top_share();
            if share > self.metrics.skew_top_share {
                self.metrics.skew_top_share = share;
            }
        }
        let ratio = load_imbalance(loads);
        if ratio > self.metrics.skew_ratio {
            self.metrics.skew_ratio = ratio;
        }
    }

    /// Another query's rounds ran on the site engines since this run's
    /// last step: this run's plan must be re-installed before its next
    /// round. Called by the scheduler on every engine handover.
    pub fn mark_plan_stale(&mut self) {
        self.plan_installed = false;
    }

    /// Adjust the coordinator's synchronization worker count for rounds
    /// that have not started yet. Safe at any step boundary: the sync
    /// result is bit-for-bit invariant to the worker count (arrival-index
    /// ordering), only the engine built at the *next* segment changes,
    /// and the shipped plan is untouched — sites never read this knob.
    /// The serving scheduler uses it to shrink per-query worker pools
    /// when many queries interleave on one executor.
    pub fn set_coord_parallelism(&mut self, workers: usize) {
        self.plan.coord_parallelism = workers.max(1);
    }

    /// Whether the run has finished (its result is ready).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Metrics accumulated so far (complete once [`QueryRun::is_done`]).
    pub fn metrics(&self) -> &ExecMetrics {
        &self.metrics
    }

    /// Re-install this run's plan on every live site. Send failures are
    /// deliberately ignored here: an unreachable site is detected by the
    /// next `collect_round`, which routes it through the degraded-mode
    /// ladder (or failover) exactly as a mid-round loss would be.
    fn ensure_plan(&mut self) {
        if self.plan_installed {
            return;
        }
        for site in 1..=self.wh.num_sites as NodeId {
            if self.dead.contains(&site) {
                continue;
            }
            let _ = self.wh.send_framed(
                site,
                &self.plan_msg,
                self.epoch,
                self.round_no,
                self.reliable_plan,
            );
        }
        self.plan_installed = true;
    }

    /// Advance the run by exactly one synchronization round (the base
    /// round counts as one; the final call folds the bookkeeping and
    /// flips the run to done). Returns `true` once the run is finished
    /// and [`QueryRun::into_result`] may be called.
    pub fn step(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        if self.pending_base {
            self.ensure_plan();
            self.pending_base = false;
            self.step_base()?;
        } else if self.next_seg < self.segments.len() {
            self.ensure_plan();
            let idx = self.next_seg;
            self.next_seg += 1;
            self.step_segment(idx)?;
        } else {
            self.finish_metrics();
            self.done = true;
        }
        Ok(self.done)
    }

    /// The distributed base round: every site computes its local base
    /// fragment, the coordinator unions and deduplicates.
    fn step_base(&mut self) -> Result<()> {
        let wh = self.wh;
        let replicas = self.replica_ctx();
        let skew = self.plan.skew;
        self.round_no += 1;
        let round_no = self.round_no;
        let before = wh.net.stats();
        let mut site_parts: BTreeMap<NodeId, Vec<PartFrag>> = BTreeMap::new();
        let requests: Vec<(NodeId, Message)> = match replicas {
            Some(r) => {
                site_parts = self.plan_site_frags(r);
                site_parts
                    .iter()
                    .map(|(s, ps)| {
                        (
                            *s,
                            Message::ComputeBase {
                                parts: Some(ps.clone()),
                                task: 0,
                            },
                        )
                    })
                    .collect()
            }
            None => (1..=wh.num_sites as NodeId)
                .filter(|s| !self.dead.contains(s))
                .map(|s| {
                    (
                        s,
                        Message::ComputeBase {
                            parts: None,
                            task: 0,
                        },
                    )
                })
                .collect(),
        };
        let mk_base = |ps: &[PartFrag], task: u32| -> Result<Message> {
            Ok(Message::ComputeBase {
                parts: Some(ps.to_vec()),
                task,
            })
        };
        let mut fo_round = replicas.map(|r| FailoverRound {
            replicas: r,
            assignment: &mut self.assignment,
            site_parts,
            mk_request: &mk_base,
            events: &mut self.events,
            offload_factor: skew.offload.then_some(skew.offload_factor),
            next_task: 1,
            offers: Vec::new(),
        });
        let mut site_times = Vec::with_capacity(requests.len());
        let mut rows_up = 0u64;
        let mut combined: Option<Relation> = None;
        let mut sketches: Vec<PartSketch> = Vec::new();
        let mut coord_s = 0.0;
        let mut decode_s = 0.0;
        self.epoch = wh.collect_round(
            self.epoch,
            round_no,
            &self.plan.retry,
            Some(&self.plan_msg),
            requests,
            &mut self.dead,
            &mut self.metrics.site_attempts,
            &mut decode_s,
            &mut self.metrics.checksum_failures,
            fo_round.as_mut(),
            &mut |_src, msg| {
                let Message::BaseFragment {
                    rel,
                    compute_s,
                    sketch,
                    ..
                } = msg
                else {
                    return Err(SkallaError::exec("expected BaseFragment"));
                };
                let t = Instant::now();
                site_times.push(compute_s);
                rows_up += rel.len() as u64;
                sketches.extend(sketch);
                match &mut combined {
                    None => combined = Some(rel),
                    Some(acc) => acc.union_all(rel)?,
                }
                coord_s += t.elapsed().as_secs_f64();
                Ok(())
            },
        )?;
        drop(fo_round);
        if let Some(r) = replicas {
            let table = r.table.clone();
            self.absorb_sketches(&table, &sketches);
        }
        let t = Instant::now();
        let b0 = combined
            .ok_or_else(|| SkallaError::exec("no base fragments received"))?
            .distinct();
        coord_s += t.elapsed().as_secs_f64();
        let groups = b0.len();
        let mut rm = wh.round_metrics_from(
            "base",
            &before,
            &site_times,
            coord_s + decode_s,
            groups,
            0,
            rows_up,
        );
        rm.sync_decode_s = decode_s;
        self.metrics.rounds.push(rm);
        self.current = Some(b0);
        self.write_checkpoint(1)
    }

    /// One evaluation segment: ship (filtered) bases, collect
    /// sub-aggregate fragments, synchronize, checkpoint.
    fn step_segment(&mut self, seg_idx: usize) -> Result<()> {
        let wh = self.wh;
        let replicas = if self.use_replicas {
            wh.replicas.as_ref()
        } else {
            None
        };
        // The fragment layout is planned up front (it needs `&mut self`
        // for the split accounting) — uniform whole partitions, or the
        // skew-balanced split when the load sketch flags a hot one.
        let site_parts: BTreeMap<NodeId, Vec<PartFrag>> = match replicas {
            Some(r) => self.plan_site_frags(r),
            None => BTreeMap::new(),
        };
        let skew = self.plan.skew;
        let skew_table = replicas.map(|r| r.table.clone());
        let plan = &self.plan;
        let expr = &plan.expr;
        let default_schema = wh.table_schema(&expr.detail_name)?;
        let current = self.current.as_ref();
        let seg = self.segments[seg_idx].clone();
        let (start, end, label) = match seg {
            Segment::Standard { op } => (op, op, format!("round {}", op + 1)),
            Segment::LocalRun { start, end } => {
                (start, end, format!("local-run {}-{}", start + 1, end + 1))
            }
        };
        let local_base = start == 0 && matches!(plan.base_round, BaseRound::LocalOnly);
        let is_local_run = matches!(seg, Segment::LocalRun { .. });

        // Flattened aggregates + output fields + declared state types
        // for the segment.
        let mut specs: Vec<AggSpec> = Vec::new();
        let mut output_fields: Vec<Field> = Vec::new();
        let mut state_types: Vec<DataType> = Vec::new();
        for k in start..=end {
            let schema_k = wh.table_schema(expr.detail_for_op(k))?;
            for a in expr.ops[k].all_aggs() {
                state_types.extend(a.state_fields(&schema_k)?.into_iter().map(|f| f.dtype));
            }
            specs.extend(expr.ops[k].all_aggs().cloned());
            output_fields.extend(expr.ops[k].output_fields(&schema_k)?);
        }

        let before = wh.net.stats();
        let t_coord = Instant::now();

        let mut x = if plan.coord_parallelism > 1 {
            let (base_schema, seed) = if local_base {
                (Arc::new(expr.base_schema(&default_schema)?), None)
            } else {
                let base =
                    current.ok_or_else(|| SkallaError::exec("segment has no base relation"))?;
                (base.schema().clone(), Some(base))
            };
            Syncer::Sharded(ShardedSync::new(
                SyncSpec {
                    base_schema,
                    key_cols: expr.key.clone(),
                    specs,
                    state_types,
                    output: SyncOutput::Finalized(output_fields),
                    allow_new: local_base,
                },
                seed,
                sync_options_for(plan),
            )?)
        } else if local_base {
            let b0_schema = Arc::new(expr.base_schema(&default_schema)?);
            Syncer::Serial(BaseResult::empty(
                b0_schema,
                &expr.key,
                specs,
                output_fields,
            ))
        } else {
            let base = current.ok_or_else(|| SkallaError::exec("segment has no base relation"))?;
            Syncer::Serial(BaseResult::from_base(
                base,
                &expr.key,
                specs,
                output_fields,
            )?)
        };

        // Ship requests. For a multi-operator local run, a group must
        // reach site i if it could contribute to ANY operator in the
        // run, so per-site filters are the OR across the run's rounds —
        // and filtering is only possible when every round has filters.
        let filters: Option<Vec<Expr>> = if start == end {
            plan.rounds[start].coord_filters.clone()
        } else {
            let per_round: Option<Vec<&Vec<Expr>>> = plan.rounds[start..=end]
                .iter()
                .map(|r| r.coord_filters.as_ref())
                .collect();
            per_round.map(|rounds_filters| {
                (0..wh.num_sites)
                    .map(|i| {
                        skalla_expr::simplify(&Expr::disjunction(
                            rounds_filters.iter().map(|fs| fs[i].clone()),
                        ))
                    })
                    .collect()
            })
        };
        let filters = filters.as_ref();
        let mk_seg = |fs_req: &[PartFrag], task: u32| -> Result<Message> {
            let base_for_site: Option<Relation> = if local_base {
                None
            } else {
                let base =
                    current.ok_or_else(|| SkallaError::exec("segment has no base relation"))?;
                let frag = match filters {
                    Some(fs) => {
                        // Partition p's group filter is its primary
                        // site's (1:1 placement); a multi-partition
                        // request ships the union of its parts' groups.
                        // Fragments of the same partition share its
                        // filter, so part ids are deduplicated first.
                        let mut parts: Vec<u32> = fs_req.iter().map(|f| f.part).collect();
                        parts.sort_unstable();
                        parts.dedup();
                        let f = skalla_expr::simplify(&Expr::disjunction(
                            parts.iter().map(|&p| fs[p as usize].clone()),
                        ));
                        filter_base(base, &f)?
                    }
                    None => base.clone(),
                };
                Some(frag)
            };
            Ok(if is_local_run || local_base {
                Message::LocalRun {
                    start: start as u32,
                    end: end as u32,
                    base: base_for_site,
                    parts: Some(fs_req.to_vec()),
                    task,
                }
            } else {
                Message::Round {
                    op_idx: start as u32,
                    base: base_for_site.expect("standard round ships a base"),
                    parts: Some(fs_req.to_vec()),
                    task,
                }
            })
        };
        let mut requests: Vec<(NodeId, Message)> = Vec::with_capacity(wh.num_sites);
        let mut rows_down = 0u64;
        if replicas.is_some() {
            // Failover rounds address fragments explicitly; the
            // empty-fragment skip below is disabled so every partition
            // is requested somewhere and coverage stays exact.
            for (site, ps) in &site_parts {
                let msg = mk_seg(ps, 0)?;
                rows_down += match &msg {
                    Message::LocalRun { base, .. } => base.as_ref().map_or(0, |b| b.len() as u64),
                    Message::Round { base, .. } => base.len() as u64,
                    _ => 0,
                };
                requests.push((*site, msg));
            }
        } else {
            for site in 1..=wh.num_sites as NodeId {
                if self.dead.contains(&site) {
                    continue;
                }
                let base_for_site: Option<Relation> = if local_base {
                    None
                } else {
                    let base = current.expect("checked above");
                    let frag = match filters {
                        Some(fs) => filter_base(base, &fs[site as usize - 1])?,
                        None => base.clone(),
                    };
                    if frag.is_empty() && filters.is_some() {
                        // This site cannot contribute to any group.
                        continue;
                    }
                    Some(frag)
                };
                rows_down += base_for_site.as_ref().map_or(0, |b| b.len() as u64);
                let msg = if is_local_run || local_base {
                    Message::LocalRun {
                        start: start as u32,
                        end: end as u32,
                        base: base_for_site,
                        parts: None,
                        task: 0,
                    }
                } else {
                    Message::Round {
                        op_idx: start as u32,
                        base: base_for_site.expect("standard round ships a base"),
                        parts: None,
                        task: 0,
                    }
                };
                requests.push((site, msg));
            }
        }
        let coord_prep_s = t_coord.elapsed().as_secs_f64();
        let mut fo_round = replicas.map(|r| FailoverRound {
            replicas: r,
            assignment: &mut self.assignment,
            site_parts,
            mk_request: &mk_seg,
            events: &mut self.events,
            offload_factor: skew.offload.then_some(skew.offload_factor),
            next_task: 1,
            offers: Vec::new(),
        });

        // Collect and synchronize. Fragments merge as they arrive —
        // with row blocking, chunks from fast sites are folded into X
        // while slower sites are still computing (paper §3.2). The
        // collector deduplicates chunks by sequence number, so the
        // non-idempotent merge is safe under retries and duplication.
        self.round_no += 1;
        let round_no = self.round_no;
        let mut coord_sync_s = 0.0;
        let mut decode_s = 0.0;
        let mut site_times = Vec::with_capacity(requests.len());
        let mut rows_up = 0u64;
        let mut blocks_compiled = 0u64;
        let mut blocks_interpreted = 0u64;
        let mut segments_scanned = 0u64;
        let mut segments_pruned = 0u64;
        let mut blocks_verified = 0u64;
        let mut sketches: Vec<PartSketch> = Vec::new();
        self.epoch = wh.collect_round(
            self.epoch,
            round_no,
            &plan.retry,
            Some(&self.plan_msg),
            requests,
            &mut self.dead,
            &mut self.metrics.site_attempts,
            &mut decode_s,
            &mut self.metrics.checksum_failures,
            fo_round.as_mut(),
            &mut |src, msg| {
                let (h, compute_s, bc, bi, last, sketch, seg_sc, seg_pr, blk_v) = match msg {
                    Message::RoundResult {
                        h,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                        ..
                    } => (
                        h,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                    ),
                    Message::LocalRunResult {
                        ship,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                        ..
                    } => (
                        ship,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                    ),
                    other => {
                        return Err(SkallaError::exec(format!(
                            "site {src}: expected round result, got {other:?}"
                        )))
                    }
                };
                blocks_compiled += u64::from(bc);
                blocks_interpreted += u64::from(bi);
                segments_scanned += seg_sc;
                segments_pruned += seg_pr;
                blocks_verified += blk_v;
                let t = Instant::now();
                rows_up += h.len() as u64;
                sketches.extend(sketch);
                match &mut x {
                    // Serial: the closure time IS the merge time.
                    Syncer::Serial(b) => b.merge_fragment(&h, local_base)?,
                    // Sharded: the closure time is the router
                    // (validate + partition); merging happens on the
                    // worker pool, overlapped with receive.
                    Syncer::Sharded(s) => s.merge_chunk(h)?,
                }
                if last {
                    site_times.push(compute_s);
                }
                coord_sync_s += t.elapsed().as_secs_f64();
                Ok(())
            },
        )?;
        drop(fo_round);
        if let Some(table) = &skew_table {
            self.absorb_sketches(table, &sketches);
        }
        let t_final = Instant::now();
        let (finalized, merge_s, finalize_s, workers, shards, utilization, imbalance, sync_tail_s) =
            match x {
                Syncer::Serial(b) => {
                    let rel = b.finalize()?;
                    let fin_s = t_final.elapsed().as_secs_f64();
                    (
                        rel,
                        coord_sync_s,
                        fin_s,
                        1,
                        1,
                        0.0,
                        0.0,
                        coord_sync_s + fin_s,
                    )
                }
                Syncer::Sharded(s) => {
                    let (rel, stats) = s.finish()?;
                    (
                        rel,
                        stats.merge_busy_s,
                        stats.finalize_s,
                        stats.workers,
                        stats.shards,
                        stats.utilization(),
                        stats.imbalance(),
                        // The serialized (non-overlapped) coordinator
                        // cost: routing plus the drain after the last
                        // chunk.
                        coord_sync_s + stats.drain_s,
                    )
                }
            };
        let groups = finalized.len();
        let mut rm = wh.round_metrics_from(
            label,
            &before,
            &site_times,
            coord_prep_s + decode_s + sync_tail_s,
            groups,
            rows_down,
            rows_up,
        );
        rm.blocks_compiled = blocks_compiled;
        rm.blocks_interpreted = blocks_interpreted;
        rm.sync_decode_s = decode_s;
        rm.sync_merge_s = merge_s;
        rm.sync_finalize_s = finalize_s;
        rm.sync_workers = workers;
        rm.sync_shards = shards;
        rm.sync_utilization = utilization;
        rm.sync_imbalance = imbalance;
        rm.segments_scanned = segments_scanned;
        rm.segments_pruned = segments_pruned;
        rm.blocks_verified = blocks_verified;
        self.metrics.rounds.push(rm);
        self.current = Some(finalized);
        self.write_checkpoint(self.base_syncs + seg_idx as u32 + 1)
    }

    /// Append the current synchronized state to the WAL (when one is
    /// attached), under this run's epoch.
    fn write_checkpoint(&mut self, synced: u32) -> Result<()> {
        let (Some(w), Some(fp)) = (self.wal, self.fp) else {
            return Ok(());
        };
        let state = self
            .current
            .as_ref()
            .expect("checkpoint follows a synchronization");
        let t = Instant::now();
        w.append(&CheckpointRecord {
            fingerprint: fp,
            epoch: self.epoch,
            synced,
            state: state.clone(),
        })?;
        self.metrics.checkpoints += 1;
        self.metrics.checkpoint_s += t.elapsed().as_secs_f64();
        Ok(())
    }

    /// Fold the failover ledger and coverage into the metrics.
    fn finish_metrics(&mut self) {
        self.metrics.wall_s = self.wall_start.elapsed().as_secs_f64();
        self.metrics.failovers = self.events.failovers;
        self.metrics.parts_reassigned = self.events.parts_reassigned;
        self.metrics.parts_lost = self.events.parts_lost;
        self.metrics.failover_s = self.events.failover_s;
        self.metrics.offloads = self.events.offloads;
        self.metrics.offload_wins = self.events.offload_wins;
        self.metrics.coverage = Some(match self.replica_ctx() {
            // Under failover, coverage counts partitions: a dead site's
            // partitions stay in the answer as long as a replica survives.
            Some(r) => {
                let lost = self.assignment.iter().filter(|a| a.is_none()).count();
                Coverage {
                    responded: r.num_parts() - lost,
                    total: r.num_parts(),
                }
            }
            None => Coverage {
                responded: self.wh.num_sites - self.dead.len(),
                total: self.wh.num_sites,
            },
        });
    }

    /// Consume the finished run, yielding the result relation and the
    /// cost breakdown. Errors if the plan produced no result (or the run
    /// was not stepped to completion).
    pub fn into_result(self) -> Result<(Relation, ExecMetrics)> {
        if !self.done {
            return Err(SkallaError::exec("query run was not stepped to completion"));
        }
        let result = self
            .current
            .ok_or_else(|| SkallaError::exec("plan produced no result"))?;
        Ok((result, self.metrics))
    }
}

impl Drop for DistributedWarehouse {
    fn drop(&mut self) {
        // Best-effort teardown if the user forgot to call shutdown().
        let epoch = self.epoch.load(Ordering::Relaxed);
        for site in 1..=self.num_sites as NodeId {
            let _ = self
                .coord
                .send_reliable(site, Message::Shutdown.to_wire_framed(epoch, 0));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-site reply progress within one collection round.
#[derive(Default)]
struct SiteProgress {
    /// The site's `last` chunk was accepted (or the site was written off).
    done: bool,
    /// Next chunk sequence number the coordinator will accept.
    expected_seq: u32,
    /// How many `Error` replies this site has been retried for.
    error_retries: u32,
    /// Work-assignment id the coordinator expects this site's replies to
    /// echo. The original wave is task 0; straggler-offload duplicates
    /// carry fresh ids, so a reply cached or in flight for a site's
    /// *earlier* assignment in the same round can never be merged against
    /// a newer one.
    task: u32,
    /// When the site's final chunk was accepted; feeds the offload
    /// policy's round-median completion time.
    done_at: Option<Instant>,
}

/// Mutable state of one collection round, shared between the retry loop
/// and the failover re-planner.
struct RoundState {
    /// Epoch this round's requests are framed with. A failover re-plan
    /// bumps it, instantly invalidating in-flight and cached replies
    /// computed under the old partition assignment.
    epoch: u64,
    round: u32,
    /// Current request per participating site (failover rewrites entries).
    reqs: BTreeMap<NodeId, Message>,
    prog: BTreeMap<NodeId, SiteProgress>,
    /// Chunks held back per site until its final chunk arrives (failover
    /// rounds only): a site lost mid-reply leaves nothing merged.
    staged: BTreeMap<NodeId, Vec<Message>>,
}

/// Failover and skew accounting across a query's rounds, folded into
/// [`ExecMetrics`] at the end of execution.
#[derive(Default)]
struct FailoverEvents {
    failovers: u64,
    parts_reassigned: u64,
    parts_lost: u64,
    failover_s: f64,
    offloads: u64,
    offload_wins: u64,
}

/// An in-flight straggler-offload offer: `helper` was asked to duplicate
/// `laggard`'s remaining work under a fresh task id; the first of the two
/// to deliver its final chunk wins and the other side's reply is
/// discarded whole.
struct OffloadOffer {
    laggard: NodeId,
    helper: NodeId,
}

/// Per-round failover context handed to `collect_round` when the Failover
/// rung is active.
struct FailoverRound<'a> {
    replicas: &'a ReplicaMap,
    /// Live partition→site assignment; `None` marks a partition with no
    /// surviving replica. Persists across rounds.
    assignment: &'a mut Vec<Option<NodeId>>,
    /// Partition fragments each site still owes *this* round; entries
    /// drain as sites deliver their final chunk, so a site that dies
    /// later never triggers re-requests for fragments already merged.
    site_parts: BTreeMap<NodeId, Vec<PartFrag>>,
    /// Rebuild a round request covering exactly the given fragments under
    /// the given task id (used when a failover re-plans the wave and when
    /// a straggler's residual work is offloaded).
    mk_request: &'a dyn Fn(&[PartFrag], u32) -> Result<Message>,
    events: &'a mut FailoverEvents,
    /// `Some(factor)` arms mid-round straggler offload: once half the
    /// round's sites are done, a site lagging `factor ×` the median
    /// completion time has its residual work duplicated to an idle
    /// replica host.
    offload_factor: Option<f64>,
    /// Next work-assignment id for offload duplicates (the original wave
    /// is task 0).
    next_task: u32,
    /// Offers outstanding this round.
    offers: Vec<OffloadOffer>,
}

/// Group a partition→site assignment by hosting site, as whole-partition
/// fragments.
fn site_parts_from(assignment: &[Option<NodeId>]) -> BTreeMap<NodeId, Vec<PartFrag>> {
    let mut m: BTreeMap<NodeId, Vec<PartFrag>> = BTreeMap::new();
    for (part, host) in assignment.iter().enumerate() {
        if let Some(h) = host {
            m.entry(*h).or_default().push(PartFrag::whole(part as u32));
        }
    }
    m
}

fn pending_sites(prog: &BTreeMap<NodeId, SiteProgress>) -> Vec<NodeId> {
    prog.iter()
        .filter(|(_, p)| !p.done)
        .map(|(s, _)| *s)
        .collect()
}

/// The `(seq, last)` pair of a round reply; `None` for non-reply messages.
/// Single-message replies are their own final chunk.
fn reply_seq_last(msg: &Message) -> Option<(u32, bool)> {
    match msg {
        Message::BaseFragment { .. }
        | Message::ShipAllData { .. }
        | Message::SegmentsLoaded { .. }
        | Message::ScrubReport { .. } => Some((0, true)),
        Message::RoundResult { seq, last, .. } => Some((*seq, *last)),
        Message::LocalRunResult { seq, last, .. } => Some((*seq, *last)),
        _ => None,
    }
}

/// The work-assignment id a reply echoes (0 for replies that predate the
/// task protocol, e.g. `ShipAllData`).
fn reply_task(msg: &Message) -> u32 {
    match msg {
        Message::BaseFragment { task, .. }
        | Message::RoundResult { task, .. }
        | Message::LocalRunResult { task, .. } => *task,
        _ => 0,
    }
}

/// Apply a coordinator-side group-reduction filter to the base relation.
fn filter_base(base: &Relation, filter: &Expr) -> Result<Relation> {
    if *filter == Expr::lit(true) {
        return Ok(base.clone());
    }
    if *filter == Expr::lit(false) {
        return Ok(Relation::empty(base.schema().clone()));
    }
    let mut rows = Vec::new();
    for row in base.rows() {
        match eval_base(filter, row)? {
            Value::Bool(true) => rows.push(row.clone()),
            Value::Bool(false) | Value::Null => {}
            other => {
                return Err(SkallaError::type_error(format!(
                    "group filter evaluated to {other}"
                )))
            }
        }
    }
    Ok(Relation::from_rows_unchecked(base.schema().clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_expr::Expr;
    use skalla_gmdj::{AggSpec, BaseSpec, GmdjBlock, GmdjOp};
    use skalla_storage::{partition_by_hash, Table};
    use skalla_types::DataType;

    fn flow_schema() -> Arc<Schema> {
        Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc()
    }

    fn flow_table(rows: usize) -> Table {
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Int((i % 7) as i64),
                    Value::Int((i % 5) as i64),
                    Value::Int((i * 13 % 101) as i64),
                ]
            })
            .collect();
        Table::from_rows(flow_schema(), &data).unwrap()
    }

    fn warehouse(n_sites: usize, rows: usize) -> (DistributedWarehouse, Catalog) {
        let t = flow_table(rows);
        let parts = partition_by_hash(&t, 0, n_sites).unwrap();
        let catalogs: Vec<Catalog> = parts
            .parts
            .iter()
            .map(|p| {
                let mut c = Catalog::new();
                c.register("flow", p.clone());
                c
            })
            .collect();
        let mut full = Catalog::new();
        full.register("flow", t);
        (
            DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap(),
            full,
        )
    }

    /// Example 1-shaped query (correlated: θ₂ references MD₁ outputs).
    fn example1() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::sum(Expr::detail(2), "sum1").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1)))
                .and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2)))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn distributed_matches_centralized() {
        let (wh, full) = warehouse(4, 200);
        let expr = example1();
        let plan = DistPlan::unoptimized(expr.clone());
        let (dist, metrics) = wh.execute(&plan).unwrap();
        let cent = eval_expr_centralized(&expr, &full).unwrap();
        assert_eq!(dist.sorted(), cent.sorted());
        // plan + base + 2 rounds
        assert_eq!(metrics.num_rounds(), 4);
        assert!(metrics.total_bytes() > 0);
        wh.shutdown().unwrap();
    }

    #[test]
    fn single_site_works() {
        let (wh, full) = warehouse(1, 50);
        let expr = example1();
        let (dist, _) = wh.execute(&DistPlan::unoptimized(expr.clone())).unwrap();
        let cent = eval_expr_centralized(&expr, &full).unwrap();
        assert_eq!(dist.sorted(), cent.sorted());
        wh.shutdown().unwrap();
    }

    #[test]
    fn site_group_reduction_preserves_result_and_cuts_traffic() {
        let (wh, full) = warehouse(4, 300);
        let expr = example1();
        let base_plan = DistPlan::unoptimized(expr.clone());
        let (r1, m1) = wh.execute(&base_plan).unwrap();

        let mut reduced = base_plan.clone();
        for r in &mut reduced.rounds {
            r.site_group_reduction = true;
        }
        let (r2, m2) = wh.execute(&reduced).unwrap();
        assert_eq!(r1.sorted(), r2.sorted());
        assert_eq!(
            r1.sorted(),
            eval_expr_centralized(&expr, &full).unwrap().sorted()
        );
        // Groups are partitioned on sas (hash), so each site matches only a
        // fraction: upstream traffic must shrink.
        assert!(m2.total_bytes_up() < m1.total_bytes_up());
        wh.shutdown().unwrap();
    }

    #[test]
    fn ship_all_baseline_matches_and_ships_more() {
        let (wh, _full) = warehouse(4, 5000);
        let expr = example1();
        let (dist, dm) = wh.execute(&DistPlan::unoptimized(expr.clone())).unwrap();
        let (ship, sm) = wh.execute_ship_all(&expr).unwrap();
        assert_eq!(dist.sorted(), ship.sorted());
        // 5000 detail rows dwarf the 35-group result: Theorem 2 in action.
        assert!(sm.total_bytes_up() > dm.total_bytes_up());
        wh.shutdown().unwrap();
    }

    #[test]
    fn coordinator_base_relation_plan() {
        let (wh, full) = warehouse(3, 120);
        let base = Relation::new(
            Schema::from_pairs([("sas", DataType::Int64)])
                .unwrap()
                .into_arc(),
            (0..7).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::avg(Expr::detail(2), "avg_nb").unwrap()],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let expr = GmdjExpr::new(BaseSpec::Relation(base), "flow", vec![op], vec![0]).unwrap();
        let (dist, _) = wh.execute(&DistPlan::unoptimized(expr.clone())).unwrap();
        let cent = eval_expr_centralized(&expr, &full).unwrap();
        assert_eq!(dist.sorted(), cent.sorted());
        wh.shutdown().unwrap();
    }

    #[test]
    fn filter_base_applies_predicates() {
        let base = Relation::new(
            Schema::from_pairs([("k", DataType::Int64)])
                .unwrap()
                .into_arc(),
            vec![vec![Value::Int(1)], vec![Value::Int(5)]],
        )
        .unwrap();
        assert_eq!(filter_base(&base, &Expr::lit(true)).unwrap().len(), 2);
        assert_eq!(filter_base(&base, &Expr::lit(false)).unwrap().len(), 0);
        let f = Expr::base(0).gt(Expr::lit(2));
        let out = filter_base(&base, &f).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0)[0], Value::Int(5));
        assert!(filter_base(&base, &Expr::base(0)).is_err());
    }

    #[test]
    fn launch_rejects_empty_and_mismatched() {
        assert!(DistributedWarehouse::launch(vec![], CostModel::free()).is_err());
        let mut c1 = Catalog::new();
        c1.register("t", Table::empty(flow_schema()));
        let mut c2 = Catalog::new();
        c2.register(
            "t",
            Table::empty(
                Schema::from_pairs([("x", DataType::Int64)])
                    .unwrap()
                    .into_arc(),
            ),
        );
        assert!(DistributedWarehouse::launch(vec![c1, c2], CostModel::free()).is_err());
    }

    #[test]
    fn metrics_breakdown_is_consistent() {
        let (wh, _) = warehouse(2, 100);
        let (_, m) = wh.execute(&DistPlan::unoptimized(example1())).unwrap();
        assert!(m.modeled_time_s() >= 0.0);
        assert!(m.wall_s > 0.0);
        assert_eq!(m.total_bytes(), m.total_bytes_down() + m.total_bytes_up());
        // Groups recorded on the final round equal the result size.
        assert!(m.rounds.last().unwrap().groups > 0);
        // MD₁ is a pure equi-join: both sites run it through compiled
        // kernels. MD₂ carries a correlated residual and stays interpreted.
        assert!(m.total_blocks_compiled() > 0);
        assert!(m.total_blocks_interpreted() > 0);
        assert!(m.summary().contains("compiled"));
        wh.shutdown().unwrap();
    }
}
