//! The coordinator ↔ site protocol and its wire encoding.
//!
//! Every message is serialized with the `skalla-net` wire format before it
//! crosses the simulated network, so the byte counts reported by
//! [`skalla_net::TransferStats`] are exactly what a real deployment would
//! ship. Plans (including their expressions) are encoded here as well —
//! Skalla "translates OLAP queries into distributed evaluation plans which
//! are shipped to individual sites" (paper abstract).
//!
//! Encoding of the `skalla-expr` / `skalla-gmdj` types lives here as free
//! functions (the orphan rule prevents implementing `skalla-net`'s traits
//! on those crates' types from the outside).

use bytes::{BufMut, Bytes, BytesMut};
use skalla_expr::{BinOp, Expr, UnOp};
use skalla_gmdj::{AggFunc, AggSpec, BaseSpec, GmdjBlock, GmdjExpr, GmdjOp};
use skalla_net::wire::{put_str, put_varint};
use skalla_net::{WireDecode, WireEncode, WireReader};
use skalla_storage::{PartFrag, PartSketch};
use skalla_types::{Relation, Result, SkallaError, Value};

use crate::plan::{
    BaseRound, DegradedMode, DistPlan, OptFlags, RetryPolicy, RoundSpec, SkewPolicy,
};

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Ship the evaluation plan to a site (sent once per query).
    Plan(DistPlan),
    /// Ask a site to compute its local `B₀ᵢ` fragment.
    ComputeBase {
        /// Which partition fragments of the detail relation to cover.
        /// `None` means the site's own primary partition (the
        /// replication-unaware protocol); `Some(fs)` restricts the
        /// computation to the named replicated partition fragments — used
        /// by failover to re-request a dead site's partitions from a
        /// surviving replica host, and by skew-aware splitting to hand out
        /// row-range slices of a hot partition.
        parts: Option<Vec<PartFrag>>,
        /// Work-assignment id within `(epoch, round)`. The original
        /// request is task 0; straggler-offload duplicates get fresh ids
        /// so the coordinator can tell a helper's reply from the
        /// laggard's. Sites echo it on every reply chunk.
        task: u32,
    },
    /// A site's base fragment plus its measured compute time.
    BaseFragment {
        /// The local distinct projection.
        rel: Relation,
        /// Site compute seconds.
        compute_s: f64,
        /// Echo of the request's task id.
        task: u32,
        /// Per-partition cardinality + heavy-hitter sketches gathered
        /// during the scan, shipped so the coordinator can detect skew.
        sketch: Vec<PartSketch>,
    },
    /// Evaluate operator `op_idx` against the shipped base (standard
    /// round).
    Round {
        /// Operator index.
        op_idx: u32,
        /// The base(-fragment) relation to aggregate against.
        base: Relation,
        /// Detail partition fragments to aggregate over; `None` means the
        /// site's primary partition (see [`Message::ComputeBase`]).
        parts: Option<Vec<PartFrag>>,
        /// Work-assignment id (see [`Message::ComputeBase`]).
        task: u32,
    },
    /// A site's sub-aggregate relation `Hᵢ` for a standard round —
    /// possibly one of several row-blocked chunks.
    RoundResult {
        /// Operator index.
        op_idx: u32,
        /// Chunk sequence number (0-based). The coordinator's merge is not
        /// idempotent, so it accepts a chunk only when `seq` matches the
        /// next expected value for the sender — duplicated or replayed
        /// chunks are discarded.
        seq: u32,
        /// Base columns ++ sub-aggregate state columns.
        h: Relation,
        /// Site compute seconds (reported on the final chunk).
        compute_s: f64,
        /// GMDJ blocks evaluated through compiled kernels (reported on the
        /// final chunk; zero on earlier chunks, like `compute_s`).
        blocks_compiled: u32,
        /// GMDJ blocks that fell back to the row-at-a-time interpreter
        /// (reported on the final chunk).
        blocks_interpreted: u32,
        /// `false` while more chunks follow (row blocking).
        last: bool,
        /// Echo of the request's task id.
        task: u32,
        /// Per-partition cardinality sketches (reported on the final
        /// chunk; empty on earlier chunks).
        sketch: Vec<PartSketch>,
        /// Out-of-core segments decoded during the scan (reported on the
        /// final chunk; zero for in-memory details).
        segments_scanned: u64,
        /// Out-of-core segments skipped by zone-map pruning (reported on
        /// the final chunk).
        segments_pruned: u64,
        /// Column chunks whose CRC32C was verified during the scan
        /// (reported on the final chunk).
        blocks_verified: u64,
    },
    /// Evaluate operators `start..=end` locally without intermediate
    /// synchronization (synchronization reduction).
    LocalRun {
        /// First operator index.
        start: u32,
        /// Last operator index (inclusive).
        end: u32,
        /// The base to start from; `None` means compute `B₀ᵢ` locally
        /// (Proposition 2).
        base: Option<Relation>,
        /// Detail partition fragments to aggregate over; `None` means the
        /// site's primary partition (see [`Message::ComputeBase`]).
        parts: Option<Vec<PartFrag>>,
        /// Work-assignment id (see [`Message::ComputeBase`]).
        task: u32,
    },
    /// A site's combined sub-aggregate relation for a local run —
    /// possibly one of several row-blocked chunks.
    LocalRunResult {
        /// Last operator index of the run.
        end: u32,
        /// Chunk sequence number (0-based); see
        /// [`Message::RoundResult::seq`](Message::RoundResult).
        seq: u32,
        /// Base columns ++ state columns of every operator in the run.
        ship: Relation,
        /// Site compute seconds (reported on the final chunk).
        compute_s: f64,
        /// GMDJ blocks evaluated through compiled kernels, summed over the
        /// run's operators (reported on the final chunk).
        blocks_compiled: u32,
        /// GMDJ blocks that fell back to the interpreter, summed over the
        /// run's operators (reported on the final chunk).
        blocks_interpreted: u32,
        /// `false` while more chunks follow (row blocking).
        last: bool,
        /// Echo of the request's task id.
        task: u32,
        /// Per-partition cardinality sketches (reported on the final
        /// chunk; empty on earlier chunks).
        sketch: Vec<PartSketch>,
        /// Out-of-core segments decoded across the run's operators
        /// (reported on the final chunk; zero for in-memory details).
        segments_scanned: u64,
        /// Out-of-core segments skipped by zone-map pruning across the
        /// run's operators (reported on the final chunk).
        segments_pruned: u64,
        /// Column chunks whose CRC32C was verified across the run's
        /// operators (reported on the final chunk).
        blocks_verified: u64,
    },
    /// Baseline only: ship the named raw detail table to the coordinator
    /// (what Skalla never does — used to demonstrate Theorem 2).
    ShipAllRequest {
        /// Table to ship.
        table: String,
    },
    /// The raw detail data (baseline only).
    ShipAllData {
        /// The site's full partition, as rows.
        rel: Relation,
        /// Site compute seconds.
        compute_s: f64,
    },
    /// Terminate the site worker.
    Shutdown,
    /// A site-side failure, reported back to the coordinator.
    Error {
        /// Human-readable description.
        msg: String,
        /// `true` when the failure is a storage-integrity one
        /// ([`skalla_types::SkallaError::SegmentCorrupt`]): deterministic,
        /// so the coordinator skips retries and goes straight to the
        /// degradation ladder.
        corrupt: bool,
    },
    /// Back `table` with the on-disk segment file at `path` (out-of-core
    /// mode), replacing any previous catalog entry under that name. Sent
    /// at load time and by live data reloads; a reload answers with
    /// [`Message::SegmentsLoaded`] so the serving layer knows when to
    /// invalidate its result cache.
    LoadSegments {
        /// Catalog name to (re)bind — the plain table name, or a mangled
        /// partition name under replicated placement.
        table: String,
        /// Path of the segment file on the site's local disk.
        path: String,
        /// Under replicated placement, the partition number the file
        /// holds: the site co-registers the file under the mangled
        /// `__part::<table>::<part>` alias, so partition-addressed scans
        /// stream from disk exactly like plain-name scans do.
        part: Option<u64>,
    },
    /// Acknowledge a [`Message::LoadSegments`]: the file was opened and
    /// its footer validated.
    SegmentsLoaded {
        /// Total rows of the newly bound segment file.
        rows: u64,
    },
    /// Walk every segment-backed catalog entry, verify all block
    /// checksums off the query path, and quarantine corrupt files
    /// (rename to `<path>.quarantined` + unregister). Answered with
    /// [`Message::ScrubReport`].
    ScrubRequest,
    /// A site's scrub findings, one entry per segment-backed table.
    ScrubReport {
        /// Per-table verification outcomes.
        entries: Vec<ScrubEntry>,
    },
}

/// One segment-backed catalog entry's scrub outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubEntry {
    /// Catalog name the file backs (possibly a mangled partition name).
    pub table: String,
    /// On-disk path of the segment file.
    pub path: String,
    /// Column chunks whose CRC32C was verified (zero when the file was
    /// found corrupt).
    pub blocks: u64,
    /// `None` if every checksum matched; `Some(description)` if the file
    /// was found corrupt and quarantined.
    pub error: Option<String>,
}

impl Message {
    /// Serialize to wire bytes.
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::new();
        encode_message(self, &mut buf);
        buf.freeze()
    }

    /// Deserialize from wire bytes.
    pub fn from_wire(bytes: &[u8]) -> Result<Message> {
        let mut r = WireReader::new(bytes);
        let m = decode_message(&mut r)?;
        if !r.is_empty() {
            return Err(SkallaError::net("trailing bytes after message"));
        }
        Ok(m)
    }

    /// Serialize with a query-epoch and round-number frame.
    ///
    /// When a query aborts mid-round (a site error fails the execution
    /// fast), slower sites may still be computing; their replies arrive
    /// during the *next* query. The coordinator stamps every request with
    /// an epoch, sites echo it, and stale-epoch replies are discarded.
    ///
    /// The round number identifies the synchronization round within the
    /// epoch (base round is 0, operator rounds follow). Sites use it to
    /// deduplicate re-sent requests — the coordinator re-sends a round
    /// request when its deadline expires, and a site that already served
    /// `(epoch, round)` replays its cached reply instead of recomputing.
    pub fn to_wire_framed(&self, epoch: u64, round: u32) -> Bytes {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, epoch);
        put_varint(&mut buf, u64::from(round));
        encode_message(self, &mut buf);
        buf.freeze()
    }

    /// Deserialize an epoch+round-framed message.
    pub fn from_wire_framed(bytes: &[u8]) -> Result<(u64, u32, Message)> {
        let mut r = WireReader::new(bytes);
        let epoch = r.varint()?;
        let round = r.varint()? as u32;
        let m = decode_message(&mut r)?;
        if !r.is_empty() {
            return Err(SkallaError::net("trailing bytes after message"));
        }
        Ok((epoch, round, m))
    }
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_slice(&v.to_le_bytes());
}

/// Encode a partition-fragment reference (three varints).
pub fn encode_part_frag(f: &PartFrag, buf: &mut BytesMut) {
    put_varint(buf, u64::from(f.part));
    put_varint(buf, u64::from(f.frag));
    put_varint(buf, u64::from(f.of));
}

/// Decode a partition-fragment reference, rejecting degenerate splits.
pub fn decode_part_frag(r: &mut WireReader<'_>) -> Result<PartFrag> {
    let part = r.varint()? as u32;
    let frag = r.varint()? as u32;
    let of = r.varint()? as u32;
    if of == 0 || frag >= of {
        return Err(SkallaError::net(format!(
            "invalid fragment {frag}/{of} of partition {part}"
        )));
    }
    Ok(PartFrag { part, frag, of })
}

fn encode_opt_frags(parts: &Option<Vec<PartFrag>>, buf: &mut BytesMut) {
    match parts {
        None => buf.put_u8(0),
        Some(fs) => {
            buf.put_u8(1);
            put_varint(buf, fs.len() as u64);
            for f in fs {
                encode_part_frag(f, buf);
            }
        }
    }
}

fn decode_opt_frags(r: &mut WireReader<'_>) -> Result<Option<Vec<PartFrag>>> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n = r.varint()? as usize;
            let mut fs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                fs.push(decode_part_frag(r)?);
            }
            Ok(Some(fs))
        }
        other => Err(SkallaError::net(format!("invalid fragments byte {other}"))),
    }
}

/// Encode a per-partition cardinality + heavy-hitter sketch.
pub fn encode_part_sketch(s: &PartSketch, buf: &mut BytesMut) {
    put_varint(buf, u64::from(s.part));
    put_varint(buf, s.rows);
    put_varint(buf, s.heavy.len() as u64);
    for &(key, count) in &s.heavy {
        put_varint(buf, key);
        put_varint(buf, count);
    }
}

/// Decode a per-partition sketch.
pub fn decode_part_sketch(r: &mut WireReader<'_>) -> Result<PartSketch> {
    let part = r.varint()? as u32;
    let rows = r.varint()?;
    let n = r.varint()? as usize;
    let mut heavy = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        heavy.push((r.varint()?, r.varint()?));
    }
    Ok(PartSketch { part, rows, heavy })
}

fn encode_sketches(ss: &[PartSketch], buf: &mut BytesMut) {
    put_varint(buf, ss.len() as u64);
    for s in ss {
        encode_part_sketch(s, buf);
    }
}

fn decode_sketches(r: &mut WireReader<'_>) -> Result<Vec<PartSketch>> {
    let n = r.varint()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(decode_part_sketch(r)?);
    }
    Ok(out)
}

fn encode_message(m: &Message, buf: &mut BytesMut) {
    match m {
        Message::Plan(p) => {
            buf.put_u8(0);
            encode_plan(p, buf);
        }
        Message::ComputeBase { parts, task } => {
            buf.put_u8(1);
            encode_opt_frags(parts, buf);
            put_varint(buf, u64::from(*task));
        }
        Message::BaseFragment {
            rel,
            compute_s,
            task,
            sketch,
        } => {
            buf.put_u8(2);
            rel.encode(buf);
            put_f64(buf, *compute_s);
            put_varint(buf, u64::from(*task));
            encode_sketches(sketch, buf);
        }
        Message::Round {
            op_idx,
            base,
            parts,
            task,
        } => {
            buf.put_u8(3);
            put_varint(buf, u64::from(*op_idx));
            base.encode(buf);
            encode_opt_frags(parts, buf);
            put_varint(buf, u64::from(*task));
        }
        Message::RoundResult {
            op_idx,
            seq,
            h,
            compute_s,
            blocks_compiled,
            blocks_interpreted,
            last,
            task,
            sketch,
            segments_scanned,
            segments_pruned,
            blocks_verified,
        } => {
            buf.put_u8(4);
            put_varint(buf, u64::from(*op_idx));
            put_varint(buf, u64::from(*seq));
            h.encode(buf);
            put_f64(buf, *compute_s);
            put_varint(buf, u64::from(*blocks_compiled));
            put_varint(buf, u64::from(*blocks_interpreted));
            last.encode(buf);
            put_varint(buf, u64::from(*task));
            encode_sketches(sketch, buf);
            put_varint(buf, *segments_scanned);
            put_varint(buf, *segments_pruned);
            put_varint(buf, *blocks_verified);
        }
        Message::LocalRun {
            start,
            end,
            base,
            parts,
            task,
        } => {
            buf.put_u8(5);
            put_varint(buf, u64::from(*start));
            put_varint(buf, u64::from(*end));
            base.encode(buf);
            encode_opt_frags(parts, buf);
            put_varint(buf, u64::from(*task));
        }
        Message::LocalRunResult {
            end,
            seq,
            ship,
            compute_s,
            blocks_compiled,
            blocks_interpreted,
            last,
            task,
            sketch,
            segments_scanned,
            segments_pruned,
            blocks_verified,
        } => {
            buf.put_u8(6);
            put_varint(buf, u64::from(*end));
            put_varint(buf, u64::from(*seq));
            ship.encode(buf);
            put_f64(buf, *compute_s);
            put_varint(buf, u64::from(*blocks_compiled));
            put_varint(buf, u64::from(*blocks_interpreted));
            last.encode(buf);
            put_varint(buf, u64::from(*task));
            encode_sketches(sketch, buf);
            put_varint(buf, *segments_scanned);
            put_varint(buf, *segments_pruned);
            put_varint(buf, *blocks_verified);
        }
        Message::ShipAllRequest { table } => {
            buf.put_u8(7);
            put_str(buf, table);
        }
        Message::ShipAllData { rel, compute_s } => {
            buf.put_u8(8);
            rel.encode(buf);
            put_f64(buf, *compute_s);
        }
        Message::Shutdown => buf.put_u8(9),
        Message::Error { msg, corrupt } => {
            buf.put_u8(10);
            put_str(buf, msg);
            corrupt.encode(buf);
        }
        Message::LoadSegments { table, path, part } => {
            buf.put_u8(11);
            put_str(buf, table);
            put_str(buf, path);
            // Biased varint: 0 is `None`, p + 1 is `Some(p)`.
            put_varint(buf, part.map_or(0, |p| p + 1));
        }
        Message::SegmentsLoaded { rows } => {
            buf.put_u8(12);
            put_varint(buf, *rows);
        }
        Message::ScrubRequest => buf.put_u8(13),
        Message::ScrubReport { entries } => {
            buf.put_u8(14);
            put_varint(buf, entries.len() as u64);
            for e in entries {
                put_str(buf, &e.table);
                put_str(buf, &e.path);
                put_varint(buf, e.blocks);
                match &e.error {
                    None => buf.put_u8(0),
                    Some(msg) => {
                        buf.put_u8(1);
                        put_str(buf, msg);
                    }
                }
            }
        }
    }
}

fn decode_message(r: &mut WireReader<'_>) -> Result<Message> {
    match r.u8()? {
        0 => Ok(Message::Plan(decode_plan(r)?)),
        1 => Ok(Message::ComputeBase {
            parts: decode_opt_frags(r)?,
            task: r.varint()? as u32,
        }),
        2 => Ok(Message::BaseFragment {
            rel: Relation::decode(r)?,
            compute_s: r.f64()?,
            task: r.varint()? as u32,
            sketch: decode_sketches(r)?,
        }),
        3 => Ok(Message::Round {
            op_idx: r.varint()? as u32,
            base: Relation::decode(r)?,
            parts: decode_opt_frags(r)?,
            task: r.varint()? as u32,
        }),
        4 => Ok(Message::RoundResult {
            op_idx: r.varint()? as u32,
            seq: r.varint()? as u32,
            h: Relation::decode(r)?,
            compute_s: r.f64()?,
            blocks_compiled: r.varint()? as u32,
            blocks_interpreted: r.varint()? as u32,
            last: bool::decode(r)?,
            task: r.varint()? as u32,
            sketch: decode_sketches(r)?,
            segments_scanned: r.varint()?,
            segments_pruned: r.varint()?,
            blocks_verified: r.varint()?,
        }),
        5 => Ok(Message::LocalRun {
            start: r.varint()? as u32,
            end: r.varint()? as u32,
            base: Option::<Relation>::decode(r)?,
            parts: decode_opt_frags(r)?,
            task: r.varint()? as u32,
        }),
        6 => Ok(Message::LocalRunResult {
            end: r.varint()? as u32,
            seq: r.varint()? as u32,
            ship: Relation::decode(r)?,
            compute_s: r.f64()?,
            blocks_compiled: r.varint()? as u32,
            blocks_interpreted: r.varint()? as u32,
            last: bool::decode(r)?,
            task: r.varint()? as u32,
            sketch: decode_sketches(r)?,
            segments_scanned: r.varint()?,
            segments_pruned: r.varint()?,
            blocks_verified: r.varint()?,
        }),
        7 => Ok(Message::ShipAllRequest { table: r.string()? }),
        8 => Ok(Message::ShipAllData {
            rel: Relation::decode(r)?,
            compute_s: r.f64()?,
        }),
        9 => Ok(Message::Shutdown),
        10 => Ok(Message::Error {
            msg: r.string()?,
            corrupt: bool::decode(r)?,
        }),
        11 => Ok(Message::LoadSegments {
            table: r.string()?,
            path: r.string()?,
            part: match r.varint()? {
                0 => None,
                p => Some(p - 1),
            },
        }),
        12 => Ok(Message::SegmentsLoaded { rows: r.varint()? }),
        13 => Ok(Message::ScrubRequest),
        14 => {
            let n = r.varint()? as usize;
            let mut entries = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let table = r.string()?;
                let path = r.string()?;
                let blocks = r.varint()?;
                let error = match r.u8()? {
                    0 => None,
                    1 => Some(r.string()?),
                    other => {
                        return Err(SkallaError::net(format!(
                            "invalid scrub-error byte {other}"
                        )))
                    }
                };
                entries.push(ScrubEntry {
                    table,
                    path,
                    blocks,
                    error,
                });
            }
            Ok(Message::ScrubReport { entries })
        }
        other => Err(SkallaError::net(format!("invalid message tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Expression encoding
// ---------------------------------------------------------------------------

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn binop_from_tag(t: u8) -> Result<BinOp> {
    Ok(match t {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        other => return Err(SkallaError::net(format!("invalid binop tag {other}"))),
    })
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
        UnOp::IsNull => 2,
    }
}

fn unop_from_tag(t: u8) -> Result<UnOp> {
    Ok(match t {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        2 => UnOp::IsNull,
        other => return Err(SkallaError::net(format!("invalid unop tag {other}"))),
    })
}

/// Encode an expression tree.
pub fn encode_expr(e: &Expr, buf: &mut BytesMut) {
    match e {
        Expr::Lit(v) => {
            buf.put_u8(0);
            v.encode(buf);
        }
        Expr::BaseCol(i) => {
            buf.put_u8(1);
            put_varint(buf, *i as u64);
        }
        Expr::DetailCol(i) => {
            buf.put_u8(2);
            put_varint(buf, *i as u64);
        }
        Expr::Binary { op, lhs, rhs } => {
            buf.put_u8(3);
            buf.put_u8(binop_tag(*op));
            encode_expr(lhs, buf);
            encode_expr(rhs, buf);
        }
        Expr::Unary { op, expr } => {
            buf.put_u8(4);
            buf.put_u8(unop_tag(*op));
            encode_expr(expr, buf);
        }
        Expr::InSet { expr, set } => {
            buf.put_u8(5);
            encode_expr(expr, buf);
            put_varint(buf, set.len() as u64);
            for v in set {
                v.encode(buf);
            }
        }
    }
}

/// Decode an expression tree.
pub fn decode_expr(r: &mut WireReader<'_>) -> Result<Expr> {
    match r.u8()? {
        0 => Ok(Expr::Lit(Value::decode(r)?)),
        1 => Ok(Expr::BaseCol(r.varint()? as usize)),
        2 => Ok(Expr::DetailCol(r.varint()? as usize)),
        3 => {
            let op = binop_from_tag(r.u8()?)?;
            let lhs = decode_expr(r)?;
            let rhs = decode_expr(r)?;
            Ok(Expr::binary(op, lhs, rhs))
        }
        4 => {
            let op = unop_from_tag(r.u8()?)?;
            let expr = decode_expr(r)?;
            Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            })
        }
        5 => {
            let expr = decode_expr(r)?;
            let n = r.varint()? as usize;
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..n {
                set.insert(Value::decode(r)?);
            }
            Ok(Expr::InSet {
                expr: Box::new(expr),
                set,
            })
        }
        other => Err(SkallaError::net(format!("invalid expr tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// GMDJ / plan encoding
// ---------------------------------------------------------------------------

fn aggfunc_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Avg => 2,
        AggFunc::Min => 3,
        AggFunc::Max => 4,
    }
}

fn aggfunc_from_tag(t: u8) -> Result<AggFunc> {
    Ok(match t {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Avg,
        3 => AggFunc::Min,
        4 => AggFunc::Max,
        other => return Err(SkallaError::net(format!("invalid aggfunc tag {other}"))),
    })
}

fn encode_agg(a: &AggSpec, buf: &mut BytesMut) {
    buf.put_u8(aggfunc_tag(a.func));
    match &a.arg {
        None => buf.put_u8(0),
        Some(e) => {
            buf.put_u8(1);
            encode_expr(e, buf);
        }
    }
    put_str(buf, &a.name);
}

fn decode_agg(r: &mut WireReader<'_>) -> Result<AggSpec> {
    let func = aggfunc_from_tag(r.u8()?)?;
    let arg = match r.u8()? {
        0 => None,
        1 => Some(decode_expr(r)?),
        other => return Err(SkallaError::net(format!("invalid agg-arg byte {other}"))),
    };
    let name = r.string()?;
    Ok(AggSpec { func, arg, name })
}

fn encode_op(op: &GmdjOp, buf: &mut BytesMut) {
    put_varint(buf, op.blocks.len() as u64);
    for b in &op.blocks {
        put_varint(buf, b.aggs.len() as u64);
        for a in &b.aggs {
            encode_agg(a, buf);
        }
        encode_expr(&b.theta, buf);
    }
    match &op.detail_name {
        None => buf.put_u8(0),
        Some(n) => {
            buf.put_u8(1);
            put_str(buf, n);
        }
    }
}

fn decode_op(r: &mut WireReader<'_>) -> Result<GmdjOp> {
    let nb = r.varint()? as usize;
    let mut blocks = Vec::with_capacity(nb.min(256));
    for _ in 0..nb {
        let na = r.varint()? as usize;
        let mut aggs = Vec::with_capacity(na.min(256));
        for _ in 0..na {
            aggs.push(decode_agg(r)?);
        }
        let theta = decode_expr(r)?;
        blocks.push(GmdjBlock::new(aggs, theta));
    }
    let detail_name = match r.u8()? {
        0 => None,
        1 => Some(r.string()?),
        other => {
            return Err(SkallaError::net(format!(
                "invalid detail-name byte {other}"
            )))
        }
    };
    Ok(GmdjOp {
        blocks,
        detail_name,
    })
}

/// Encode a whole GMDJ expression.
pub fn encode_gmdj_expr(e: &GmdjExpr, buf: &mut BytesMut) {
    match &e.base {
        BaseSpec::DistinctProject { cols } => {
            buf.put_u8(0);
            cols.encode(buf);
        }
        BaseSpec::Relation(rel) => {
            buf.put_u8(1);
            rel.encode(buf);
        }
    }
    put_str(buf, &e.detail_name);
    put_varint(buf, e.ops.len() as u64);
    for op in &e.ops {
        encode_op(op, buf);
    }
    e.key.encode(buf);
}

/// Decode a whole GMDJ expression.
pub fn decode_gmdj_expr(r: &mut WireReader<'_>) -> Result<GmdjExpr> {
    let base = match r.u8()? {
        0 => BaseSpec::DistinctProject {
            cols: Vec::<usize>::decode(r)?,
        },
        1 => BaseSpec::Relation(Relation::decode(r)?),
        other => return Err(SkallaError::net(format!("invalid base-spec tag {other}"))),
    };
    let detail_name = r.string()?;
    let n = r.varint()? as usize;
    let mut ops = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        ops.push(decode_op(r)?);
    }
    let key = Vec::<usize>::decode(r)?;
    Ok(GmdjExpr {
        base,
        detail_name,
        ops,
        key,
    })
}

fn encode_plan(p: &DistPlan, buf: &mut BytesMut) {
    encode_gmdj_expr(&p.expr, buf);
    match &p.base_round {
        BaseRound::Distributed => buf.put_u8(0),
        BaseRound::LocalOnly => buf.put_u8(1),
        BaseRound::Coordinator(rel) => {
            buf.put_u8(2);
            rel.encode(buf);
        }
    }
    put_varint(buf, p.rounds.len() as u64);
    for rspec in &p.rounds {
        rspec.site_group_reduction.encode(buf);
        match &rspec.coord_filters {
            None => buf.put_u8(0),
            Some(fs) => {
                buf.put_u8(1);
                put_varint(buf, fs.len() as u64);
                for f in fs {
                    encode_expr(f, buf);
                }
            }
        }
        rspec.local_only.encode(buf);
    }
    p.flags.coalesce.encode(buf);
    p.flags.site_group_reduction.encode(buf);
    p.flags.coord_group_reduction.encode(buf);
    p.flags.sync_reduction.encode(buf);
    match p.block_rows {
        None => buf.put_u8(0),
        Some(b) => {
            buf.put_u8(1);
            put_varint(buf, b as u64);
        }
    }
    put_varint(buf, p.site_parallelism as u64);
    put_varint(buf, p.coord_parallelism as u64);
    // 0 encodes "engine default" (a real override is clamped to ≥ 1).
    put_varint(buf, p.sync_shards.unwrap_or(0) as u64);
    put_f64(buf, p.retry.deadline.as_secs_f64());
    put_varint(buf, u64::from(p.retry.max_retries));
    put_f64(buf, p.retry.backoff);
    buf.put_u8(match p.retry.degraded {
        DegradedMode::Fail => 0,
        DegradedMode::Partial => 1,
        DegradedMode::Failover => 2,
    });
    p.skew.split.encode(buf);
    put_f64(buf, p.skew.split_threshold);
    put_varint(buf, p.skew.max_split as u64);
    p.skew.offload.encode(buf);
    put_f64(buf, p.skew.offload_factor);
    p.segment_prune.encode(buf);
}

fn decode_plan(r: &mut WireReader<'_>) -> Result<DistPlan> {
    let expr = decode_gmdj_expr(r)?;
    let base_round = match r.u8()? {
        0 => BaseRound::Distributed,
        1 => BaseRound::LocalOnly,
        2 => BaseRound::Coordinator(Relation::decode(r)?),
        other => return Err(SkallaError::net(format!("invalid base-round tag {other}"))),
    };
    let n = r.varint()? as usize;
    let mut rounds = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        let site_group_reduction = bool::decode(r)?;
        let coord_filters = match r.u8()? {
            0 => None,
            1 => {
                let m = r.varint()? as usize;
                let mut fs = Vec::with_capacity(m.min(256));
                for _ in 0..m {
                    fs.push(decode_expr(r)?);
                }
                Some(fs)
            }
            other => return Err(SkallaError::net(format!("invalid filters byte {other}"))),
        };
        let local_only = bool::decode(r)?;
        rounds.push(RoundSpec {
            site_group_reduction,
            coord_filters,
            local_only,
        });
    }
    let flags = OptFlags {
        coalesce: bool::decode(r)?,
        site_group_reduction: bool::decode(r)?,
        coord_group_reduction: bool::decode(r)?,
        sync_reduction: bool::decode(r)?,
    };
    let block_rows = match r.u8()? {
        0 => None,
        1 => Some(r.varint()? as usize),
        other => return Err(SkallaError::net(format!("invalid block-rows byte {other}"))),
    };
    let site_parallelism = r.varint()? as usize;
    let coord_parallelism = r.varint()? as usize;
    let sync_shards = match r.varint()? as usize {
        0 => None,
        s => Some(s),
    };
    let deadline_s = r.f64()?;
    if !deadline_s.is_finite() || deadline_s < 0.0 {
        return Err(SkallaError::net(format!(
            "invalid retry deadline {deadline_s}"
        )));
    }
    let max_retries = r.varint()? as u32;
    let backoff = r.f64()?;
    if !backoff.is_finite() {
        return Err(SkallaError::net(format!("invalid retry backoff {backoff}")));
    }
    let degraded = match r.u8()? {
        0 => DegradedMode::Fail,
        1 => DegradedMode::Partial,
        2 => DegradedMode::Failover,
        other => {
            return Err(SkallaError::net(format!(
                "invalid degraded-mode tag {other}"
            )))
        }
    };
    let retry = RetryPolicy {
        deadline: std::time::Duration::from_secs_f64(deadline_s),
        max_retries,
        backoff,
        degraded,
    };
    let split = bool::decode(r)?;
    let split_threshold = r.f64()?;
    let max_split = r.varint()? as usize;
    let offload = bool::decode(r)?;
    let offload_factor = r.f64()?;
    if !split_threshold.is_finite() || !offload_factor.is_finite() {
        return Err(SkallaError::net(format!(
            "invalid skew policy knobs {split_threshold}/{offload_factor}"
        )));
    }
    let skew = SkewPolicy {
        split,
        split_threshold,
        max_split,
        offload,
        offload_factor,
    };
    let segment_prune = bool::decode(r)?;
    Ok(DistPlan {
        expr,
        base_round,
        rounds,
        flags,
        block_rows,
        site_parallelism,
        coord_parallelism,
        sync_shards,
        retry,
        skew,
        segment_prune,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema};

    fn example_expr() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::sum(Expr::detail(2), "sum1").unwrap(),
                AggSpec::avg(Expr::detail(2), "avg1").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        let md2 = GmdjOp::with_detail(
            vec![GmdjBlock::new(
                vec![AggSpec::count_star("cnt2")],
                Expr::base(0)
                    .eq(Expr::detail(0))
                    .and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2))))
                    .and(Expr::base(1).in_set([Value::Int(1), Value::str("x")]))
                    .or(Expr::detail(1).is_null().not()),
            )],
            "flow2",
        );
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap()
    }

    fn round_trip(m: &Message) {
        let bytes = m.to_wire();
        let back = Message::from_wire(&bytes).unwrap();
        assert_eq!(&back, m);
    }

    #[test]
    fn plan_round_trips() {
        let mut plan = DistPlan::unoptimized(example_expr());
        plan.rounds[0].site_group_reduction = true;
        plan.rounds[0].coord_filters = Some(vec![
            Expr::base(0).in_set([Value::Int(1), Value::Int(2)]),
            Expr::lit(false),
        ]);
        plan.rounds[0].local_only = true;
        plan.base_round = BaseRound::LocalOnly;
        plan.flags = OptFlags::all();
        plan.block_rows = Some(128);
        plan.site_parallelism = 4;
        plan.coord_parallelism = 3;
        plan.retry = RetryPolicy {
            deadline: std::time::Duration::from_millis(250),
            max_retries: 5,
            backoff: 1.5,
            degraded: DegradedMode::Partial,
        };
        plan.skew = SkewPolicy {
            split: true,
            split_threshold: 1.75,
            max_split: 4,
            offload: true,
            offload_factor: 2.5,
        };
        plan.segment_prune = false;
        round_trip(&Message::Plan(plan));
    }

    #[test]
    fn relation_messages_round_trip() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rel = Relation::new(schema, vec![vec![Value::Int(7)]]).unwrap();
        round_trip(&Message::BaseFragment {
            rel: rel.clone(),
            compute_s: 0.125,
            task: 0,
            sketch: Vec::new(),
        });
        round_trip(&Message::Round {
            op_idx: 3,
            base: rel.clone(),
            parts: None,
            task: 0,
        });
        round_trip(&Message::Round {
            op_idx: 3,
            base: rel.clone(),
            parts: Some(vec![PartFrag::whole(1), PartFrag::whole(3)]),
            task: 2,
        });
        round_trip(&Message::RoundResult {
            op_idx: 3,
            seq: 0,
            h: rel.clone(),
            compute_s: 1.5,
            blocks_compiled: 2,
            blocks_interpreted: 1,
            last: true,
            task: 0,
            sketch: vec![PartSketch {
                part: 1,
                rows: 99,
                heavy: Vec::new(),
            }],
            segments_scanned: 5,
            segments_pruned: 11,
            blocks_verified: 35,
        });
        round_trip(&Message::RoundResult {
            op_idx: 3,
            seq: 17,
            h: rel.clone(),
            compute_s: 0.0,
            blocks_compiled: 0,
            blocks_interpreted: 0,
            last: false,
            task: 1,
            sketch: Vec::new(),
            segments_scanned: 0,
            segments_pruned: 0,
            blocks_verified: 0,
        });
        round_trip(&Message::LocalRun {
            start: 0,
            end: 2,
            base: Some(rel.clone()),
            parts: None,
            task: 0,
        });
        round_trip(&Message::LocalRun {
            start: 0,
            end: 0,
            base: None,
            parts: Some(vec![PartFrag::whole(0)]),
            task: 0,
        });
        round_trip(&Message::LocalRunResult {
            end: 2,
            seq: 1,
            ship: rel.clone(),
            compute_s: 0.0,
            blocks_compiled: 3,
            blocks_interpreted: 0,
            last: true,
            task: 0,
            sketch: Vec::new(),
            segments_scanned: 2,
            segments_pruned: 6,
            blocks_verified: 10,
        });
        round_trip(&Message::ShipAllRequest {
            table: "flow".into(),
        });
        round_trip(&Message::LoadSegments {
            table: "flow__p3".into(),
            path: "/data/site3/flow.seg".into(),
            part: None,
        });
        round_trip(&Message::LoadSegments {
            table: "flow".into(),
            path: "/data/site3/flow.seg".into(),
            part: Some(2),
        });
        round_trip(&Message::SegmentsLoaded { rows: 123_456 });
        round_trip(&Message::ShipAllData {
            rel,
            compute_s: 2.0,
        });
        round_trip(&Message::ComputeBase {
            parts: None,
            task: 0,
        });
        round_trip(&Message::ComputeBase {
            parts: Some(vec![PartFrag::whole(2)]),
            task: 0,
        });
        round_trip(&Message::Shutdown);
        round_trip(&Message::Error {
            msg: "boom".into(),
            corrupt: false,
        });
        round_trip(&Message::Error {
            msg: "segment corrupt: bad crc".into(),
            corrupt: true,
        });
        round_trip(&Message::ScrubRequest);
        round_trip(&Message::ScrubReport {
            entries: vec![
                ScrubEntry {
                    table: "flow__p0".into(),
                    path: "/data/site0/flow.seg".into(),
                    blocks: 40,
                    error: None,
                },
                ScrubEntry {
                    table: "flow__p1".into(),
                    path: "/data/site0/flow1.seg".into(),
                    blocks: 12,
                    error: Some("chunk checksum mismatch".into()),
                },
            ],
        });
        round_trip(&Message::ScrubReport {
            entries: Vec::new(),
        });
    }

    #[test]
    fn sketch_and_range_frames_round_trip() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rel = Relation::new(schema, vec![vec![Value::Int(7)]]).unwrap();
        // Row-range fragments of a split hot partition.
        round_trip(&Message::ComputeBase {
            parts: Some(vec![
                PartFrag {
                    part: 5,
                    frag: 0,
                    of: 4,
                },
                PartFrag {
                    part: 5,
                    frag: 3,
                    of: 4,
                },
                PartFrag::whole(2),
            ]),
            task: 7,
        });
        // Heavy-hitter sketches on a base reply.
        round_trip(&Message::BaseFragment {
            rel,
            compute_s: 0.5,
            task: 3,
            sketch: vec![
                PartSketch {
                    part: 0,
                    rows: 1_000_000,
                    heavy: vec![(0xdead_beef, 750_000), (17, 1_000)],
                },
                PartSketch {
                    part: 9,
                    rows: 42,
                    heavy: Vec::new(),
                },
            ],
        });
        // Degenerate fragments are rejected at decode time.
        for bad in [
            PartFrag {
                part: 1,
                frag: 0,
                of: 0,
            },
            PartFrag {
                part: 1,
                frag: 2,
                of: 2,
            },
        ] {
            let mut buf = BytesMut::new();
            encode_part_frag(&bad, &mut buf);
            let mut r = WireReader::new(&buf);
            assert!(decode_part_frag(&mut r).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn coordinator_base_round_trips() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rel = Relation::new(schema, vec![vec![Value::Int(1)]]).unwrap();
        let e = GmdjExpr::new(
            BaseSpec::Relation(rel.clone()),
            "flow",
            vec![GmdjOp::new(vec![GmdjBlock::new(
                vec![AggSpec::count_star("c")],
                Expr::base(0).eq(Expr::detail(0)),
            )])],
            vec![0],
        )
        .unwrap();
        let plan = DistPlan::unoptimized(e);
        round_trip(&Message::Plan(plan));
    }

    #[test]
    fn expr_kinds_round_trip() {
        let exprs = [
            Expr::lit(1)
                .add(Expr::lit(2.5))
                .sub(Expr::lit(3))
                .mul(Expr::lit(4)),
            Expr::base(0).div(Expr::detail(1)).rem(Expr::lit(7)),
            Expr::base(0)
                .ne(Expr::lit(1))
                .or(Expr::base(1).le(Expr::lit(2))),
            Expr::base(2)
                .ge(Expr::lit(0))
                .and(Expr::base(2).lt(Expr::lit(9))),
            Expr::lit("s").eq(Expr::detail(0)),
            Expr::base(0).neg().is_null(),
            Expr::lit(true).not(),
            Expr::detail(3).in_set([Value::Null, Value::Bool(true), Value::Float(1.5)]),
        ];
        for e in &exprs {
            let mut buf = BytesMut::new();
            encode_expr(e, &mut buf);
            let mut r = WireReader::new(&buf);
            let back = decode_expr(&mut r).unwrap();
            assert!(r.is_empty());
            assert_eq!(&back, e);
        }
    }

    #[test]
    fn frame_prefix_round_trips() {
        let m = Message::ComputeBase {
            parts: None,
            task: 0,
        };
        let bytes = m.to_wire_framed(42, 7);
        let (e, round, back) = Message::from_wire_framed(&bytes).unwrap();
        assert_eq!(e, 42);
        assert_eq!(round, 7);
        assert_eq!(back, m);
        assert!(Message::from_wire_framed(&[]).is_err());
        // A frame without a message body is rejected.
        assert!(Message::from_wire_framed(&[42]).is_err());
    }

    #[test]
    fn corrupt_messages_rejected() {
        assert!(Message::from_wire(&[200]).is_err());
        assert!(Message::from_wire(&[]).is_err());
        // Valid message + trailing garbage.
        let mut bytes = Message::ComputeBase {
            parts: None,
            task: 0,
        }
        .to_wire()
        .to_vec();
        bytes.push(0);
        assert!(Message::from_wire(&bytes).is_err());
        // Truncated plan.
        let plan_bytes = Message::Plan(DistPlan::unoptimized(example_expr())).to_wire();
        assert!(Message::from_wire(&plan_bytes[..plan_bytes.len() / 2]).is_err());
    }
}
