//! Sharded, pipelined synchronization (the parallel Theorem 1 path).
//!
//! The serial [`BaseResult`](crate::baseresult::BaseResult) synchronizes
//! O(|H|) but on one thread, re-hashing a freshly allocated `Vec<Value>`
//! key per fragment row. At coordinator-bound scale (many groups × many
//! sites) that merge loop *is* the response time. [`ShardedSync`]
//! parallelizes it the way morsel-driven engines partition aggregation:
//!
//! * the group space is hash-partitioned into `shards` (a power of two)
//!   disjoint shards by a key hash computed **once** per row;
//! * each of `workers` merge threads **owns a fixed contiguous shard
//!   range** — the router sends a routed row straight to its owner's
//!   bounded queue, so a row crosses exactly one thread boundary and no
//!   worker ever touches another worker's shards;
//! * the router ships **row locators, not row values**: a batch carries
//!   `Arc` references to the fragment chunks plus `(hash, chunk, row)`
//!   coordinates per shard, so the router thread never moves or frees a
//!   `Value` and stays far off the critical path;
//! * batch sizes grow **adaptively under backpressure**: when a worker's
//!   queue is full the router keeps accumulating (up to
//!   [`SyncOptions::flush_rows_max`]) instead of blocking, so saturated
//!   mergers receive fewer, larger batches;
//! * per-group state lives in typed [`AggSlot`] columns, and workers merge
//!   whole batches at a time through [`AggSlot::merge_rows`] — the same
//!   lane-style kernels (`skalla-expr` typed lanes with null masks) the
//!   compiled site path uses, not a scalar `Value` match per row.
//!
//! **Determinism.** The merge is not idempotent and float addition is not
//! commutative-associative in bits, so the engine must replay exactly the
//! serial merge order *within each group*. Every fragment row has a global
//! arrival index (derived from its chunk's base index, never stored per
//! row); the router routes rows in arrival order and each shard therefore
//! sees its rows as a subsequence of the serial order, so a group — which
//! lives in exactly one shard — merges bit-for-bit identically (including
//! float `AVG` state and `-0.0`). Group *creation* arrival indices are
//! recorded, and the output is assembled by a **merge tree**: each worker
//! k-way-merges its shards' creation-ordered groups into one sorted run
//! (rendering final values as it goes), and [`ShardedSync::finish`]
//! k-way-merges the per-worker runs. Both levels preserve creation order,
//! which reproduces the serial structure's insertion order exactly.
//!
//! **All-or-nothing fragments.** Each chunk is validated (arity and state
//! column types) on the router thread *before* any row is routed, so a bad
//! fragment is rejected synchronously without mutating any shard or any
//! pending batch — the same guarantee the serial `merge_fragment`
//! provides.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use skalla_gmdj::{slots_for_specs, AggSlot, AggSpec, MergeScratch};
use skalla_types::{exact_i64, DataType, Field, Relation, Result, Row, Schema, SkallaError, Value};

/// Per-thread CPU seconds (monotonic within a thread).
///
/// Stage timings ([`SyncStats::partition_s`], worker busy, finalize) must
/// stay meaningful on hosts with fewer cores than pipeline threads, where
/// a wall clock silently charges one stage for time the OS spent running
/// another. On Linux/x86_64 this reads `CLOCK_THREAD_CPUTIME_ID` via a
/// raw `clock_gettime` syscall (std exposes no thread CPU clock and the
/// engine takes no libc dependency); elsewhere it falls back to a
/// per-thread wall clock and the stage timings become upper bounds under
/// contention.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) fn thread_cpu_s() -> f64 {
    const SYS_CLOCK_GETTIME: u64 = 228;
    const CLOCK_THREAD_CPUTIME_ID: u64 = 3;
    let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => _,
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ts[0] as f64 + ts[1] as f64 * 1e-9
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub(crate) fn thread_cpu_s() -> f64 {
    thread_local! {
        static ANCHOR: Instant = Instant::now();
    }
    ANCHOR.with(|t| t.elapsed().as_secs_f64())
}

/// What [`ShardedSync::finish`] renders per group after the base columns.
#[derive(Debug, Clone)]
pub enum SyncOutput {
    /// Finalized aggregate outputs (the coordinator's `B_k`), under these
    /// fields.
    Finalized(Vec<Field>),
    /// Raw sub-aggregate state columns (the mid-tier ship format of
    /// `BaseResult::to_state_relation`).
    State,
}

/// The shape of one synchronization: schema, key, aggregates, and mode.
#[derive(Debug, Clone)]
pub struct SyncSpec {
    /// Base-part schema of fragment rows.
    pub base_schema: Arc<Schema>,
    /// Key column indices within the base part.
    pub key_cols: Vec<usize>,
    /// The segment's flattened aggregates, in fragment column order.
    pub specs: Vec<AggSpec>,
    /// Declared state column types, flattened across `specs`.
    pub state_types: Vec<DataType>,
    /// What to render at the end.
    pub output: SyncOutput,
    /// Proposition 2 mode: insert unknown groups instead of erroring.
    pub allow_new: bool,
}

/// Parallelism knobs for a [`ShardedSync`].
#[derive(Debug, Clone, Copy)]
pub struct SyncOptions {
    /// Merge worker threads (≥ 1, clamped to the shard count).
    pub workers: usize,
    /// Hash shards of the group space, rounded up to a power of two so the
    /// router can mask instead of divide. Each worker owns a fixed
    /// contiguous range of shards.
    pub shards: usize,
    /// Bounded depth (in routed batches) of each worker's queue — the
    /// backpressure signal that drives adaptive batch growth.
    pub queue_batches: usize,
    /// Router-side accumulation floor: rows buffered per worker before the
    /// router first attempts to push a batch. Smaller values start the
    /// route/merge overlap earlier.
    pub flush_rows: usize,
    /// Adaptive ceiling: under backpressure (owner's queue full) the
    /// router doubles a worker's batch target instead of blocking, up to
    /// this many rows; past it the router blocks, which is the memory
    /// bound.
    pub flush_rows_max: usize,
}

impl SyncOptions {
    /// Sensible defaults for `workers` threads: one shard per worker
    /// (rounded to a power of two), a short queue, and batches that grow
    /// from ~4k to ~64k rows under backpressure.
    ///
    /// One shard per worker is deliberate: a worker walks each batch's
    /// shared chunk memory once per owned shard, at a stride of the total
    /// shard count, so extra shards per worker multiply cache re-walks
    /// without adding balance — uniform hashing already spreads rows
    /// binomially, and because ownership is *contiguous*, hash-space skew
    /// lands on the same worker no matter how finely its range is split.
    /// Raise [`SyncOptions::with_shards`] only to decouple partition
    /// granularity from the worker count (e.g. to replay a plan's shard
    /// layout).
    pub fn for_workers(workers: usize) -> SyncOptions {
        let w = workers.max(1);
        SyncOptions {
            workers: w,
            shards: w.next_power_of_two(),
            queue_batches: 4,
            flush_rows: 4096,
            flush_rows_max: 65536,
        }
    }

    /// Override the shard count (rounded up to a power of two ≥ 1).
    pub fn with_shards(mut self, shards: usize) -> SyncOptions {
        self.shards = shards.max(1);
        self
    }
}

/// Timing breakdown of one sharded synchronization.
///
/// The per-stage timings (`partition_s`, `worker_busy_s`, `finalize_s`)
/// are **thread CPU seconds** where the platform provides a thread CPU
/// clock (Linux), so they measure work actually executed and stay
/// comparable across worker counts even on hosts with fewer cores than
/// pipeline threads; `wall_s` and `drain_s` are wall-clock.
#[derive(Debug, Clone, Default)]
pub struct SyncStats {
    /// Router CPU seconds: validation, key hashing, and locator routing.
    pub partition_s: f64,
    /// Summed busy merge CPU seconds across workers (total work performed).
    pub merge_busy_s: f64,
    /// Per-worker busy merge CPU seconds (`merge_busy_s` is their sum);
    /// the spread is the skew a perfect hash partition would avoid.
    pub worker_busy_s: Vec<f64>,
    /// Finalize CPU seconds: slowest worker's render-merge plus the final
    /// merge of per-worker runs.
    pub finalize_s: f64,
    /// Serialized tail of [`ShardedSync::finish`]: closing the queues to
    /// the ordered result (the only part not overlapped with receive).
    pub drain_s: f64,
    /// Engine lifetime seconds (construction to finish).
    pub wall_s: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Shards used.
    pub shards: usize,
    /// Groups in the result.
    pub groups: usize,
    /// Batches shipped to workers (adaptive growth makes this shrink under
    /// backpressure).
    pub batches: u64,
}

impl SyncStats {
    /// Fraction of the worker pool's capacity spent merging over the
    /// engine's lifetime (1.0 = every worker busy the whole time).
    pub fn utilization(&self) -> f64 {
        if self.wall_s <= 0.0 || self.workers == 0 {
            0.0
        } else {
            (self.merge_busy_s / (self.workers as f64 * self.wall_s)).min(1.0)
        }
    }

    /// The busiest worker's merge seconds.
    pub fn max_worker_busy_s(&self) -> f64 {
        self.worker_busy_s.iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Load imbalance across workers: busiest / mean busy seconds
    /// (1.0 = perfectly balanced hash partition).
    pub fn imbalance(&self) -> f64 {
        if self.worker_busy_s.is_empty() || self.merge_busy_s <= 0.0 {
            return 1.0;
        }
        self.max_worker_busy_s() * self.worker_busy_s.len() as f64 / self.merge_busy_s
    }

    /// The pipeline's critical-path seconds if every stage ran on its own
    /// core: the router and the busiest worker overlap (the slower of the
    /// two bounds), then the finalize merge tree runs. On hosts with fewer
    /// cores than `workers + 1` the measured wall time degenerates toward
    /// the *sum* of the stages instead; this model is what the stage
    /// timings imply for a host that can actually express the parallelism.
    pub fn modeled_parallel_s(&self) -> f64 {
        self.partition_s.max(self.max_worker_busy_s()) + self.finalize_s
    }
}

/// A fragment chunk shared with the workers by reference, plus the global
/// arrival index of its row 0 (row `i`'s arrival is `base_arrival + i`).
struct ChunkRef {
    rel: Arc<Relation>,
    base_arrival: u64,
}

/// One shard's routed row locators: the key hash (computed once, on the
/// router) and a packed `(chunk slot << 32) | row index` coordinate into
/// the batch's chunk list. No row values travel through the channel.
#[derive(Default)]
struct Bucket {
    hashes: Vec<u64>,
    locs: Vec<u64>,
}

/// One batch on a worker's queue: the referenced chunks plus per-shard
/// locator buckets (indexed by the worker's local shard index).
struct WorkerBatch {
    chunks: Vec<ChunkRef>,
    buckets: Vec<Bucket>,
    rows: usize,
}

/// Router-side accumulation state for one worker.
struct Pending {
    chunks: Vec<ChunkRef>,
    buckets: Vec<Bucket>,
    rows: usize,
    /// Current adaptive flush threshold (rows).
    target: usize,
    /// This worker's slot in `chunks` for the chunk currently being
    /// routed, lazily assigned on its first row for this worker.
    chunk_slot: Option<u32>,
}

impl Pending {
    fn take_batch(&mut self) -> WorkerBatch {
        let rows = self.rows;
        self.rows = 0;
        self.chunk_slot = None;
        WorkerBatch {
            chunks: std::mem::take(&mut self.chunks),
            buckets: self.buckets.iter_mut().map(std::mem::take).collect(),
            rows,
        }
    }

    fn put_back(&mut self, b: WorkerBatch) {
        self.chunks = b.chunks;
        self.buckets = b.buckets;
        self.rows = b.rows;
        // `chunk_slot` stays `None`: the next chunk re-registers itself
        // (at worst one duplicate `Arc` per put-back, which is harmless).
    }
}

/// Per-state-column validation, flattened for the router's hot loop —
/// semantically identical to chaining [`AggSlot::validate_incoming`]
/// across the slots.
#[derive(Debug, Clone, Copy)]
enum ColCheck {
    /// Non-null `Int` (`COUNT`, and the count component of `AVG`).
    IntStrict,
    /// `Int` or `NULL`.
    IntOpt,
    /// `Float` or `NULL`.
    FloatOpt,
    /// Anything (`MIN`/`MAX` over non-numeric values).
    Any,
}

impl ColCheck {
    /// The flattened per-column checks for one slot's state columns.
    fn for_slot(slot: &AggSlot) -> Vec<ColCheck> {
        match slot {
            AggSlot::Count { .. } => vec![ColCheck::IntStrict],
            AggSlot::SumI { .. } | AggSlot::MinMaxI { .. } => vec![ColCheck::IntOpt],
            AggSlot::SumF { .. } | AggSlot::MinMaxF { .. } => vec![ColCheck::FloatOpt],
            AggSlot::AvgI { .. } => vec![ColCheck::IntOpt, ColCheck::IntStrict],
            AggSlot::AvgF { .. } => vec![ColCheck::FloatOpt, ColCheck::IntStrict],
            AggSlot::MinMaxV { .. } => vec![ColCheck::Any],
        }
    }

    #[inline]
    fn check(self, v: &Value) -> Result<()> {
        let want = match (self, v) {
            (ColCheck::IntStrict, Value::Int(_)) => return Ok(()),
            (ColCheck::IntOpt, Value::Int(_) | Value::Null) => return Ok(()),
            (ColCheck::FloatOpt, Value::Float(_) | Value::Null) => return Ok(()),
            (ColCheck::Any, _) => return Ok(()),
            (ColCheck::IntStrict, _) => "Int count",
            (ColCheck::IntOpt, _) => "Int or NULL",
            (ColCheck::FloatOpt, _) => "Float or NULL",
        };
        Err(SkallaError::type_error(format!(
            "fragment state column: expected {want}, got {v}"
        )))
    }
}

/// What each worker hands back when its queue closes.
struct WorkerOut {
    /// `(creation arrival index, rendered row)` sorted by the index — one
    /// pre-merged run of the output merge tree.
    rendered: Vec<(u64, Row)>,
    merge_busy_s: f64,
    finalize_s: f64,
    groups: usize,
}

/// The sharded synchronization engine. Feed chunks with
/// [`ShardedSync::merge_chunk`] as they arrive, then call
/// [`ShardedSync::finish`].
pub struct ShardedSync {
    base_schema: Arc<Schema>,
    base_width: usize,
    state_width: usize,
    key_cols: Arc<Vec<usize>>,
    /// Flattened per-state-column checks used for router-side validation.
    checks: Vec<ColCheck>,
    spec_widths: Vec<usize>,
    state_types: Vec<DataType>,
    output: SyncOutput,
    workers: usize,
    shards: usize,
    /// `shards - 1` (the shard count is always a power of two).
    shard_mask: u64,
    /// Shard → owning worker (contiguous ranges).
    owner_of: Vec<u32>,
    /// Shard → index within its owner's shard set.
    local_of: Vec<u32>,
    flush_rows: usize,
    flush_rows_max: usize,
    /// Per-worker accumulating batches.
    pending: Vec<Pending>,
    /// Reusable per-chunk key-hash buffer (filled by the validate pass so
    /// the route pass never re-reads row memory).
    hash_scratch: Vec<u64>,
    txs: Vec<SyncSender<WorkerBatch>>,
    handles: Vec<JoinHandle<Result<WorkerOut>>>,
    poisoned: Arc<AtomicBool>,
    first_err: Arc<Mutex<Option<SkallaError>>>,
    arrival: u64,
    rows_merged: u64,
    partition_s: f64,
    batches: u64,
    started: Instant,
}

impl ShardedSync {
    /// Build the engine, optionally seeding groups from a synchronized
    /// base relation (every aggregate at its identity state, duplicate
    /// base rows collapsing to one group — exactly
    /// `BaseResult::from_base`).
    pub fn new(spec: SyncSpec, seed: Option<&Relation>, opts: SyncOptions) -> Result<ShardedSync> {
        let SyncSpec {
            base_schema,
            key_cols,
            specs,
            state_types,
            output,
            allow_new,
        } = spec;
        let base_width = base_schema.len();
        for &c in &key_cols {
            if c >= base_width {
                return Err(SkallaError::plan(format!(
                    "key column {c} out of range for base width {base_width}"
                )));
            }
        }
        let proto = slots_for_specs(&specs, &state_types)?;
        let checks: Vec<ColCheck> = proto.iter().flat_map(ColCheck::for_slot).collect();
        let spec_widths: Vec<usize> = specs.iter().map(AggSpec::state_width).collect();
        let state_width: usize = spec_widths.iter().sum();
        let shards = opts.shards.max(1).next_power_of_two();
        let workers = opts.workers.max(1).min(shards);
        let shard_mask = shards as u64 - 1;
        let key_cols = Arc::new(key_cols);

        // Fixed ownership: worker `w` owns the contiguous shard range
        // `[w·S/W, (w+1)·S/W)` (sizes differ by at most one shard).
        let mut owner_of = Vec::with_capacity(shards);
        let mut local_of = Vec::with_capacity(shards);
        let mut owned = vec![0u32; workers];
        for s in 0..shards {
            let w = s * workers / shards;
            owner_of.push(w as u32);
            local_of.push(owned[w]);
            owned[w] += 1;
        }

        // Seed the shards on this thread: creation indices 0..n reproduce
        // the serial insertion order of the base rows. Per-shard creation
        // vectors stay sorted because arrivals only grow.
        let mut all_shards: Vec<Shard> = (0..shards).map(|_| Shard::new(&proto)).collect();
        let mut arrival = 0u64;
        if let Some(base) = seed {
            if base.schema().len() != base_width {
                return Err(SkallaError::exec(format!(
                    "group row has {} columns, base schema has {}",
                    base.schema().len(),
                    base_width
                )));
            }
            for row in base.rows() {
                let hash = hash_key(row, &key_cols);
                let shard = &mut all_shards[(hash & shard_mask) as usize];
                shard.seed_group(hash, row, &key_cols, arrival);
                arrival += 1;
            }
        }

        // Hand each worker its owned shard range and a bounded queue.
        let mut per_worker: Vec<Vec<Shard>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, shard) in all_shards.into_iter().enumerate() {
            per_worker[owner_of[s] as usize].push(shard);
        }
        let poisoned = Arc::new(AtomicBool::new(false));
        let first_err = Arc::new(Mutex::new(None));
        let render_state = matches!(output, SyncOutput::State);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut pending = Vec::with_capacity(workers);
        for shard_set in per_worker {
            let (tx, rx) = sync_channel::<WorkerBatch>(opts.queue_batches.max(1));
            txs.push(tx);
            pending.push(Pending {
                chunks: Vec::new(),
                buckets: (0..shard_set.len()).map(|_| Bucket::default()).collect(),
                rows: 0,
                target: opts.flush_rows.max(1),
                chunk_slot: None,
            });
            let ctx = WorkerCtx {
                rx,
                shards: shard_set,
                base_width,
                state_width,
                key_cols: key_cols.clone(),
                allow_new,
                render_state,
            };
            let poisoned = poisoned.clone();
            let first_err = first_err.clone();
            handles.push(std::thread::spawn(move || {
                let res = run_worker(ctx);
                if let Err(e) = &res {
                    poisoned.store(true, Ordering::Release);
                    first_err
                        .lock()
                        .expect("sync error slot")
                        .get_or_insert(e.clone());
                }
                res
            }));
        }
        Ok(ShardedSync {
            base_schema,
            base_width,
            state_width,
            key_cols,
            checks,
            spec_widths,
            state_types,
            output,
            workers,
            shards,
            shard_mask,
            owner_of,
            local_of,
            flush_rows: opts.flush_rows.max(1),
            flush_rows_max: opts.flush_rows_max.max(opts.flush_rows.max(1)),
            pending,
            hash_scratch: Vec::new(),
            txs,
            handles,
            poisoned,
            first_err,
            arrival,
            rows_merged: 0,
            partition_s: 0.0,
            batches: 0,
            started: Instant::now(),
        })
    }

    /// Validate, hash, and route one fragment chunk to its owning workers.
    /// A rejected chunk (arity or state-type mismatch) leaves the engine
    /// exactly as if the chunk never arrived: validation runs to
    /// completion *before* the first row is routed, so nothing — pending
    /// batch, arrival counter, shard — is ever touched by a bad chunk.
    pub fn merge_chunk(&mut self, frag: Relation) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(self.stored_error());
        }
        let t = thread_cpu_s();
        let expect = self.base_width + self.state_width;
        if frag.schema().len() != expect {
            return Err(SkallaError::exec(format!(
                "fragment has {} columns, expected {} (base {} + state {})",
                frag.schema().len(),
                expect,
                self.base_width,
                self.state_width
            )));
        }
        let n = frag.len();
        if n == 0 {
            self.partition_s += thread_cpu_s() - t;
            return Ok(());
        }
        // Pass 1: validate every row (synchronous all-or-nothing
        // rejection, before anything is mutated) and hash its key while
        // the row is hot — the hash buffer is scratch, so an error here
        // still leaves the engine untouched. On large chunks with idle
        // merge capacity the pass splits across the chunk halves: the
        // router keeps the lower half (its CPU stays in `partition_s`)
        // while a scoped helper runs the upper half, and the lower half's
        // error is reported first so the surfaced row matches a serial
        // scan's earliest failure half.
        self.hash_scratch.clear();
        self.hash_scratch.resize(n, 0);
        let rows = frag.rows();
        if self.workers > 1 && n >= PAR_VALIDATE_MIN_ROWS {
            let mid = n / 2;
            let (lo_out, hi_out) = self.hash_scratch.split_at_mut(mid);
            let (base_width, checks, key_cols) = (self.base_width, &self.checks, &*self.key_cols);
            let (lo, hi) = std::thread::scope(|s| {
                let hi = s.spawn(move || {
                    validate_and_hash(&rows[mid..], base_width, checks, key_cols, hi_out)
                });
                let lo = validate_and_hash(&rows[..mid], base_width, checks, key_cols, lo_out);
                (lo, hi.join().expect("validate half"))
            });
            lo?;
            hi?;
        } else {
            validate_and_hash(
                rows,
                self.base_width,
                &self.checks,
                &self.key_cols,
                &mut self.hash_scratch,
            )?;
        }
        // Pass 2: route a locator per row to its shard's owner, straight
        // off the precomputed hashes — no row memory is touched. The chunk
        // itself is shared by reference; row values never move.
        let chunk = Arc::new(frag);
        let base_arrival = self.arrival;
        for p in &mut self.pending {
            p.chunk_slot = None;
        }
        for (i, &hash) in self.hash_scratch.iter().enumerate() {
            let shard = (hash & self.shard_mask) as usize;
            let p = &mut self.pending[self.owner_of[shard] as usize];
            let slot = match p.chunk_slot {
                Some(s) => s,
                None => {
                    let s = p.chunks.len() as u32;
                    p.chunks.push(ChunkRef {
                        rel: chunk.clone(),
                        base_arrival,
                    });
                    p.chunk_slot = Some(s);
                    s
                }
            };
            let bucket = &mut p.buckets[self.local_of[shard] as usize];
            bucket.hashes.push(hash);
            bucket.locs.push((u64::from(slot) << 32) | i as u64);
            p.rows += 1;
        }
        self.arrival += n as u64;
        self.rows_merged += n as u64;
        self.partition_s += thread_cpu_s() - t;
        // Sends sit outside the timer: a full queue is backpressure (the
        // mergers are saturated), not router compute.
        for w in 0..self.workers {
            if self.pending[w].rows >= self.pending[w].target {
                self.flush_worker(w)?;
            }
        }
        Ok(())
    }

    /// Try to push worker `w`'s accumulated batch. A full queue grows the
    /// adaptive target (the router keeps accumulating) until the ceiling,
    /// past which the router blocks — the memory bound.
    fn flush_worker(&mut self, w: usize) -> Result<()> {
        let batch = self.pending[w].take_batch();
        if batch.rows == 0 {
            return Ok(());
        }
        let rows = batch.rows;
        match self.txs[w].try_send(batch) {
            Ok(()) => {
                self.batches += 1;
                // Queue had room: decay toward the floor so batch sizes
                // track the mergers' actual drain rate.
                let p = &mut self.pending[w];
                p.target = (p.target * 3 / 4).max(self.flush_rows);
                Ok(())
            }
            Err(TrySendError::Full(b)) => {
                let p = &mut self.pending[w];
                if rows < self.flush_rows_max {
                    p.put_back(b);
                    p.target = (p.target * 2).min(self.flush_rows_max);
                    Ok(())
                } else if self.txs[w].send(b).is_ok() {
                    self.batches += 1;
                    Ok(())
                } else {
                    Err(self.stored_error())
                }
            }
            Err(TrySendError::Disconnected(_)) => Err(self.stored_error()),
        }
    }

    /// Close the queues, join the workers, and merge the per-worker
    /// creation-ordered runs into the synchronized relation — exactly the
    /// serial insertion order.
    pub fn finish(mut self) -> Result<(Relation, SyncStats)> {
        let t_drain = Instant::now();
        // Flush whatever the accumulators still hold, ignoring send errors
        // here — a dead worker's own error is picked up after the join.
        for w in 0..self.workers {
            let batch = self.pending[w].take_batch();
            if batch.rows > 0 && self.txs[w].send(batch).is_ok() {
                self.batches += 1;
            }
        }
        self.txs.clear(); // closes every queue
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(self.handles.len());
        let mut join_err: Option<SkallaError> = None;
        for h in self.handles.drain(..) {
            match h.join() {
                Ok(Ok(o)) => outs.push(o),
                Ok(Err(e)) => {
                    join_err.get_or_insert(e);
                }
                Err(_) => {
                    join_err.get_or_insert(SkallaError::exec("sync worker panicked"));
                }
            }
        }
        if let Some(e) = self.first_err.lock().expect("sync error slot").take() {
            return Err(e);
        }
        if let Some(e) = join_err {
            return Err(e);
        }

        let t_order = thread_cpu_s();
        let groups: usize = outs.iter().map(|o| o.groups).sum();
        let worker_busy_s: Vec<f64> = outs.iter().map(|o| o.merge_busy_s).collect();
        let runs: Vec<Vec<(u64, Row)>> = outs
            .iter_mut()
            .map(|o| std::mem::take(&mut o.rendered))
            .collect();
        let rows = merge_runs(runs, groups);

        let mut fields = self.base_schema.fields().to_vec();
        match &self.output {
            SyncOutput::Finalized(out_fields) => fields.extend(out_fields.iter().cloned()),
            SyncOutput::State => {
                // Same placeholder names as `to_state_relation`, but with
                // the real declared state types.
                let mut off = 0;
                for (i, &w) in self.spec_widths.iter().enumerate() {
                    for j in 0..w {
                        fields.push(Field::new(
                            format!("__state_{i}_{j}"),
                            self.state_types[off + j],
                        ));
                    }
                    off += w;
                }
            }
        }
        let schema = Arc::new(Schema::new(fields)?);
        let rel = Relation::from_rows_unchecked(schema, rows);
        let order_s = thread_cpu_s() - t_order;

        let stats = SyncStats {
            partition_s: self.partition_s,
            merge_busy_s: worker_busy_s.iter().sum(),
            worker_busy_s,
            finalize_s: outs.iter().map(|o| o.finalize_s).fold(0.0, f64::max) + order_s,
            drain_s: t_drain.elapsed().as_secs_f64(),
            wall_s: self.started.elapsed().as_secs_f64(),
            workers: self.workers,
            shards: self.shards,
            groups,
            batches: self.batches,
        };
        Ok((rel, stats))
    }

    /// Rows routed so far (excludes seeded base rows).
    pub fn rows_merged(&self) -> u64 {
        self.rows_merged
    }

    fn stored_error(&self) -> SkallaError {
        self.first_err
            .lock()
            .expect("sync error slot")
            .take()
            .unwrap_or_else(|| SkallaError::exec("sync worker terminated"))
    }
}

/// Chunk-row floor below which splitting the validate+hash pass across
/// threads costs more (thread hand-off, cache sharing) than it saves.
const PAR_VALIDATE_MIN_ROWS: usize = 1024;

/// The fused Pass-1 kernel of [`ShardedSync::merge_chunk`] over one slice
/// of a chunk's rows: validate every state column and record each row's
/// key hash in `out` (which must be `rows.len()` long). Runs on the router
/// thread, and on a scoped helper for the upper half of large chunks.
fn validate_and_hash(
    rows: &[Row],
    base_width: usize,
    checks: &[ColCheck],
    key_cols: &[usize],
    out: &mut [u64],
) -> Result<()> {
    debug_assert_eq!(rows.len(), out.len());
    for (row, h) in rows.iter().zip(out.iter_mut()) {
        for (v, c) in row[base_width..].iter().zip(checks) {
            c.check(v)?;
        }
        *h = hash_key(row, key_cols);
    }
    Ok(())
}

/// Top level of the output merge tree: k-way merge of the per-worker
/// creation-ordered runs (creation indices are globally unique).
fn merge_runs(runs: Vec<Vec<(u64, Row)>>, total: usize) -> Vec<Row> {
    let mut nonempty: Vec<Vec<(u64, Row)>> = runs.into_iter().filter(|r| !r.is_empty()).collect();
    if nonempty.len() <= 1 {
        return nonempty
            .pop()
            .unwrap_or_default()
            .into_iter()
            .map(|(_, row)| row)
            .collect();
    }
    let mut iters: Vec<std::vec::IntoIter<(u64, Row)>> =
        nonempty.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<Row>> = Vec::with_capacity(iters.len());
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        let (c, row) = it.next().expect("non-empty run");
        heap.push(Reverse((c, i)));
        heads.push(Some(row));
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, i))) = heap.pop() {
        out.push(heads[i].take().expect("run head"));
        if let Some((c, row)) = iters[i].next() {
            heap.push(Reverse((c, i)));
            heads[i] = Some(row);
        }
    }
    out
}

struct WorkerCtx {
    rx: Receiver<WorkerBatch>,
    /// This worker's owned shards, densely indexed by local shard index.
    shards: Vec<Shard>,
    base_width: usize,
    state_width: usize,
    key_cols: Arc<Vec<usize>>,
    allow_new: bool,
    render_state: bool,
}

fn run_worker(ctx: WorkerCtx) -> Result<WorkerOut> {
    let WorkerCtx {
        rx,
        mut shards,
        base_width,
        state_width,
        key_cols,
        allow_new,
        render_state,
    } = ctx;
    let mut busy = 0.0f64;
    let mut gids: Vec<u32> = Vec::new();
    // One typed scratch per slot, with each slot's state offset within a
    // fragment row: the resolve pass gathers every slot's lanes in its one
    // pass over the (scattered) chunk rows, then the merge kernels sweep
    // contiguous typed memory.
    let (offs, mut scratches): (Vec<usize>, Vec<MergeScratch>) = {
        let slots = &shards.first().expect("worker owns >= 1 shard").slots;
        let mut offs = Vec::with_capacity(slots.len());
        let mut off = base_width;
        for slot in slots {
            offs.push(off);
            off += slot.state_width();
        }
        debug_assert_eq!(off, base_width + state_width);
        (
            offs,
            slots.iter().map(|_| MergeScratch::default()).collect(),
        )
    };
    while let Ok(batch) = rx.recv() {
        let t = thread_cpu_s();
        for (local, bucket) in batch.buckets.iter().enumerate() {
            if bucket.hashes.is_empty() {
                continue;
            }
            let shard = &mut shards[local];
            gids.clear();
            scratches.iter_mut().for_each(MergeScratch::clear);
            // Resolve + gather pass: probe/create each row's group
            // (creation order is bucket order, which is arrival order) and
            // columnarize its state while the row is hot.
            #[cfg_attr(not(target_arch = "x86_64"), allow(unused_variables))]
            for (k, (&hash, &loc)) in bucket.hashes.iter().zip(&bucket.locs).enumerate() {
                // The locators make the access pattern visible ahead of
                // time: start pulling a future row's cache lines now so
                // the scattered dereference below doesn't stall.
                #[cfg(target_arch = "x86_64")]
                if let Some(&loc) = bucket.locs.get(k + 8) {
                    let chunk = &batch.chunks[(loc >> 32) as usize];
                    let ri = (loc & 0xffff_ffff) as usize;
                    let p = chunk.rel.rows()[ri].as_ptr();
                    unsafe {
                        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                        _mm_prefetch::<_MM_HINT_T0>(p.cast::<i8>());
                    }
                    shard.table.prefetch(bucket.hashes[k + 8]);
                }
                let chunk = &batch.chunks[(loc >> 32) as usize];
                let ri = (loc & 0xffff_ffff) as usize;
                let row: &[Value] = &chunk.rel.rows()[ri];
                let g = shard.resolve(
                    hash,
                    chunk.base_arrival + ri as u64,
                    row,
                    base_width,
                    &key_cols,
                    allow_new,
                )?;
                gids.push(g as u32);
                for (j, slot) in shard.slots.iter().enumerate() {
                    slot.gather_into(row, offs[j], &mut scratches[j]);
                }
            }
            // Merge pass: whole-bucket lane kernels per slot.
            for (slot, scratch) in shard.slots.iter_mut().zip(&scratches) {
                slot.merge_gathered(&gids, scratch)?;
            }
        }
        busy += thread_cpu_s() - t;
    }
    // Bottom level of the output merge tree: k-way merge of this worker's
    // shards (each shard's `created` is sorted by construction), rendering
    // output rows as they are emitted — one sorted run, no sort.
    let t = thread_cpu_s();
    let groups: usize = shards.iter().map(|s| s.rows.len()).sum();
    let mut cursors: Vec<RenderCursor> = shards
        .into_iter()
        .map(|s| RenderCursor {
            rows: s.rows.into_iter(),
            created: s.created,
            slots: s.slots,
            g: 0,
        })
        .collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(cursors.len());
    for (i, c) in cursors.iter().enumerate() {
        debug_assert!(c.created.windows(2).all(|w| w[0] < w[1]));
        if !c.created.is_empty() {
            heap.push(Reverse((c.created[0], i)));
        }
    }
    let mut rendered: Vec<(u64, Row)> = Vec::with_capacity(groups);
    while let Some(Reverse((created, i))) = heap.pop() {
        let c = &mut cursors[i];
        let mut row = c.rows.next().expect("render row");
        let g = c.g;
        c.g += 1;
        if render_state {
            for slot in &c.slots {
                slot.write_state(g, &mut row);
            }
        } else {
            for slot in &c.slots {
                row.push(slot.finalize_value(g));
            }
        }
        rendered.push((created, row));
        if c.g < c.created.len() {
            heap.push(Reverse((c.created[c.g], i)));
        }
    }
    Ok(WorkerOut {
        rendered,
        merge_busy_s: busy,
        finalize_s: thread_cpu_s() - t,
        groups,
    })
}

/// Render-time cursor over one shard's groups in creation order.
struct RenderCursor {
    rows: std::vec::IntoIter<Row>,
    created: Vec<u64>,
    slots: Vec<AggSlot>,
    g: usize,
}

/// One hash partition of the group space: an open-addressing index over
/// stored key hashes, base rows, creation indices, and typed slots.
struct Shard {
    table: GroupTable,
    /// Base parts, in creation order (dense group indices).
    rows: Vec<Row>,
    /// Key values, flattened at `key_cols.len()` per group: a dense copy
    /// of each group's key so probe compares stay inside one hot vector
    /// instead of chasing `rows[g]`'s heap pointer.
    keys: Vec<Value>,
    /// Global arrival index at which each group was created (sorted:
    /// arrivals only grow).
    created: Vec<u64>,
    slots: Vec<AggSlot>,
}

impl Shard {
    fn new(proto: &[AggSlot]) -> Shard {
        Shard {
            table: GroupTable::new(),
            rows: Vec::new(),
            keys: Vec::new(),
            created: Vec::new(),
            slots: proto.to_vec(),
        }
    }

    /// Seed one base row at the identity state (duplicates collapse).
    fn seed_group(&mut self, hash: u64, base_part: &Row, key_cols: &[usize], arrival: u64) {
        let kw = key_cols.len();
        let keys = &self.keys;
        if self
            .table
            .find(hash, |g| keys_eq(&keys[g * kw..], base_part, key_cols))
            .is_some()
        {
            return;
        }
        let g = self.rows.len();
        self.rows.push(base_part.clone());
        self.keys
            .extend(key_cols.iter().map(|&c| base_part[c].clone()));
        self.created.push(arrival);
        for slot in &mut self.slots {
            slot.push_identity();
        }
        self.table.insert(hash, g);
    }

    /// Resolve one routed fragment row to its dense group index, creating
    /// the group at the identity state in Proposition 2 mode.
    fn resolve(
        &mut self,
        hash: u64,
        arrival: u64,
        row: &[Value],
        base_width: usize,
        key_cols: &[usize],
        allow_new: bool,
    ) -> Result<usize> {
        let kw = key_cols.len();
        let keys = &self.keys;
        if let Some(g) = self
            .table
            .find(hash, |g| keys_eq(&keys[g * kw..], row, key_cols))
        {
            return Ok(g);
        }
        if !allow_new {
            let key: Row = key_cols.iter().map(|&c| row[c].clone()).collect();
            return Err(SkallaError::exec(format!(
                "fragment contains unknown group key {key:?}"
            )));
        }
        let g = self.rows.len();
        self.keys.extend(key_cols.iter().map(|&c| row[c].clone()));
        self.rows.push(row[..base_width].to_vec());
        self.created.push(arrival);
        self.table.insert(hash, g);
        for slot in &mut self.slots {
            slot.push_identity();
        }
        Ok(g)
    }
}

/// `stored` is a dense `key_cols.len()`-wide key slice (values in
/// `key_cols` order); `incoming` is a full row indexed by `key_cols`.
fn keys_eq(stored: &[Value], incoming: &[Value], key_cols: &[usize]) -> bool {
    key_cols.iter().zip(stored).all(|(&c, s)| *s == incoming[c])
}

const EMPTY: usize = usize::MAX;

/// Open-addressing group index: slots hold dense group ids, hashes are
/// stored per group so probes compare a `u64` before touching key values.
struct GroupTable {
    mask: usize,
    slots: Box<[usize]>,
    hashes: Vec<u64>,
}

impl GroupTable {
    fn new() -> GroupTable {
        GroupTable {
            mask: 15,
            slots: vec![EMPTY; 16].into_boxed_slice(),
            hashes: Vec::new(),
        }
    }

    /// Hint the CPU to pull the first probe slot for `hash` into cache.
    /// The table is large relative to L1/L2 at realistic group counts, so
    /// issuing this a few rows ahead of [`GroupTable::find`] hides the
    /// dependent-load stall of the open-addressing probe.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn prefetch(&self, hash: u64) {
        let i = (hash as usize) & self.mask;
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(self.slots.as_ptr().add(i).cast::<i8>());
        }
    }

    fn find(&self, hash: u64, mut eq: impl FnMut(usize) -> bool) -> Option<usize> {
        let mut i = (hash as usize) & self.mask;
        loop {
            let g = self.slots[i];
            if g == EMPTY {
                return None;
            }
            if self.hashes[g] == hash && eq(g) {
                return Some(g);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert group `g` (which must equal the current group count) under
    /// `hash`. The caller has already established it is absent.
    fn insert(&mut self, hash: u64, g: usize) {
        debug_assert_eq!(g, self.hashes.len());
        self.hashes.push(hash);
        // Grow at 7/8 load, re-placing every group.
        if self.hashes.len() * 8 >= self.slots.len() * 7 {
            let cap = self.slots.len() * 2;
            self.mask = cap - 1;
            self.slots = vec![EMPTY; cap].into_boxed_slice();
            for g in 0..self.hashes.len() {
                self.place(self.hashes[g], g);
            }
        } else {
            self.place(hash, g);
        }
    }

    fn place(&mut self, hash: u64, g: usize) {
        let mut i = (hash as usize) & self.mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = g;
    }
}

#[inline]
fn mix(h: u64, w: u64) -> u64 {
    (h.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95)
}

/// Hash the key columns of a (base-prefixed) row. Consistent with
/// [`Value`]'s equality: `Int(k)`, `Float(k.0)`, and `-0.0`/`0.0` hash
/// identically, and all NaNs (which compare equal under the total order)
/// share one hash.
fn hash_key(row: &[Value], key_cols: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in key_cols {
        h = match &row[c] {
            Value::Null => mix(h, 0xa5),
            Value::Bool(b) => mix(mix(h, 1), u64::from(*b)),
            Value::Int(i) => mix(mix(h, 2), *i as u64),
            Value::Float(f) => match exact_i64(*f) {
                Some(i) => mix(mix(h, 2), i as u64),
                None => {
                    let bits = if f.is_nan() {
                        f64::NAN.to_bits()
                    } else {
                        f.to_bits()
                    };
                    mix(mix(h, 3), bits)
                }
            },
            Value::Str(s) => {
                let bytes = s.as_bytes();
                let mut acc = mix(h, 4);
                for chunk in bytes.chunks(8) {
                    let mut word = [0u8; 8];
                    word[..chunk.len()].copy_from_slice(chunk);
                    acc = mix(acc, u64::from_le_bytes(word));
                }
                mix(acc, bytes.len() as u64)
            }
        };
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseresult::BaseResult;
    use skalla_expr::Expr;

    fn base() -> Relation {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        Relation::new(schema, (0..10).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(Expr::detail(1), "avg").unwrap(),
        ]
    }

    fn output_fields() -> Vec<Field> {
        vec![
            Field::new("cnt", DataType::Int64),
            Field::new("avg", DataType::Float64),
        ]
    }

    fn state_types() -> Vec<DataType> {
        vec![DataType::Int64, DataType::Float64, DataType::Int64]
    }

    fn frag(rows: Vec<Row>) -> Relation {
        let schema = Schema::from_pairs([
            ("k", DataType::Int64),
            ("cnt", DataType::Int64),
            ("avg__sum", DataType::Float64),
            ("avg__count", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        Relation::new(schema, rows).unwrap()
    }

    fn site_frag(site: usize) -> Relation {
        frag(
            (0..10)
                .map(|k| {
                    vec![
                        Value::Int(k),
                        Value::Int((site + k as usize) as i64 % 3),
                        Value::Float((site as f64 + 0.25) * (k as f64 + 0.5)),
                        Value::Int(1),
                    ]
                })
                .collect(),
        )
    }

    fn engine(opts: SyncOptions, allow_new: bool, seed: Option<&Relation>) -> ShardedSync {
        ShardedSync::new(
            SyncSpec {
                base_schema: base().schema().clone(),
                key_cols: vec![0],
                specs: specs(),
                state_types: state_types(),
                output: SyncOutput::Finalized(output_fields()),
                allow_new,
            },
            seed,
            opts,
        )
        .unwrap()
    }

    fn rows_bits_eq(a: &Relation, b: &Relation) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.schema().names(), b.schema().names());
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            for (va, vb) in ra.iter().zip(rb) {
                match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "{va:?} vs {vb:?}")
                    }
                    _ => assert_eq!(va, vb),
                }
            }
        }
    }

    #[test]
    fn matches_serial_bit_for_bit_across_shard_counts() {
        let b = base();
        let mut serial = BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
        for site in 0..5 {
            serial.merge_fragment(&site_frag(site), false).unwrap();
        }
        let expect = serial.finalize().unwrap();

        for (workers, shards) in [(1, 1), (2, 4), (4, 16), (8, 4)] {
            let mut e = engine(
                SyncOptions {
                    workers,
                    shards,
                    queue_batches: 2,
                    flush_rows: 8,
                    flush_rows_max: 32,
                },
                false,
                Some(&b),
            );
            for site in 0..5 {
                e.merge_chunk(site_frag(site)).unwrap();
            }
            let (got, stats) = e.finish().unwrap();
            rows_bits_eq(&expect, &got);
            assert_eq!(stats.groups, 10);
            // Workers are clamped to the shard count.
            assert_eq!(stats.workers, workers.min(shards));
            assert_eq!(stats.worker_busy_s.len(), stats.workers);
            assert!(stats.utilization() >= 0.0 && stats.utilization() <= 1.0);
            assert!(stats.imbalance() >= 1.0 || stats.merge_busy_s == 0.0);
            assert!(stats.batches > 0);
        }
    }

    #[test]
    fn shards_round_up_to_power_of_two() {
        let e = engine(
            SyncOptions {
                workers: 3,
                shards: 7,
                queue_batches: 2,
                flush_rows: 8,
                flush_rows_max: 32,
            },
            false,
            Some(&base()),
        );
        assert_eq!(e.shards, 8);
        assert_eq!(e.workers, 3);
        // Contiguous ownership covering all shards.
        assert_eq!(e.owner_of, vec![0, 0, 0, 1, 1, 1, 2, 2]);
        let (_, stats) = e.finish().unwrap();
        assert_eq!(stats.shards, 8);
    }

    #[test]
    fn empty_mode_inserts_in_arrival_order() {
        // Serial reference in empty (Proposition 2) mode.
        let mut serial = BaseResult::empty(base().schema().clone(), &[0], specs(), output_fields());
        let f1 = frag(vec![
            vec![
                Value::Int(7),
                Value::Int(1),
                Value::Float(1.5),
                Value::Int(1),
            ],
            vec![
                Value::Int(3),
                Value::Int(1),
                Value::Float(2.5),
                Value::Int(1),
            ],
        ]);
        let f2 = frag(vec![
            vec![Value::Int(5), Value::Int(1), Value::Null, Value::Int(0)],
            vec![
                Value::Int(7),
                Value::Int(2),
                Value::Float(-0.0),
                Value::Int(1),
            ],
        ]);
        serial.merge_fragment(&f1, true).unwrap();
        serial.merge_fragment(&f2, true).unwrap();
        let expect = serial.finalize().unwrap();

        let mut e = engine(SyncOptions::for_workers(3), true, None);
        e.merge_chunk(f1).unwrap();
        e.merge_chunk(f2).unwrap();
        let (got, _) = e.finish().unwrap();
        rows_bits_eq(&expect, &got);
        // Insertion order, not key order.
        assert_eq!(got.row(0)[0], Value::Int(7));
        assert_eq!(got.row(1)[0], Value::Int(3));
        assert_eq!(got.row(2)[0], Value::Int(5));
    }

    #[test]
    fn unknown_group_rejected_like_serial() {
        let b = base();
        let mut e = engine(SyncOptions::for_workers(2), false, Some(&b));
        e.merge_chunk(frag(vec![vec![
            Value::Int(99),
            Value::Int(1),
            Value::Float(1.0),
            Value::Int(1),
        ]]))
        .ok(); // error may surface here or at finish
        let err = match e.finish() {
            Err(e) => e,
            Ok(_) => panic!("unknown key must fail"),
        };
        assert!(err.to_string().contains("unknown group key"));
    }

    #[test]
    fn bad_chunk_rejected_before_any_merge() {
        let b = base();
        let mut e = engine(SyncOptions::for_workers(2), false, Some(&b));
        // Wrong arity.
        let bad = Relation::new(
            Schema::from_pairs([("k", DataType::Int64)])
                .unwrap()
                .into_arc(),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        assert!(e.merge_chunk(bad).is_err());
        // Wrong state type (string count), mixed into a chunk with a valid
        // row: neither row may merge.
        let mixed = frag(vec![
            vec![
                Value::Int(1),
                Value::Int(1),
                Value::Float(9.0),
                Value::Int(1),
            ],
            vec![Value::Int(2), Value::str("x"), Value::Null, Value::Int(0)],
        ]);
        assert!(e.merge_chunk(mixed).is_err());
        let (got, _) = e.finish().unwrap();
        // All groups still at identity: COUNT 0 everywhere.
        assert!(got.rows().iter().all(|r| r[1] == Value::Int(0)));
    }

    #[test]
    fn state_output_matches_to_state_relation() {
        let b = base();
        let mut serial = BaseResult::from_base(&b, &[0], specs(), Vec::new()).unwrap();
        serial.merge_fragment(&site_frag(0), false).unwrap();
        serial.merge_fragment(&site_frag(1), false).unwrap();
        let expect = serial.to_state_relation().unwrap();

        let mut e = ShardedSync::new(
            SyncSpec {
                base_schema: b.schema().clone(),
                key_cols: vec![0],
                specs: specs(),
                state_types: state_types(),
                output: SyncOutput::State,
                allow_new: false,
            },
            Some(&b),
            SyncOptions::for_workers(4),
        )
        .unwrap();
        e.merge_chunk(site_frag(0)).unwrap();
        e.merge_chunk(site_frag(1)).unwrap();
        let (got, _) = e.finish().unwrap();
        rows_bits_eq(&expect, &got);
        // Unlike the serial placeholder schema, state fields carry the
        // real declared types.
        assert_eq!(got.schema().fields()[2].dtype, DataType::Float64);
    }

    #[test]
    fn adaptive_flush_grows_under_backpressure() {
        // A tiny queue with slow drain (single worker, many rows) must
        // still deliver every row; batch growth is visible as fewer
        // batches than rows/flush_rows would predict.
        let b = base();
        let mut e = engine(
            SyncOptions {
                workers: 1,
                shards: 2,
                queue_batches: 1,
                flush_rows: 4,
                flush_rows_max: 1024,
            },
            false,
            Some(&b),
        );
        for site in 0..50 {
            e.merge_chunk(site_frag(site)).unwrap();
        }
        let (got, stats) = e.finish().unwrap();
        assert_eq!(got.len(), 10);
        // 500 rows at a hard 4-row flush would be 125 batches.
        assert!(stats.batches < 125, "batches = {}", stats.batches);
    }

    #[test]
    fn hash_key_is_equality_consistent() {
        let cols = [0usize];
        let h = |v: Value| hash_key(&[v], &cols);
        assert_eq!(h(Value::Int(42)), h(Value::Float(42.0)));
        assert_eq!(h(Value::Float(0.0)), h(Value::Float(-0.0)));
        assert_eq!(h(Value::Float(f64::NAN)), h(Value::Float(-f64::NAN)));
        assert_ne!(h(Value::Int(1)), h(Value::Int(2)));
        assert_ne!(h(Value::str("ab")), h(Value::str("ba")));
    }

    #[test]
    fn sum_overflow_surfaces_from_workers() {
        let b = base();
        let mut e = ShardedSync::new(
            SyncSpec {
                base_schema: b.schema().clone(),
                key_cols: vec![0],
                specs: vec![AggSpec::sum(Expr::detail(1), "s").unwrap()],
                state_types: vec![DataType::Int64],
                output: SyncOutput::Finalized(vec![Field::new("s", DataType::Int64)]),
                allow_new: false,
            },
            Some(&b),
            SyncOptions::for_workers(2),
        )
        .unwrap();
        let schema = Schema::from_pairs([("k", DataType::Int64), ("s", DataType::Int64)])
            .unwrap()
            .into_arc();
        let big = Relation::new(schema, vec![vec![Value::Int(1), Value::Int(i64::MAX)]]).unwrap();
        e.merge_chunk(big.clone()).unwrap();
        e.merge_chunk(big).unwrap();
        let err = e.finish().unwrap_err();
        assert!(err.to_string().contains("SUM overflow"));
    }
}
