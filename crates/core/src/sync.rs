//! Sharded, pipelined synchronization (the parallel Theorem 1 path).
//!
//! The serial [`BaseResult`](crate::baseresult::BaseResult) synchronizes
//! O(|H|) but on one thread, re-hashing a freshly allocated `Vec<Value>`
//! key per fragment row. At coordinator-bound scale (many groups × many
//! sites) that merge loop *is* the response time. [`ShardedSync`]
//! parallelizes it the way morsel-driven engines partition aggregation:
//!
//! * the group space is hash-partitioned into `shards` disjoint shards by
//!   a key hash computed **once** per row (no per-lookup key allocation);
//! * a pool of `workers` merge threads owns disjoint shard sets, fed
//!   routed row batches over bounded channels, so merging overlaps with
//!   network receive and fragment decode;
//! * per-group state lives in typed [`AggSlot`] columns, merged without
//!   `Value` boxing on the numeric fast paths.
//!
//! **Determinism.** The merge is not idempotent and float addition is not
//! commutative-associative in bits, so the engine must replay exactly the
//! serial merge order *within each group*. The router (the caller's
//! thread) assigns every fragment row a global arrival index and appends
//! rows to per-worker queues in arrival order; each shard therefore sees
//! its rows as a subsequence of the serial order, and a group — which
//! lives in exactly one shard — merges bit-for-bit identically (including
//! float `AVG` state and `-0.0`). Group *creation* arrival indices are
//! recorded, and [`ShardedSync::finish`] orders the output by them, which
//! reproduces the serial structure's insertion order exactly.
//!
//! **All-or-nothing fragments.** Each chunk is validated (arity and state
//! column types) on the router thread before any row is routed, so a bad
//! fragment is rejected without mutating any shard — the same guarantee
//! the serial `merge_fragment` provides.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use skalla_gmdj::{slots_for_specs, AggSlot, AggSpec};
use skalla_types::{exact_i64, DataType, Field, Relation, Result, Row, Schema, SkallaError, Value};

/// What [`ShardedSync::finish`] renders per group after the base columns.
#[derive(Debug, Clone)]
pub enum SyncOutput {
    /// Finalized aggregate outputs (the coordinator's `B_k`), under these
    /// fields.
    Finalized(Vec<Field>),
    /// Raw sub-aggregate state columns (the mid-tier ship format of
    /// `BaseResult::to_state_relation`).
    State,
}

/// The shape of one synchronization: schema, key, aggregates, and mode.
#[derive(Debug, Clone)]
pub struct SyncSpec {
    /// Base-part schema of fragment rows.
    pub base_schema: Arc<Schema>,
    /// Key column indices within the base part.
    pub key_cols: Vec<usize>,
    /// The segment's flattened aggregates, in fragment column order.
    pub specs: Vec<AggSpec>,
    /// Declared state column types, flattened across `specs`.
    pub state_types: Vec<DataType>,
    /// What to render at the end.
    pub output: SyncOutput,
    /// Proposition 2 mode: insert unknown groups instead of erroring.
    pub allow_new: bool,
}

/// Parallelism knobs for a [`ShardedSync`].
#[derive(Debug, Clone, Copy)]
pub struct SyncOptions {
    /// Merge worker threads (≥ 1).
    pub workers: usize,
    /// Hash shards of the group space (≥ 1); shard `s` is owned by worker
    /// `s % workers`.
    pub shards: usize,
    /// Bounded depth (in routed batches) of each worker's queue — the
    /// backpressure that keeps the router from outrunning the mergers.
    pub queue_batches: usize,
    /// Router-side accumulation: rows buffered per worker before a batch
    /// is pushed onto its queue. Bigger batches mean fewer wakeups and
    /// shard-contiguous merge runs; smaller ones start the overlap
    /// earlier. Clamped to ≥ 1.
    pub flush_rows: usize,
}

impl SyncOptions {
    /// Sensible defaults for `workers` threads: 4 shards per worker (so
    /// group skew leaves no worker idle), a short queue, and ~4k-row
    /// worker batches.
    pub fn for_workers(workers: usize) -> SyncOptions {
        let w = workers.max(1);
        SyncOptions {
            workers: w,
            shards: w * 4,
            queue_batches: 4,
            flush_rows: 8192,
        }
    }
}

/// Timing breakdown of one sharded synchronization.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncStats {
    /// Router seconds: validation, key hashing, and batch routing.
    pub partition_s: f64,
    /// Summed busy merge seconds across workers (work performed; the
    /// wall-clock cost is `merge_busy_s / workers` at full utilization).
    pub merge_busy_s: f64,
    /// Finalize seconds: slowest worker's render plus the router's
    /// order-merge.
    pub finalize_s: f64,
    /// Serialized tail of [`ShardedSync::finish`]: closing the queues to
    /// the ordered result (the only part not overlapped with receive).
    pub drain_s: f64,
    /// Engine lifetime seconds (construction to finish).
    pub wall_s: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Shards used.
    pub shards: usize,
    /// Groups in the result.
    pub groups: usize,
}

impl SyncStats {
    /// Fraction of the worker pool's capacity spent merging over the
    /// engine's lifetime (1.0 = every worker busy the whole time).
    pub fn utilization(&self) -> f64 {
        if self.wall_s <= 0.0 || self.workers == 0 {
            0.0
        } else {
            (self.merge_busy_s / (self.workers as f64 * self.wall_s)).min(1.0)
        }
    }
}

/// One shard's routed rows, flattened columnar-style: parallel hash and
/// arrival vectors plus row values at a fixed `base + state` stride,
/// arrival-ordered. The flat buffers keep a worker's merge walk
/// sequential in memory, and keep every per-row allocation — and, just as
/// importantly, every free — on the router thread, so merge workers never
/// contend on the allocator.
#[derive(Default)]
struct ShardBucket {
    hashes: Vec<u64>,
    arrivals: Vec<u64>,
    vals: Vec<Value>,
}

impl ShardBucket {
    fn len(&self) -> usize {
        self.hashes.len()
    }
}

/// One batch on a worker's queue: routed rows bucketed by the worker's
/// local shard index. Shard-contiguous runs keep each shard's group table
/// and slot columns cache-resident while it is being merged.
type RoutedBatch = Vec<ShardBucket>;

/// Per-state-column validation, flattened for the router's hot loop —
/// semantically identical to chaining [`AggSlot::validate_incoming`]
/// across the slots.
#[derive(Debug, Clone, Copy)]
enum ColCheck {
    /// Non-null `Int` (`COUNT`, and the count component of `AVG`).
    IntStrict,
    /// `Int` or `NULL`.
    IntOpt,
    /// `Float` or `NULL`.
    FloatOpt,
    /// Anything (`MIN`/`MAX` over non-numeric values).
    Any,
}

impl ColCheck {
    /// The flattened per-column checks for one slot's state columns.
    fn for_slot(slot: &AggSlot) -> Vec<ColCheck> {
        match slot {
            AggSlot::Count { .. } => vec![ColCheck::IntStrict],
            AggSlot::SumI { .. } | AggSlot::MinMaxI { .. } => vec![ColCheck::IntOpt],
            AggSlot::SumF { .. } | AggSlot::MinMaxF { .. } => vec![ColCheck::FloatOpt],
            AggSlot::AvgI { .. } => vec![ColCheck::IntOpt, ColCheck::IntStrict],
            AggSlot::AvgF { .. } => vec![ColCheck::FloatOpt, ColCheck::IntStrict],
            AggSlot::MinMaxV { .. } => vec![ColCheck::Any],
        }
    }

    #[inline]
    fn check(self, v: &Value) -> Result<()> {
        let want = match (self, v) {
            (ColCheck::IntStrict, Value::Int(_)) => return Ok(()),
            (ColCheck::IntOpt, Value::Int(_) | Value::Null) => return Ok(()),
            (ColCheck::FloatOpt, Value::Float(_) | Value::Null) => return Ok(()),
            (ColCheck::Any, _) => return Ok(()),
            (ColCheck::IntStrict, _) => "Int count",
            (ColCheck::IntOpt, _) => "Int or NULL",
            (ColCheck::FloatOpt, _) => "Float or NULL",
        };
        Err(SkallaError::type_error(format!(
            "fragment state column: expected {want}, got {v}"
        )))
    }
}

/// What each worker hands back when its queue closes.
struct WorkerOut {
    /// `(creation arrival index, rendered row)` sorted by the index.
    rendered: Vec<(u64, Row)>,
    merge_busy_s: f64,
    finalize_s: f64,
    groups: usize,
}

/// The sharded synchronization engine. Feed chunks with
/// [`ShardedSync::merge_chunk`] as they arrive, then call
/// [`ShardedSync::finish`].
pub struct ShardedSync {
    base_schema: Arc<Schema>,
    base_width: usize,
    state_width: usize,
    key_cols: Arc<Vec<usize>>,
    /// Flattened per-state-column checks used for router-side validation.
    checks: Vec<ColCheck>,
    spec_widths: Vec<usize>,
    state_types: Vec<DataType>,
    output: SyncOutput,
    workers: usize,
    shards: usize,
    flush_rows: usize,
    /// Whether routed rows carry arrival indices. Only `allow_new` mode
    /// needs them (they order newly created groups); seeded mode leaves
    /// [`ShardBucket::arrivals`] empty.
    track_arrivals: bool,
    /// `shards - 1` when the shard count is a power of two, letting the
    /// router's hot loop replace `hash % shards` with a mask.
    shard_mask: Option<u64>,
    /// Routed rows accumulated per shard, awaiting a big-enough batch
    /// (shard `s` belongs to worker `s % workers`).
    pending: Vec<ShardBucket>,
    pending_rows: Vec<usize>,
    txs: Vec<SyncSender<RoutedBatch>>,
    handles: Vec<JoinHandle<Result<WorkerOut>>>,
    poisoned: Arc<AtomicBool>,
    first_err: Arc<Mutex<Option<SkallaError>>>,
    arrival: u64,
    rows_merged: u64,
    partition_s: f64,
    started: Instant,
}

impl ShardedSync {
    /// Build the engine, optionally seeding groups from a synchronized
    /// base relation (every aggregate at its identity state, duplicate
    /// base rows collapsing to one group — exactly
    /// `BaseResult::from_base`).
    pub fn new(spec: SyncSpec, seed: Option<&Relation>, opts: SyncOptions) -> Result<ShardedSync> {
        let SyncSpec {
            base_schema,
            key_cols,
            specs,
            state_types,
            output,
            allow_new,
        } = spec;
        let base_width = base_schema.len();
        for &c in &key_cols {
            if c >= base_width {
                return Err(SkallaError::plan(format!(
                    "key column {c} out of range for base width {base_width}"
                )));
            }
        }
        let proto = slots_for_specs(&specs, &state_types)?;
        let checks: Vec<ColCheck> = proto.iter().flat_map(ColCheck::for_slot).collect();
        let spec_widths: Vec<usize> = specs.iter().map(AggSpec::state_width).collect();
        let state_width: usize = spec_widths.iter().sum();
        let workers = opts.workers.max(1);
        let shards = opts.shards.max(1);
        let key_cols = Arc::new(key_cols);

        // Seed the shards on this thread: creation indices 0..n reproduce
        // the serial insertion order of the base rows.
        let mut all_shards: Vec<Shard> = (0..shards).map(|_| Shard::new(&proto)).collect();
        let mut arrival = 0u64;
        if let Some(base) = seed {
            if base.schema().len() != base_width {
                return Err(SkallaError::exec(format!(
                    "group row has {} columns, base schema has {}",
                    base.schema().len(),
                    base_width
                )));
            }
            for row in base.rows() {
                let hash = hash_key(row, &key_cols);
                let shard = &mut all_shards[(hash % shards as u64) as usize];
                shard.seed_group(hash, row, &key_cols, arrival);
                arrival += 1;
            }
        }

        // Hand each worker its shard set and a bounded queue.
        let mut per_worker: Vec<Vec<Shard>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, shard) in all_shards.into_iter().enumerate() {
            per_worker[s % workers].push(shard);
        }
        let poisoned = Arc::new(AtomicBool::new(false));
        let first_err = Arc::new(Mutex::new(None));
        let render_state = matches!(output, SyncOutput::State);
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard_set in per_worker {
            let (tx, rx) = sync_channel::<RoutedBatch>(opts.queue_batches.max(1));
            txs.push(tx);
            let ctx = WorkerCtx {
                rx,
                shards: shard_set,
                base_width,
                stride: base_width + state_width,
                key_cols: key_cols.clone(),
                allow_new,
                render_state,
            };
            let poisoned = poisoned.clone();
            let first_err = first_err.clone();
            handles.push(std::thread::spawn(move || {
                let res = run_worker(ctx);
                if let Err(e) = &res {
                    poisoned.store(true, Ordering::Release);
                    first_err
                        .lock()
                        .expect("sync error slot")
                        .get_or_insert(e.clone());
                }
                res
            }));
        }
        Ok(ShardedSync {
            base_schema,
            base_width,
            state_width,
            key_cols,
            checks,
            spec_widths,
            state_types,
            output,
            workers,
            shards,
            flush_rows: opts.flush_rows.max(1),
            track_arrivals: allow_new,
            shard_mask: shards.is_power_of_two().then(|| shards as u64 - 1),
            pending: (0..shards).map(|_| ShardBucket::default()).collect(),
            pending_rows: vec![0; workers],
            txs,
            handles,
            poisoned,
            first_err,
            arrival,
            rows_merged: 0,
            partition_s: 0.0,
            started: Instant::now(),
        })
    }

    /// Validate, hash, and route one fragment chunk to the merge workers.
    /// A rejected chunk (arity or state-type mismatch) leaves the engine
    /// exactly as if the chunk never arrived: nothing reaches a worker
    /// because nothing is flushed mid-chunk, and the pending accumulators
    /// roll back to their pre-chunk watermarks.
    pub fn merge_chunk(&mut self, frag: Relation) -> Result<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(self.stored_error());
        }
        let t = Instant::now();
        let expect = self.base_width + self.state_width;
        if frag.schema().len() != expect {
            return Err(SkallaError::exec(format!(
                "fragment has {} columns, expected {} (base {} + state {})",
                frag.schema().len(),
                expect,
                self.base_width,
                self.state_width
            )));
        }
        // Validation and routing share one pass over the rows, straight
        // into the per-worker accumulators (shard `s` lands in bucket
        // `s / workers` of worker `s % workers`). A mid-chunk rejection
        // rolls every bucket back to its pre-chunk watermark and leaves
        // the arrival counter untouched, so no shard ever sees any part of
        // a failed chunk.
        let n = frag.len();
        let marks: Vec<usize> = self.pending.iter().map(ShardBucket::len).collect();
        let stride = self.base_width + self.state_width;
        let mut arrival = self.arrival;
        for row in frag.into_rows() {
            let valid = row[self.base_width..]
                .iter()
                .zip(&self.checks)
                .try_for_each(|(v, c)| c.check(v));
            if let Err(e) = valid {
                for (bucket, &keep) in self.pending.iter_mut().zip(&marks) {
                    bucket.hashes.truncate(keep);
                    bucket.arrivals.truncate(keep);
                    bucket.vals.truncate(keep * stride);
                }
                self.recount_pending();
                return Err(e);
            }
            let hash = hash_key(&row, &self.key_cols);
            let shard = match self.shard_mask {
                Some(m) => (hash & m) as usize,
                None => (hash % self.shards as u64) as usize,
            };
            let bucket = &mut self.pending[shard];
            bucket.hashes.push(hash);
            if self.track_arrivals {
                bucket.arrivals.push(arrival);
            }
            bucket.vals.extend(row);
            arrival += 1;
        }
        self.recount_pending();
        self.arrival = arrival;
        self.rows_merged += n as u64;
        self.partition_s += t.elapsed().as_secs_f64();
        // Sends sit outside the timer: blocking here is backpressure (the
        // mergers are saturated), not router compute.
        for w in 0..self.workers {
            if self.pending_rows[w] >= self.flush_rows {
                self.flush_worker(w)?;
            }
        }
        Ok(())
    }

    /// Recompute per-worker pending row counts from the shard buckets.
    fn recount_pending(&mut self) {
        self.pending_rows.iter_mut().for_each(|r| *r = 0);
        for (s, bucket) in self.pending.iter().enumerate() {
            self.pending_rows[s % self.workers] += bucket.len();
        }
    }

    /// Push worker `w`'s accumulated shard buckets (in local-index order)
    /// onto its queue.
    fn flush_worker(&mut self, w: usize) -> Result<()> {
        let full: RoutedBatch = (w..self.shards)
            .step_by(self.workers)
            .map(|s| std::mem::take(&mut self.pending[s]))
            .collect();
        self.pending_rows[w] = 0;
        if self.txs[w].send(full).is_err() {
            return Err(self.stored_error());
        }
        Ok(())
    }

    /// Close the queues, join the workers, and render the synchronized
    /// relation in exactly the serial insertion order.
    pub fn finish(mut self) -> Result<(Relation, SyncStats)> {
        let t_drain = Instant::now();
        // Flush whatever the accumulators still hold, ignoring send errors
        // here — a dead worker's own error is picked up after the join.
        for w in 0..self.workers {
            if self.pending_rows[w] > 0 {
                let _ = self.flush_worker(w);
            }
        }
        self.txs.clear(); // closes every queue
        let mut outs: Vec<WorkerOut> = Vec::with_capacity(self.handles.len());
        let mut join_err: Option<SkallaError> = None;
        for h in self.handles.drain(..) {
            match h.join() {
                Ok(Ok(o)) => outs.push(o),
                Ok(Err(e)) => {
                    join_err.get_or_insert(e);
                }
                Err(_) => {
                    join_err.get_or_insert(SkallaError::exec("sync worker panicked"));
                }
            }
        }
        if let Some(e) = self.first_err.lock().expect("sync error slot").take() {
            return Err(e);
        }
        if let Some(e) = join_err {
            return Err(e);
        }

        let t_order = Instant::now();
        let groups: usize = outs.iter().map(|o| o.groups).sum();
        let mut rendered: Vec<(u64, Row)> = Vec::with_capacity(groups);
        for o in &mut outs {
            rendered.append(&mut o.rendered);
        }
        // Creation arrival indices are globally unique; sorting by them
        // reproduces the serial structure's insertion order bit-for-bit.
        rendered.sort_unstable_by_key(|(created, _)| *created);
        let rows: Vec<Row> = rendered.into_iter().map(|(_, row)| row).collect();

        let mut fields = self.base_schema.fields().to_vec();
        match &self.output {
            SyncOutput::Finalized(out_fields) => fields.extend(out_fields.iter().cloned()),
            SyncOutput::State => {
                // Same placeholder names as `to_state_relation`, but with
                // the real declared state types.
                let mut off = 0;
                for (i, &w) in self.spec_widths.iter().enumerate() {
                    for j in 0..w {
                        fields.push(Field::new(
                            format!("__state_{i}_{j}"),
                            self.state_types[off + j],
                        ));
                    }
                    off += w;
                }
            }
        }
        let schema = Arc::new(Schema::new(fields)?);
        let rel = Relation::from_rows_unchecked(schema, rows);
        let order_s = t_order.elapsed().as_secs_f64();

        let stats = SyncStats {
            partition_s: self.partition_s,
            merge_busy_s: outs.iter().map(|o| o.merge_busy_s).sum(),
            finalize_s: outs.iter().map(|o| o.finalize_s).fold(0.0, f64::max) + order_s,
            drain_s: t_drain.elapsed().as_secs_f64(),
            wall_s: self.started.elapsed().as_secs_f64(),
            workers: self.workers,
            shards: self.shards,
            groups,
        };
        Ok((rel, stats))
    }

    /// Rows routed so far (excludes seeded base rows).
    pub fn rows_merged(&self) -> u64 {
        self.rows_merged
    }

    fn stored_error(&self) -> SkallaError {
        self.first_err
            .lock()
            .expect("sync error slot")
            .take()
            .unwrap_or_else(|| SkallaError::exec("sync worker terminated"))
    }
}

struct WorkerCtx {
    rx: Receiver<RoutedBatch>,
    /// This worker's shards, at local index `shard_id / workers`.
    shards: Vec<Shard>,
    base_width: usize,
    /// Full fragment row width (`base + state`), the stride of
    /// [`ShardBucket::vals`].
    stride: usize,
    key_cols: Arc<Vec<usize>>,
    allow_new: bool,
    render_state: bool,
}

fn run_worker(ctx: WorkerCtx) -> Result<WorkerOut> {
    let WorkerCtx {
        rx,
        mut shards,
        base_width,
        stride,
        key_cols,
        allow_new,
        render_state,
    } = ctx;
    let mut busy = 0.0f64;
    while let Ok(batch) = rx.recv() {
        let t = Instant::now();
        for (local, bucket) in batch.into_iter().enumerate() {
            let shard = &mut shards[local];
            let ShardBucket {
                hashes,
                arrivals,
                vals,
            } = bucket;
            // `arrivals` is empty in seeded mode (no group is ever
            // created, so the index is never read).
            let mut off = 0;
            for (i, &hash) in hashes.iter().enumerate() {
                let arrival = arrivals.get(i).copied().unwrap_or(0);
                shard.merge_row(
                    hash,
                    arrival,
                    &vals[off..off + stride],
                    base_width,
                    &key_cols,
                    allow_new,
                )?;
                off += stride;
            }
        }
        busy += t.elapsed().as_secs_f64();
    }
    let t = Instant::now();
    let groups: usize = shards.iter().map(|s| s.rows.len()).sum();
    let mut rendered: Vec<(u64, Row)> = Vec::with_capacity(groups);
    for shard in shards {
        let Shard {
            rows,
            created,
            slots,
            ..
        } = shard;
        for (g, (mut row, c)) in rows.into_iter().zip(created).enumerate() {
            if render_state {
                for slot in &slots {
                    slot.write_state(g, &mut row);
                }
            } else {
                for slot in &slots {
                    row.push(slot.finalize_value(g));
                }
            }
            rendered.push((c, row));
        }
    }
    rendered.sort_unstable_by_key(|(c, _)| *c);
    Ok(WorkerOut {
        rendered,
        merge_busy_s: busy,
        finalize_s: t.elapsed().as_secs_f64(),
        groups,
    })
}

/// One hash partition of the group space: an open-addressing index over
/// stored key hashes, base rows, creation indices, and typed slots.
struct Shard {
    table: GroupTable,
    /// Base parts, in creation order (dense group indices).
    rows: Vec<Row>,
    /// Key values, flattened at `key_cols.len()` per group: a dense copy
    /// of each group's key so probe compares stay inside one hot vector
    /// instead of chasing `rows[g]`'s heap pointer.
    keys: Vec<Value>,
    /// Global arrival index at which each group was created.
    created: Vec<u64>,
    slots: Vec<AggSlot>,
}

impl Shard {
    fn new(proto: &[AggSlot]) -> Shard {
        Shard {
            table: GroupTable::new(),
            rows: Vec::new(),
            keys: Vec::new(),
            created: Vec::new(),
            slots: proto.to_vec(),
        }
    }

    /// Seed one base row at the identity state (duplicates collapse).
    fn seed_group(&mut self, hash: u64, base_part: &Row, key_cols: &[usize], arrival: u64) {
        let kw = key_cols.len();
        let keys = &self.keys;
        if self
            .table
            .find(hash, |g| keys_eq(&keys[g * kw..], base_part, key_cols))
            .is_some()
        {
            return;
        }
        let g = self.rows.len();
        self.rows.push(base_part.clone());
        self.keys
            .extend(key_cols.iter().map(|&c| base_part[c].clone()));
        self.created.push(arrival);
        for slot in &mut self.slots {
            slot.push_identity();
        }
        self.table.insert(hash, g);
    }

    /// Merge one routed fragment row (Theorem 1 super-aggregation). `row`
    /// is a full-stride slice of a [`ShardBucket`]'s value buffer.
    fn merge_row(
        &mut self,
        hash: u64,
        arrival: u64,
        row: &[Value],
        base_width: usize,
        key_cols: &[usize],
        allow_new: bool,
    ) -> Result<()> {
        let kw = key_cols.len();
        let keys = &self.keys;
        let found = self
            .table
            .find(hash, |g| keys_eq(&keys[g * kw..], row, key_cols));
        match found {
            Some(g) => {
                let mut off = base_width;
                for slot in &mut self.slots {
                    let w = slot.state_width();
                    slot.merge_into(g, &row[off..off + w])?;
                    off += w;
                }
            }
            None if allow_new => {
                let g = self.rows.len();
                self.keys.extend(key_cols.iter().map(|&c| row[c].clone()));
                self.rows.push(row[..base_width].to_vec());
                self.created.push(arrival);
                self.table.insert(hash, g);
                let mut off = base_width;
                for slot in &mut self.slots {
                    slot.push_identity();
                    let w = slot.state_width();
                    slot.merge_into(g, &row[off..off + w])?;
                    off += w;
                }
            }
            None => {
                let key: Row = key_cols.iter().map(|&c| row[c].clone()).collect();
                return Err(SkallaError::exec(format!(
                    "fragment contains unknown group key {key:?}"
                )));
            }
        }
        Ok(())
    }
}

/// `stored` is a dense `key_cols.len()`-wide key slice (values in
/// `key_cols` order); `incoming` is a full row indexed by `key_cols`.
fn keys_eq(stored: &[Value], incoming: &[Value], key_cols: &[usize]) -> bool {
    key_cols.iter().zip(stored).all(|(&c, s)| *s == incoming[c])
}

const EMPTY: usize = usize::MAX;

/// Open-addressing group index: slots hold dense group ids, hashes are
/// stored per group so probes compare a `u64` before touching key values.
struct GroupTable {
    mask: usize,
    slots: Box<[usize]>,
    hashes: Vec<u64>,
}

impl GroupTable {
    fn new() -> GroupTable {
        GroupTable {
            mask: 15,
            slots: vec![EMPTY; 16].into_boxed_slice(),
            hashes: Vec::new(),
        }
    }

    fn find(&self, hash: u64, mut eq: impl FnMut(usize) -> bool) -> Option<usize> {
        let mut i = (hash as usize) & self.mask;
        loop {
            let g = self.slots[i];
            if g == EMPTY {
                return None;
            }
            if self.hashes[g] == hash && eq(g) {
                return Some(g);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert group `g` (which must equal the current group count) under
    /// `hash`. The caller has already established it is absent.
    fn insert(&mut self, hash: u64, g: usize) {
        debug_assert_eq!(g, self.hashes.len());
        self.hashes.push(hash);
        // Grow at 7/8 load, re-placing every group.
        if self.hashes.len() * 8 >= self.slots.len() * 7 {
            let cap = self.slots.len() * 2;
            self.mask = cap - 1;
            self.slots = vec![EMPTY; cap].into_boxed_slice();
            for g in 0..self.hashes.len() {
                self.place(self.hashes[g], g);
            }
        } else {
            self.place(hash, g);
        }
    }

    fn place(&mut self, hash: u64, g: usize) {
        let mut i = (hash as usize) & self.mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.slots[i] = g;
    }
}

#[inline]
fn mix(h: u64, w: u64) -> u64 {
    (h.rotate_left(5) ^ w).wrapping_mul(0x517c_c1b7_2722_0a95)
}

/// Hash the key columns of a (base-prefixed) row. Consistent with
/// [`Value`]'s equality: `Int(k)`, `Float(k.0)`, and `-0.0`/`0.0` hash
/// identically, and all NaNs (which compare equal under the total order)
/// share one hash.
fn hash_key(row: &[Value], key_cols: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in key_cols {
        h = match &row[c] {
            Value::Null => mix(h, 0xa5),
            Value::Bool(b) => mix(mix(h, 1), u64::from(*b)),
            Value::Int(i) => mix(mix(h, 2), *i as u64),
            Value::Float(f) => match exact_i64(*f) {
                Some(i) => mix(mix(h, 2), i as u64),
                None => {
                    let bits = if f.is_nan() {
                        f64::NAN.to_bits()
                    } else {
                        f.to_bits()
                    };
                    mix(mix(h, 3), bits)
                }
            },
            Value::Str(s) => {
                let bytes = s.as_bytes();
                let mut acc = mix(h, 4);
                for chunk in bytes.chunks(8) {
                    let mut word = [0u8; 8];
                    word[..chunk.len()].copy_from_slice(chunk);
                    acc = mix(acc, u64::from_le_bytes(word));
                }
                mix(acc, bytes.len() as u64)
            }
        };
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseresult::BaseResult;
    use skalla_expr::Expr;

    fn base() -> Relation {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        Relation::new(schema, (0..10).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(Expr::detail(1), "avg").unwrap(),
        ]
    }

    fn output_fields() -> Vec<Field> {
        vec![
            Field::new("cnt", DataType::Int64),
            Field::new("avg", DataType::Float64),
        ]
    }

    fn state_types() -> Vec<DataType> {
        vec![DataType::Int64, DataType::Float64, DataType::Int64]
    }

    fn frag(rows: Vec<Row>) -> Relation {
        let schema = Schema::from_pairs([
            ("k", DataType::Int64),
            ("cnt", DataType::Int64),
            ("avg__sum", DataType::Float64),
            ("avg__count", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        Relation::new(schema, rows).unwrap()
    }

    fn site_frag(site: usize) -> Relation {
        frag(
            (0..10)
                .map(|k| {
                    vec![
                        Value::Int(k),
                        Value::Int((site + k as usize) as i64 % 3),
                        Value::Float((site as f64 + 0.25) * (k as f64 + 0.5)),
                        Value::Int(1),
                    ]
                })
                .collect(),
        )
    }

    fn engine(opts: SyncOptions, allow_new: bool, seed: Option<&Relation>) -> ShardedSync {
        ShardedSync::new(
            SyncSpec {
                base_schema: base().schema().clone(),
                key_cols: vec![0],
                specs: specs(),
                state_types: state_types(),
                output: SyncOutput::Finalized(output_fields()),
                allow_new,
            },
            seed,
            opts,
        )
        .unwrap()
    }

    fn rows_bits_eq(a: &Relation, b: &Relation) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.schema().names(), b.schema().names());
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            for (va, vb) in ra.iter().zip(rb) {
                match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "{va:?} vs {vb:?}")
                    }
                    _ => assert_eq!(va, vb),
                }
            }
        }
    }

    #[test]
    fn matches_serial_bit_for_bit_across_shard_counts() {
        let b = base();
        let mut serial = BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
        for site in 0..5 {
            serial.merge_fragment(&site_frag(site), false).unwrap();
        }
        let expect = serial.finalize().unwrap();

        for (workers, shards) in [(1, 1), (2, 3), (4, 16)] {
            let mut e = engine(
                SyncOptions {
                    workers,
                    shards,
                    queue_batches: 2,
                    flush_rows: 8,
                },
                false,
                Some(&b),
            );
            for site in 0..5 {
                e.merge_chunk(site_frag(site)).unwrap();
            }
            let (got, stats) = e.finish().unwrap();
            rows_bits_eq(&expect, &got);
            assert_eq!(stats.groups, 10);
            assert_eq!(stats.workers, workers);
            assert!(stats.utilization() >= 0.0 && stats.utilization() <= 1.0);
        }
    }

    #[test]
    fn empty_mode_inserts_in_arrival_order() {
        // Serial reference in empty (Proposition 2) mode.
        let mut serial = BaseResult::empty(base().schema().clone(), &[0], specs(), output_fields());
        let f1 = frag(vec![
            vec![
                Value::Int(7),
                Value::Int(1),
                Value::Float(1.5),
                Value::Int(1),
            ],
            vec![
                Value::Int(3),
                Value::Int(1),
                Value::Float(2.5),
                Value::Int(1),
            ],
        ]);
        let f2 = frag(vec![
            vec![Value::Int(5), Value::Int(1), Value::Null, Value::Int(0)],
            vec![
                Value::Int(7),
                Value::Int(2),
                Value::Float(-0.0),
                Value::Int(1),
            ],
        ]);
        serial.merge_fragment(&f1, true).unwrap();
        serial.merge_fragment(&f2, true).unwrap();
        let expect = serial.finalize().unwrap();

        let mut e = engine(SyncOptions::for_workers(3), true, None);
        e.merge_chunk(f1).unwrap();
        e.merge_chunk(f2).unwrap();
        let (got, _) = e.finish().unwrap();
        rows_bits_eq(&expect, &got);
        // Insertion order, not key order.
        assert_eq!(got.row(0)[0], Value::Int(7));
        assert_eq!(got.row(1)[0], Value::Int(3));
        assert_eq!(got.row(2)[0], Value::Int(5));
    }

    #[test]
    fn unknown_group_rejected_like_serial() {
        let b = base();
        let mut e = engine(SyncOptions::for_workers(2), false, Some(&b));
        e.merge_chunk(frag(vec![vec![
            Value::Int(99),
            Value::Int(1),
            Value::Float(1.0),
            Value::Int(1),
        ]]))
        .ok(); // error may surface here or at finish
        let err = match e.finish() {
            Err(e) => e,
            Ok(_) => panic!("unknown key must fail"),
        };
        assert!(err.to_string().contains("unknown group key"));
    }

    #[test]
    fn bad_chunk_rejected_before_any_merge() {
        let b = base();
        let mut e = engine(SyncOptions::for_workers(2), false, Some(&b));
        // Wrong arity.
        let bad = Relation::new(
            Schema::from_pairs([("k", DataType::Int64)])
                .unwrap()
                .into_arc(),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        assert!(e.merge_chunk(bad).is_err());
        // Wrong state type (string count), mixed into a chunk with a valid
        // row: neither row may merge.
        let mixed = frag(vec![
            vec![
                Value::Int(1),
                Value::Int(1),
                Value::Float(9.0),
                Value::Int(1),
            ],
            vec![Value::Int(2), Value::str("x"), Value::Null, Value::Int(0)],
        ]);
        assert!(e.merge_chunk(mixed).is_err());
        let (got, _) = e.finish().unwrap();
        // All groups still at identity: COUNT 0 everywhere.
        assert!(got.rows().iter().all(|r| r[1] == Value::Int(0)));
    }

    #[test]
    fn state_output_matches_to_state_relation() {
        let b = base();
        let mut serial = BaseResult::from_base(&b, &[0], specs(), Vec::new()).unwrap();
        serial.merge_fragment(&site_frag(0), false).unwrap();
        serial.merge_fragment(&site_frag(1), false).unwrap();
        let expect = serial.to_state_relation().unwrap();

        let mut e = ShardedSync::new(
            SyncSpec {
                base_schema: b.schema().clone(),
                key_cols: vec![0],
                specs: specs(),
                state_types: state_types(),
                output: SyncOutput::State,
                allow_new: false,
            },
            Some(&b),
            SyncOptions::for_workers(4),
        )
        .unwrap();
        e.merge_chunk(site_frag(0)).unwrap();
        e.merge_chunk(site_frag(1)).unwrap();
        let (got, _) = e.finish().unwrap();
        rows_bits_eq(&expect, &got);
        // Unlike the serial placeholder schema, state fields carry the
        // real declared types.
        assert_eq!(got.schema().fields()[2].dtype, DataType::Float64);
    }

    #[test]
    fn hash_key_is_equality_consistent() {
        let cols = [0usize];
        let h = |v: Value| hash_key(&[v], &cols);
        assert_eq!(h(Value::Int(42)), h(Value::Float(42.0)));
        assert_eq!(h(Value::Float(0.0)), h(Value::Float(-0.0)));
        assert_eq!(h(Value::Float(f64::NAN)), h(Value::Float(-f64::NAN)));
        assert_ne!(h(Value::Int(1)), h(Value::Int(2)));
        assert_ne!(h(Value::str("ab")), h(Value::str("ba")));
    }

    #[test]
    fn sum_overflow_surfaces_from_workers() {
        let b = base();
        let mut e = ShardedSync::new(
            SyncSpec {
                base_schema: b.schema().clone(),
                key_cols: vec![0],
                specs: vec![AggSpec::sum(Expr::detail(1), "s").unwrap()],
                state_types: vec![DataType::Int64],
                output: SyncOutput::Finalized(vec![Field::new("s", DataType::Int64)]),
                allow_new: false,
            },
            Some(&b),
            SyncOptions::for_workers(2),
        )
        .unwrap();
        let schema = Schema::from_pairs([("k", DataType::Int64), ("s", DataType::Int64)])
            .unwrap()
            .into_arc();
        let big = Relation::new(schema, vec![vec![Value::Int(1), Value::Int(i64::MAX)]]).unwrap();
        e.merge_chunk(big.clone()).unwrap();
        e.merge_chunk(big).unwrap();
        let err = e.finish().unwrap_err();
        assert!(err.to_string().contains("SUM overflow"));
    }
}
