//! Coordinator-side result cache, keyed on the plan fingerprint.
//!
//! Dashboard-style workloads re-issue the same OLAP query over and over;
//! the paper's coordinator (§5) is the natural place to short-circuit
//! them, because between synchronizations it already holds the entire
//! query state (Theorem 1) — including, at the end, the final result.
//!
//! The cache key is the [`plan_fingerprint`](crate::plan_fingerprint)
//! already computed for the checkpoint WAL: the FNV-1a hash of the plan's
//! *wire encoding*, so any difference in expression, rounds, optimizer
//! flags, retry policy, or parallelism yields a different key. A 64-bit
//! hash can collide, so every entry also stores the full encoded plan and
//! a lookup compares it byte-for-byte — a collision is a recorded miss,
//! never a wrong answer.
//!
//! Two rules keep cached answers honest:
//!
//! * **Only complete results are cached.** A query that degraded to
//!   partial coverage ([`Coverage::is_complete`] false) reflects the
//!   sites that happened to be alive, not the warehouse; serving it later
//!   as an exact answer would be silent corruption. [`ResultCache::insert`]
//!   refuses such results.
//! * **Catalog changes invalidate everything.** The fingerprint covers
//!   the plan, not the data; [`ResultCache::invalidate`] must be called
//!   whenever site data changes (the `serve` layer exposes this as an
//!   explicit operation, since the simulated sites are append-only today).

use std::collections::HashMap;

use skalla_types::Relation;

use crate::checkpoint::checksum;
use crate::message::Message;
use crate::metrics::Coverage;
use crate::plan::DistPlan;

/// A cache key: the plan's fingerprint plus the full wire encoding it was
/// derived from, kept for byte-exact collision checks.
#[derive(Debug, Clone)]
pub struct PlanKey {
    /// FNV-1a hash of `bytes` — identical to
    /// [`plan_fingerprint`](crate::plan_fingerprint).
    pub fingerprint: u64,
    /// The plan's wire encoding (`Message::Plan` body).
    pub bytes: Vec<u8>,
}

impl PlanKey {
    /// Key a plan: encode it exactly as it would go over the wire and
    /// hash the encoding.
    pub fn of(plan: &DistPlan) -> PlanKey {
        let bytes = Message::Plan(plan.clone()).to_wire().to_vec();
        PlanKey {
            fingerprint: checksum(&bytes),
            bytes,
        }
    }
}

/// One cached result.
struct Slot {
    /// Full encoded plan, compared byte-for-byte on lookup.
    plan_bytes: Vec<u8>,
    /// Insertion order, for FIFO eviction.
    seq: u64,
    result: Relation,
}

/// Counters exposed by [`ResultCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including collisions and post-invalidation
    /// lookups).
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Results refused because their coverage was incomplete.
    pub rejected_partial: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Lookups whose fingerprint matched a stored entry but whose plan
    /// bytes did not (64-bit hash collision, counted as a miss).
    pub collisions: u64,
    /// Times the whole cache was invalidated (catalog change).
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// A bounded map from plan fingerprint to final result relation.
///
/// Not internally synchronized — the serving scheduler owns one behind
/// its own lock.
pub struct ResultCache {
    capacity: usize,
    map: HashMap<u64, Vec<Slot>>,
    len: usize,
    seq: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results. A capacity of
    /// zero disables caching (every lookup misses, every insert is a
    /// no-op).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::new(),
            len: 0,
            seq: 0,
            stats: CacheStats::default(),
        }
    }

    /// Look up a plan. A hit requires both the fingerprint and the full
    /// plan encoding to match; a fingerprint-only match is a collision
    /// and reported as a miss.
    pub fn lookup(&mut self, key: &PlanKey) -> Option<Relation> {
        let slots = self.map.get(&key.fingerprint);
        let hit = slots.and_then(|v| v.iter().find(|s| s.plan_bytes == key.bytes));
        match hit {
            Some(s) => {
                self.stats.hits += 1;
                Some(s.result.clone())
            }
            None => {
                if slots.is_some_and(|v| !v.is_empty()) {
                    self.stats.collisions += 1;
                }
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store a result, refusing incomplete coverage: a partial answer
    /// must never be replayed as an exact one. Returns whether the result
    /// was stored. Replaces an existing entry for the same plan; evicts
    /// the oldest entry when at capacity.
    pub fn insert(&mut self, key: &PlanKey, result: Relation, coverage: Option<Coverage>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if !coverage.is_some_and(|c| c.is_complete()) {
            self.stats.rejected_partial += 1;
            return false;
        }
        let slots = self.map.entry(key.fingerprint).or_default();
        if let Some(s) = slots.iter_mut().find(|s| s.plan_bytes == key.bytes) {
            s.result = result;
            return true;
        }
        self.seq += 1;
        slots.push(Slot {
            plan_bytes: key.bytes.clone(),
            seq: self.seq,
            result,
        });
        self.len += 1;
        self.stats.insertions += 1;
        if self.len > self.capacity {
            self.evict_oldest();
        }
        true
    }

    /// Drop every entry. Must be called whenever site data changes: the
    /// key fingerprints the plan, not the data under it.
    pub fn invalidate(&mut self) {
        self.map.clear();
        self.len = 0;
        self.stats.invalidations += 1;
    }

    /// Current counters (plus entry count).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len,
            ..self.stats
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no results.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn evict_oldest(&mut self) {
        let oldest = self
            .map
            .iter()
            .flat_map(|(fp, v)| v.iter().map(move |s| (s.seq, *fp)))
            .min();
        if let Some((seq, fp)) = oldest {
            if let Some(v) = self.map.get_mut(&fp) {
                v.retain(|s| s.seq != seq);
                if v.is_empty() {
                    self.map.remove(&fp);
                }
            }
            self.len -= 1;
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::plan_fingerprint;
    use crate::plan::DistPlan;
    use skalla_expr::Expr;
    use skalla_gmdj::{AggSpec, BaseSpec, GmdjBlock, GmdjExpr, GmdjOp};
    use skalla_types::{DataType, Schema, Value};

    fn rel(n: i64) -> Relation {
        Relation::new(
            Schema::from_pairs([("x", DataType::Int64)])
                .unwrap()
                .into_arc(),
            (0..n).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap()
    }

    fn plan(agg_name: &str) -> DistPlan {
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star(agg_name)],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        DistPlan::unoptimized(
            GmdjExpr::new(
                BaseSpec::DistinctProject { cols: vec![0] },
                "flow",
                vec![op],
                vec![0],
            )
            .unwrap(),
        )
    }

    fn complete() -> Option<Coverage> {
        Some(Coverage {
            responded: 4,
            total: 4,
        })
    }

    #[test]
    fn key_matches_wal_fingerprint() {
        let p = plan("cnt");
        assert_eq!(PlanKey::of(&p).fingerprint, plan_fingerprint(&p));
    }

    #[test]
    fn hit_requires_exact_plan_bytes() {
        let mut c = ResultCache::new(8);
        let k1 = PlanKey::of(&plan("cnt"));
        assert!(c.lookup(&k1).is_none());
        assert!(c.insert(&k1, rel(3), complete()));
        assert_eq!(c.lookup(&k1).unwrap(), rel(3));

        // A forged key with the same fingerprint but different plan bytes
        // (simulated 64-bit collision) must miss, not serve k1's result.
        let forged = PlanKey {
            fingerprint: k1.fingerprint,
            bytes: PlanKey::of(&plan("other")).bytes,
        };
        assert!(c.lookup(&forged).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.collisions, 1);
        assert_eq!(s.misses, 2); // initial miss + collision miss
    }

    #[test]
    fn colliding_entries_coexist() {
        let mut c = ResultCache::new(8);
        let k1 = PlanKey::of(&plan("a"));
        // Forge a second key colliding with k1 and insert both.
        let k2 = PlanKey {
            fingerprint: k1.fingerprint,
            bytes: PlanKey::of(&plan("b")).bytes,
        };
        assert!(c.insert(&k1, rel(1), complete()));
        assert!(c.insert(&k2, rel(2), complete()));
        assert_eq!(c.lookup(&k1).unwrap(), rel(1));
        assert_eq!(c.lookup(&k2).unwrap(), rel(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn partial_coverage_is_never_cached() {
        let mut c = ResultCache::new(8);
        let k = PlanKey::of(&plan("cnt"));
        assert!(!c.insert(
            &k,
            rel(1),
            Some(Coverage {
                responded: 3,
                total: 4
            })
        ));
        assert!(!c.insert(&k, rel(1), None));
        assert!(c.lookup(&k).is_none());
        assert_eq!(c.stats().rejected_partial, 2);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn invalidation_clears_everything() {
        let mut c = ResultCache::new(8);
        let k = PlanKey::of(&plan("cnt"));
        c.insert(&k, rel(2), complete());
        assert!(c.lookup(&k).is_some());
        c.invalidate();
        assert!(c.lookup(&k).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = ResultCache::new(2);
        let k1 = PlanKey::of(&plan("a"));
        let k2 = PlanKey::of(&plan("b"));
        let k3 = PlanKey::of(&plan("c"));
        c.insert(&k1, rel(1), complete());
        c.insert(&k2, rel(2), complete());
        c.insert(&k3, rel(3), complete());
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&k1).is_none()); // oldest evicted
        assert!(c.lookup(&k2).is_some());
        assert!(c.lookup(&k3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = ResultCache::new(2);
        let k = PlanKey::of(&plan("a"));
        c.insert(&k, rel(1), complete());
        c.insert(&k, rel(5), complete());
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&k).unwrap(), rel(5));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        let k = PlanKey::of(&plan("a"));
        assert!(!c.insert(&k, rel(1), complete()));
        assert!(c.lookup(&k).is_none());
    }
}
