//! Multi-tier coordinator topology (paper §6 future work).
//!
//! The paper's conclusions propose "a multi-tiered coordinator architecture
//! or spanning-tree networks" as future research. This module implements a
//! two-level tree: the root coordinator talks to `k` **mid-tier
//! coordinators**, each of which fronts a cluster of sites. Mid-tiers relay
//! requests downward and — crucially — *pre-synchronize* their cluster's
//! fragments before forwarding one merged fragment upward. Sub-aggregate
//! state merges associatively (Theorem 1), so tiered synchronization is
//! exact, and the root link carries one fragment per cluster instead of one
//! per site.
//!
//! Limitations (documented, not silent): coordinator-side group-reduction
//! filters are per-*site* while the root only addresses mid-tiers, so
//! [`TieredWarehouse::execute`] ignores `coord_filters` (dropping a
//! reduction is always sound).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use skalla_gmdj::AggSpec;
use skalla_net::{CostModel, Endpoint, FaultPlan, NodeId, SimNetwork};
use skalla_storage::Catalog;
use skalla_types::{DataType, Relation, Result, Schema, SkallaError};

use crate::baseresult::BaseResult;
use crate::message::Message;
use crate::metrics::ExecMetrics;
use crate::plan::{DistPlan, RetryPolicy};
use crate::site::run_site_with_parent;
use crate::sync::{ShardedSync, SyncOptions, SyncOutput, SyncSpec};
use crate::warehouse::DistributedWarehouse;

/// The structure a mid-tier pre-synchronizes its cluster's fragments into:
/// serial, or the sharded pipeline when the plan carries
/// `coord_parallelism > 1` (the same knob the root uses — every tier of the
/// tree runs the same synchronization engine).
enum ClusterSync {
    Serial(BaseResult),
    Sharded(ShardedSync),
}

/// A two-level warehouse: root coordinator → mid-tier coordinators → sites.
pub struct TieredWarehouse {
    root: DistributedWarehouse,
    num_mid: usize,
    num_leaf_sites: usize,
}

impl TieredWarehouse {
    /// Launch `catalogs.len()` sites clustered under mid-tier coordinators
    /// of at most `fanout` sites each.
    ///
    /// Node ids: root = 0, mid-tiers = 1..=k, sites = k+1..=k+n.
    pub fn launch(
        catalogs: Vec<Catalog>,
        fanout: usize,
        cost: CostModel,
    ) -> Result<TieredWarehouse> {
        Self::launch_with_faults(catalogs, fanout, cost, FaultPlan::none())
    }

    /// [`TieredWarehouse::launch`] with deterministic fault injection
    /// threaded into every link of the tree — root↔mid-tier and
    /// mid-tier↔site alike — so crashes inside a cluster can be exercised
    /// reproducibly. A crashed leaf surfaces at its mid-tier as a recv
    /// deadline (derived from the plan's retry policy) and travels upward
    /// as an `Error` reply, which the root handles through the same
    /// retry/degradation ladder as a flat warehouse.
    pub fn launch_with_faults(
        catalogs: Vec<Catalog>,
        fanout: usize,
        cost: CostModel,
        faults: FaultPlan,
    ) -> Result<TieredWarehouse> {
        let n = catalogs.len();
        if n == 0 {
            return Err(SkallaError::plan("warehouse needs at least one site"));
        }
        if fanout == 0 {
            return Err(SkallaError::plan("fanout must be positive"));
        }
        let k = n.div_ceil(fanout);

        let mut schemas: HashMap<String, Arc<Schema>> = HashMap::new();
        for c in &catalogs {
            for name in c.table_names() {
                let t = c.get(name)?;
                schemas
                    .entry(name.to_string())
                    .or_insert_with(|| t.schema().clone());
            }
        }

        let (net, mut endpoints) = SimNetwork::full_mesh_with_faults(1 + k + n, cost, faults);
        let mut site_endpoints: Vec<Endpoint> = endpoints.drain(1 + k..).collect();
        let mut mid_endpoints: Vec<Endpoint> = endpoints.drain(1..).collect();
        let coord = endpoints.pop().expect("root endpoint");

        let mut handles = Vec::with_capacity(k + n);

        // Sites report to their mid-tier parent.
        let mut children_of: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (i, catalog) in catalogs.into_iter().enumerate() {
            let site_id = (1 + k + i) as NodeId;
            let mid = i / fanout;
            children_of[mid].push(site_id);
            let parent = (1 + mid) as NodeId;
            let ep = site_endpoints.remove(0);
            debug_assert_eq!(ep.id(), site_id);
            handles.push(std::thread::spawn(move || {
                run_site_with_parent(ep, catalog, parent)
            }));
        }

        // Mid-tiers relay between the root and their cluster.
        for (mid, children) in children_of.into_iter().enumerate() {
            let ep = mid_endpoints.remove(0);
            debug_assert_eq!(ep.id(), (1 + mid) as NodeId);
            handles.push(std::thread::spawn(move || run_midtier(ep, children)));
        }

        let root = DistributedWarehouse {
            net,
            coord,
            handles,
            num_sites: k, // the root's children are the mid-tiers
            schemas,
            epoch: std::sync::atomic::AtomicU64::new(0),
            replicas: None,
            skew_loads: parking_lot::Mutex::new(HashMap::new()),
        };
        Ok(TieredWarehouse {
            root,
            num_mid: k,
            num_leaf_sites: n,
        })
    }

    /// Number of mid-tier coordinators.
    pub fn num_mid_tiers(&self) -> usize {
        self.num_mid
    }

    /// Number of leaf sites.
    pub fn num_leaf_sites(&self) -> usize {
        self.num_leaf_sites
    }

    /// The simulated network.
    pub fn network(&self) -> &SimNetwork {
        self.root.network()
    }

    /// Execute a plan through the tree. Coordinator-side filters are
    /// dropped (see module docs); every other optimization applies.
    pub fn execute(&self, plan: &DistPlan) -> Result<(Relation, ExecMetrics)> {
        let mut plan = plan.clone();
        for r in &mut plan.rounds {
            r.coord_filters = None;
        }
        self.root.execute(&plan)
    }

    /// The ship-all-detail baseline through the tree: mid-tiers union their
    /// cluster's raw partitions before forwarding.
    pub fn execute_ship_all(
        &self,
        expr: &skalla_gmdj::GmdjExpr,
    ) -> Result<(Relation, ExecMetrics)> {
        self.root.execute_ship_all(expr)
    }

    /// Shut down mid-tiers (which shut down their sites) and join all
    /// threads.
    pub fn shutdown(self) -> Result<()> {
        self.root.shutdown()
    }
}

/// The mid-tier relay loop.
fn run_midtier(endpoint: Endpoint, children: Vec<NodeId>) {
    let mut state = MidState {
        plan: None,
        epoch: 0,
        round: 0,
    };
    loop {
        let env = match endpoint.recv() {
            Ok(e) => e,
            Err(_) => return,
        };
        // Only root messages drive the relay; child replies are collected
        // synchronously inside each handler. A reply that arrives here is a
        // straggler from a timed-out collection (e.g. a live leaf answering
        // after a crashed sibling exhausted the recv budget) — drop it.
        if env.src != 0 {
            continue;
        }
        let (epoch, round, msg) = match Message::from_wire_framed(&env.payload) {
            Ok(m) => m,
            Err(e) => {
                let _ = endpoint.send(
                    0,
                    Message::Error {
                        msg: e.to_string(),
                        corrupt: false,
                    }
                    .to_wire_framed(0, 0),
                );
                continue;
            }
        };
        let shutdown = matches!(msg, Message::Shutdown);
        state.epoch = epoch;
        state.round = round;
        match state.handle(&endpoint, &children, msg) {
            Ok(responses) => {
                for resp in responses {
                    if endpoint.send(0, resp.to_wire_framed(epoch, round)).is_err() {
                        return;
                    }
                }
            }
            Err(e) => {
                let _ = endpoint.send(
                    0,
                    Message::Error {
                        msg: e.to_string(),
                        corrupt: e.is_corrupt(),
                    }
                    .to_wire_framed(epoch, round),
                );
            }
        }
        if shutdown {
            return;
        }
    }
}

struct MidState {
    plan: Option<DistPlan>,
    /// Epoch of the request currently being relayed (stamped on downward
    /// forwards, used to filter child replies).
    epoch: u64,
    /// Round number of the request currently being relayed (echoed by the
    /// children and back to the root).
    round: u32,
}

impl MidState {
    fn handle(&mut self, ep: &Endpoint, children: &[NodeId], msg: Message) -> Result<Vec<Message>> {
        match msg {
            Message::Plan(p) => {
                for &c in children {
                    ep.send(
                        c,
                        Message::Plan(p.clone()).to_wire_framed(self.epoch, self.round),
                    )?;
                }
                self.plan = Some(p);
                Ok(Vec::new())
            }
            Message::Shutdown => {
                for &c in children {
                    let _ = ep.send(c, Message::Shutdown.to_wire_framed(self.epoch, self.round));
                }
                Ok(Vec::new())
            }
            Message::ComputeBase { parts, task } => {
                for &c in children {
                    ep.send(
                        c,
                        Message::ComputeBase {
                            parts: parts.clone(),
                            task,
                        }
                        .to_wire_framed(self.epoch, self.round),
                    )?;
                }
                let mut combined: Option<Relation> = None;
                let mut max_s: f64 = 0.0;
                let mut sketches = Vec::new();
                for _ in children {
                    match self.recv(ep)? {
                        Message::BaseFragment {
                            rel,
                            compute_s,
                            sketch,
                            ..
                        } => {
                            max_s = max_s.max(compute_s);
                            sketches.extend(sketch);
                            match &mut combined {
                                None => combined = Some(rel),
                                Some(acc) => acc.union_all(rel)?,
                            }
                        }
                        other => {
                            return Err(SkallaError::exec(format!(
                                "mid-tier expected BaseFragment, got {other:?}"
                            )))
                        }
                    }
                }
                let rel = combined
                    .ok_or_else(|| SkallaError::exec("mid-tier cluster is empty"))?
                    .distinct();
                Ok(vec![Message::BaseFragment {
                    rel,
                    compute_s: max_s,
                    task,
                    sketch: sketches,
                }])
            }
            Message::Round {
                op_idx,
                base,
                parts,
                task,
            } => {
                let specs = self.segment_specs(op_idx as usize, op_idx as usize)?;
                for &c in children {
                    ep.send(
                        c,
                        Message::Round {
                            op_idx,
                            base: base.clone(),
                            parts: parts.clone(),
                            task,
                        }
                        .to_wire_framed(self.epoch, self.round),
                    )?;
                }
                let (merged, max_s, bc, bi, sketches, seg) =
                    self.merge_cluster(ep, children.len(), specs)?;
                Ok(vec![Message::RoundResult {
                    op_idx,
                    seq: 0,
                    h: merged,
                    compute_s: max_s,
                    blocks_compiled: bc,
                    blocks_interpreted: bi,
                    last: true,
                    task,
                    sketch: sketches,
                    segments_scanned: seg.scanned,
                    segments_pruned: seg.pruned,
                    blocks_verified: seg.blocks_verified,
                }])
            }
            Message::LocalRun {
                start,
                end,
                base,
                parts,
                task,
            } => {
                let specs = self.segment_specs(start as usize, end as usize)?;
                for &c in children {
                    ep.send(
                        c,
                        Message::LocalRun {
                            start,
                            end,
                            base: base.clone(),
                            parts: parts.clone(),
                            task,
                        }
                        .to_wire_framed(self.epoch, self.round),
                    )?;
                }
                let (merged, max_s, bc, bi, sketches, seg) =
                    self.merge_cluster(ep, children.len(), specs)?;
                Ok(vec![Message::LocalRunResult {
                    end,
                    seq: 0,
                    ship: merged,
                    compute_s: max_s,
                    blocks_compiled: bc,
                    blocks_interpreted: bi,
                    last: true,
                    task,
                    sketch: sketches,
                    segments_scanned: seg.scanned,
                    segments_pruned: seg.pruned,
                    blocks_verified: seg.blocks_verified,
                }])
            }
            Message::ScrubRequest => {
                // Fan the scrub out and concatenate the cluster's reports:
                // the root sees one flat entry list per mid-tier, exactly
                // as if the leaves were its direct children.
                for &c in children {
                    ep.send(
                        c,
                        Message::ScrubRequest.to_wire_framed(self.epoch, self.round),
                    )?;
                }
                let mut entries = Vec::new();
                for _ in children {
                    match self.recv(ep)? {
                        Message::ScrubReport { entries: e } => entries.extend(e),
                        other => {
                            return Err(SkallaError::exec(format!(
                                "mid-tier expected ScrubReport, got {other:?}"
                            )))
                        }
                    }
                }
                Ok(vec![Message::ScrubReport { entries }])
            }
            Message::ShipAllRequest { table } => {
                for &c in children {
                    ep.send(
                        c,
                        Message::ShipAllRequest {
                            table: table.clone(),
                        }
                        .to_wire_framed(self.epoch, self.round),
                    )?;
                }
                let mut combined: Option<Relation> = None;
                let mut total_s = 0.0;
                for _ in children {
                    match self.recv(ep)? {
                        Message::ShipAllData { rel, compute_s } => {
                            total_s += compute_s;
                            match &mut combined {
                                None => combined = Some(rel),
                                Some(acc) => acc.union_all(rel)?,
                            }
                        }
                        other => {
                            return Err(SkallaError::exec(format!(
                                "mid-tier expected ShipAllData, got {other:?}"
                            )))
                        }
                    }
                }
                Ok(vec![Message::ShipAllData {
                    rel: combined.ok_or_else(|| SkallaError::exec("mid-tier cluster is empty"))?,
                    compute_s: total_s,
                }])
            }
            other => Err(SkallaError::exec(format!(
                "mid-tier received unexpected message {other:?}"
            ))),
        }
    }

    /// Collect one child reply, bounded by the plan's full retry budget
    /// (the sum of every attempt window). A crashed or silent child turns
    /// into an error instead of hanging the mid-tier forever; the error
    /// travels upward as an `Error` reply, where the root's own
    /// retry/degradation ladder takes over.
    fn recv(&self, ep: &Endpoint) -> Result<Message> {
        let deadline = Instant::now() + self.recv_budget();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(SkallaError::exec(
                    "cluster child did not respond within the retry budget",
                ));
            }
            let Some(env) = ep.try_recv_for(remaining)? else {
                continue; // loop re-checks the deadline
            };
            let (epoch, round, msg) = Message::from_wire_framed(&env.payload)?;
            if epoch != self.epoch || round != self.round {
                continue; // straggler from an aborted query or earlier round
            }
            if let Message::Error { msg, corrupt } = msg {
                let m = format!("site {}: {msg}", env.src);
                // Keep the corruption marker as the error crosses the
                // tier: the root skips its retry budget for it.
                return Err(if corrupt {
                    SkallaError::corrupt(m)
                } else {
                    SkallaError::exec(m)
                });
            }
            return Ok(msg);
        }
    }

    /// The total time this mid-tier will wait on any one child reply:
    /// the installed plan's attempt windows summed (so the subtree never
    /// gives up before the root would), or the default policy's budget
    /// when no plan is installed (ship-all).
    fn recv_budget(&self) -> Duration {
        let default_retry = RetryPolicy::default();
        let retry = self.plan.as_ref().map_or(&default_retry, |p| &p.retry);
        (0..=retry.max_retries)
            .map(|a| retry.deadline_for_attempt(a))
            .sum()
    }

    /// Flattened aggregate specs for the segment `start..=end`.
    fn segment_specs(&self, start: usize, end: usize) -> Result<Vec<AggSpec>> {
        let plan = self
            .plan
            .as_ref()
            .ok_or_else(|| SkallaError::exec("no plan installed at mid-tier"))?;
        if end >= plan.expr.ops.len() || start > end {
            return Err(SkallaError::exec("segment out of range at mid-tier"));
        }
        let mut specs = Vec::new();
        for op in &plan.expr.ops[start..=end] {
            specs.extend(op.all_aggs().cloned());
        }
        Ok(specs)
    }

    /// Pre-synchronize the cluster's fragments (handles row-blocked chunks)
    /// and return the merged state relation, the slowest child time, the
    /// cluster's summed compiled/interpreted block counts, the children's
    /// concatenated skew sketches (relayed upward so the root still learns
    /// per-partition loads through the tree), and the cluster's summed
    /// segment scan/prune counters.
    #[allow(clippy::type_complexity)]
    fn merge_cluster(
        &self,
        ep: &Endpoint,
        num_children: usize,
        specs: Vec<AggSpec>,
    ) -> Result<(
        Relation,
        f64,
        u32,
        u32,
        Vec<skalla_storage::PartSketch>,
        skalla_gmdj::SegScanStats,
    )> {
        let plan = self.plan.as_ref().expect("checked in segment_specs");
        let key = plan.expr.key.clone();
        let workers = plan.coord_parallelism;
        let sync_shards = plan.sync_shards;
        let state_width: usize = specs.iter().map(AggSpec::state_width).sum();

        let mut x: Option<ClusterSync> = None;
        let mut pending = num_children;
        let mut max_s: f64 = 0.0;
        let mut total_bc = 0u32;
        let mut total_bi = 0u32;
        let mut sketches = Vec::new();
        let mut seg = skalla_gmdj::SegScanStats::default();
        while pending > 0 {
            let (h, compute_s, bc, bi, last, sketch, scanned, pruned, blk_v) =
                match self.recv(ep)? {
                    Message::RoundResult {
                        h,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                        ..
                    } => (
                        h,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                    ),
                    Message::LocalRunResult {
                        ship,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                        ..
                    } => (
                        ship,
                        compute_s,
                        blocks_compiled,
                        blocks_interpreted,
                        last,
                        sketch,
                        segments_scanned,
                        segments_pruned,
                        blocks_verified,
                    ),
                    other => {
                        return Err(SkallaError::exec(format!(
                            "mid-tier expected round result, got {other:?}"
                        )))
                    }
                };
            if last {
                max_s = max_s.max(compute_s);
                total_bc += bc;
                total_bi += bi;
                sketches.extend(sketch);
                seg.scanned += scanned;
                seg.pruned += pruned;
                seg.blocks_verified += blk_v;
                pending -= 1;
            }
            let x = match &mut x {
                Some(x) => x,
                None => {
                    // Lazily shape the structure from the first fragment:
                    // its schema is base columns followed by state columns.
                    if h.schema().len() < state_width {
                        return Err(SkallaError::exec("fragment narrower than aggregate state"));
                    }
                    let base_width = h.schema().len() - state_width;
                    let base_cols: Vec<usize> = (0..base_width).collect();
                    let base_schema = Arc::new(h.schema().project(&base_cols)?);
                    let sync = if workers > 1 {
                        // Declared state types come off the fragment's
                        // schema tail (site ship schemas carry them).
                        let state_types: Vec<DataType> = h.schema().fields()[base_width..]
                            .iter()
                            .map(|f| f.dtype)
                            .collect();
                        ClusterSync::Sharded(ShardedSync::new(
                            SyncSpec {
                                base_schema,
                                key_cols: key.clone(),
                                specs: specs.clone(),
                                state_types,
                                output: SyncOutput::State,
                                allow_new: true,
                            },
                            None,
                            match sync_shards {
                                Some(s) => SyncOptions::for_workers(workers).with_shards(s),
                                None => SyncOptions::for_workers(workers),
                            },
                        )?)
                    } else {
                        ClusterSync::Serial(BaseResult::empty(
                            base_schema,
                            &key,
                            specs.clone(),
                            Vec::new(),
                        ))
                    };
                    x = Some(sync);
                    x.as_mut().expect("just set")
                }
            };
            match x {
                ClusterSync::Serial(b) => b.merge_fragment(&h, true)?,
                ClusterSync::Sharded(s) => s.merge_chunk(h)?,
            }
        }
        let merged = match x {
            Some(ClusterSync::Serial(b)) => b.to_state_relation()?,
            Some(ClusterSync::Sharded(s)) => s.finish()?.0,
            None => return Err(SkallaError::exec("mid-tier cluster produced no fragments")),
        };
        Ok((merged, max_s, total_bc, total_bi, sketches, seg))
    }
}
