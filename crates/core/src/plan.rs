//! Distributed evaluation plans.
//!
//! A [`DistPlan`] is what the Skalla query generator hands to the mediator
//! (paper §3.1): the (possibly coalesced) GMDJ expression plus, per round,
//! which reductions apply. Plans are built either directly (see
//! [`DistPlan::unoptimized`]) or by the Egil optimizer in `skalla-planner`.

use std::time::Duration;

use skalla_expr::Expr;
use skalla_gmdj::GmdjExpr;
use skalla_types::{Relation, Result, SkallaError};

/// Which optimizations a plan was built with (informational; execution is
/// driven by the per-round specs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptFlags {
    /// GMDJ coalescing (paper §4.3).
    pub coalesce: bool,
    /// Distribution-independent (site-side) group reduction (Prop. 1).
    pub site_group_reduction: bool,
    /// Distribution-aware (coordinator-side) group reduction (Thm. 4).
    pub coord_group_reduction: bool,
    /// Synchronization reduction (Prop. 2 / Thm. 5 / Cor. 1).
    pub sync_reduction: bool,
}

impl OptFlags {
    /// Everything off (the baseline Alg. GMDJDistribEval).
    pub fn none() -> OptFlags {
        OptFlags::default()
    }

    /// Everything on.
    pub fn all() -> OptFlags {
        OptFlags {
            coalesce: true,
            site_group_reduction: true,
            coord_group_reduction: true,
            sync_reduction: true,
        }
    }
}

/// What the coordinator does with a site that stays silent (or keeps
/// failing) after the whole retry budget of a round is spent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// Fail the query with an error naming the unresponsive site.
    #[default]
    Fail,
    /// Synchronize from the sites that did respond; the result is marked
    /// with its coverage (`k/n` sites) in the execution metrics.
    Partial,
    /// Re-plan the wave instead of degrading: bump the epoch, reassign the
    /// dead site's partitions to surviving replicas, and re-request just
    /// those partitions, yielding a result bit-for-bit identical to the
    /// fault-free run. Requires the warehouse to have been launched with
    /// replication (see `DistributedWarehouse::launch_replicated`); when a
    /// partition has no surviving replica, the mode falls back to
    /// [`Partial`](DegradedMode::Partial) semantics for that partition —
    /// the degradation ladder is Failover → Partial → Fail.
    Failover,
}

/// Per-round deadline and retry budget for the coordinator's collect loop.
///
/// Round requests are idempotent (sites deduplicate by `(epoch, round)` and
/// replay their cached reply; the coordinator deduplicates reply chunks by
/// sequence number), so re-sending after a deadline is always safe.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// How long the coordinator waits for a round's replies before
    /// re-sending the round request to the silent sites.
    pub deadline: Duration,
    /// How many times a round request is re-sent before the site is
    /// declared unresponsive.
    pub max_retries: u32,
    /// Deadline multiplier applied on each successive retry (exponential
    /// backoff); clamped to at least `1.0`.
    pub backoff: f64,
    /// What to do once the retry budget is exhausted.
    pub degraded: DegradedMode,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline: Duration::from_secs(10),
            max_retries: 3,
            backoff: 2.0,
            degraded: DegradedMode::Fail,
        }
    }
}

impl RetryPolicy {
    /// The deadline for retry attempt `attempt` (attempt 0 is the first
    /// wait), with backoff applied.
    pub fn deadline_for_attempt(&self, attempt: u32) -> Duration {
        let factor = self.backoff.max(1.0).powi(attempt.min(16) as i32);
        self.deadline.mul_f64(factor)
    }
}

/// Skew-aware execution knobs: hot-partition splitting and mid-round
/// straggler offload. Both apply only under replicated placement with
/// [`DegradedMode::Failover`] (they reuse the partition-explicit request
/// and chunk-staging machinery), and both preserve bit-for-bit exactness —
/// splitting addresses disjoint row ranges whose sub-aggregates merge
/// additively, and offload races idempotent recomputation on a replica
/// against the straggler with a first-complete-wins resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewPolicy {
    /// Split hot partitions into row-range fragments across surviving ring
    /// replicas, using the per-partition cardinalities learned from the
    /// sites' round-reply sketches.
    pub split: bool,
    /// A partition is *hot* when its learned detail cardinality exceeds
    /// `split_threshold ×` the mean over assigned partitions.
    pub split_threshold: f64,
    /// Cap on fragments per split partition (`0` = automatic: slices of
    /// roughly a quarter of the mean load, at most 16).
    pub max_split: usize,
    /// Mid-round, offload a straggler's entire remaining work to an idle
    /// replica and let the first complete reply win.
    pub offload: bool,
    /// A site is a straggler once the round has run longer than
    /// `offload_factor ×` the median completion time of the sites that
    /// already finished (and at least half have).
    pub offload_factor: f64,
}

impl Default for SkewPolicy {
    fn default() -> Self {
        SkewPolicy {
            split: false,
            split_threshold: 1.5,
            max_split: 0,
            offload: false,
            offload_factor: 3.0,
        }
    }
}

impl SkewPolicy {
    /// Everything off (the static uniform layout).
    pub fn disabled() -> SkewPolicy {
        SkewPolicy::default()
    }

    /// `true` when neither mechanism is enabled.
    pub fn is_disabled(&self) -> bool {
        !self.split && !self.offload
    }
}

/// How the initial base-values relation `B₀` is obtained and synchronized.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseRound {
    /// Sites compute their local `B₀ᵢ` fragments, ship them, and the
    /// coordinator deduplicates (the default round 0 of
    /// Alg. GMDJDistribEval).
    Distributed,
    /// Proposition 2: the base is computed *locally at each site* and never
    /// synchronized; the first evaluation segment starts from the local
    /// fragments.
    LocalOnly,
    /// The client supplied an explicit base-values relation held at the
    /// coordinator; no base round is needed.
    Coordinator(Relation),
}

/// Per-GMDJ-operator execution options.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSpec {
    /// Sites ship only groups with `|RNG| > 0` (Proposition 1).
    pub site_group_reduction: bool,
    /// Per-site base filters `¬ψᵢ` applied by the coordinator before
    /// shipping (Theorem 4); `None` disables. A `FALSE` filter excludes the
    /// site from the round entirely.
    pub coord_filters: Option<Vec<Expr>>,
    /// Do **not** synchronize after this operator: the next operator
    /// consumes each site's local result directly (Theorem 5 / Corollary 1).
    /// Must be `false` on the last operator.
    pub local_only: bool,
}

impl RoundSpec {
    /// The unoptimized round: full base shipped, full results returned,
    /// synchronize afterwards.
    pub fn basic() -> RoundSpec {
        RoundSpec {
            site_group_reduction: false,
            coord_filters: None,
            local_only: false,
        }
    }
}

/// A maximal execution unit between synchronizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// One operator evaluated with a synchronization after it.
    Standard {
        /// Operator index.
        op: usize,
    },
    /// Operators `start..=end` evaluated locally at each site with a single
    /// synchronization after `end`.
    LocalRun {
        /// First operator index.
        start: usize,
        /// Last operator index (inclusive).
        end: usize,
    },
}

/// A distributed evaluation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DistPlan {
    /// The (possibly coalesced) expression to evaluate.
    pub expr: GmdjExpr,
    /// How `B₀` is produced.
    pub base_round: BaseRound,
    /// One spec per operator in `expr.ops`.
    pub rounds: Vec<RoundSpec>,
    /// The optimizations that produced this plan.
    pub flags: OptFlags,
    /// Row blocking (paper §3.2/§4): sites ship result relations in chunks
    /// of at most this many rows, letting the coordinator synchronize
    /// fragments from fast sites while slower sites are still computing.
    /// `None` ships each result whole.
    pub block_rows: Option<usize>,
    /// Threads each site uses for its local GMDJ scans (Theorem 1 applied
    /// within the site); `0`/`1` evaluates serially.
    pub site_parallelism: usize,
    /// Merge workers the coordinator (and every mid-tier) uses for
    /// synchronization via the sharded pipeline; `0`/`1` uses the serial
    /// [`BaseResult`](crate::baseresult::BaseResult) path.
    pub coord_parallelism: usize,
    /// Hash shards of the synchronization group space (rounded up to a
    /// power of two). `None` picks the [`crate::sync::SyncOptions`]
    /// default of 4 shards per worker.
    pub sync_shards: Option<usize>,
    /// Coordinator deadline/retry budget and degradation behavior for
    /// every synchronization round.
    pub retry: RetryPolicy,
    /// Skew-aware execution: hot-partition splitting across replicas and
    /// mid-round straggler offload. Disabled by default.
    pub skew: SkewPolicy,
    /// Zone-map segment pruning for segment-backed (out-of-core) detail
    /// partitions: a site skips decoding any segment whose footer zone
    /// maps refute every block's condition. Pruning is sound — a skipped
    /// segment provably contains no matching row — so it defaults to on;
    /// turning it off forces full scans (the `BENCH_9` baseline).
    pub segment_prune: bool,
}

impl DistPlan {
    /// The baseline plan: distributed base round, no reductions, one
    /// synchronization per operator — exactly Alg. GMDJDistribEval.
    pub fn unoptimized(expr: GmdjExpr) -> DistPlan {
        let rounds = expr.ops.iter().map(|_| RoundSpec::basic()).collect();
        let base_round = match &expr.base {
            skalla_gmdj::BaseSpec::Relation(r) => BaseRound::Coordinator(r.clone()),
            skalla_gmdj::BaseSpec::DistinctProject { .. } => BaseRound::Distributed,
        };
        DistPlan {
            expr,
            base_round,
            rounds,
            flags: OptFlags::none(),
            block_rows: None,
            site_parallelism: 1,
            coord_parallelism: 1,
            sync_shards: None,
            retry: RetryPolicy::default(),
            skew: SkewPolicy::disabled(),
            segment_prune: true,
        }
    }

    /// Enable row blocking with the given chunk size.
    pub fn with_block_rows(mut self, rows: usize) -> DistPlan {
        self.block_rows = Some(rows.max(1));
        self
    }

    /// Set the per-site scan parallelism.
    pub fn with_site_parallelism(mut self, threads: usize) -> DistPlan {
        self.site_parallelism = threads.max(1);
        self
    }

    /// Set the coordinator (and mid-tier) synchronization parallelism:
    /// with `workers > 1` every synchronization runs through the sharded
    /// pipeline of [`crate::sync::ShardedSync`].
    pub fn with_coord_parallelism(mut self, workers: usize) -> DistPlan {
        self.coord_parallelism = workers.max(1);
        self
    }

    /// Override the synchronization shard count (rounded up to a power of
    /// two by the sync engine).
    pub fn with_sync_shards(mut self, shards: usize) -> DistPlan {
        self.sync_shards = Some(shards.max(1));
        self
    }

    /// Set the coordinator retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> DistPlan {
        self.retry = retry;
        self
    }

    /// Set only the degradation behavior, keeping the rest of the retry
    /// policy.
    pub fn with_degraded_mode(mut self, mode: DegradedMode) -> DistPlan {
        self.retry.degraded = mode;
        self
    }

    /// Enable or disable zone-map segment pruning for out-of-core scans.
    pub fn with_segment_prune(mut self, on: bool) -> DistPlan {
        self.segment_prune = on;
        self
    }

    /// Install a full skew policy.
    pub fn with_skew(mut self, skew: SkewPolicy) -> DistPlan {
        self.skew = skew;
        self
    }

    /// Enable hot-partition splitting at the given imbalance threshold
    /// (clamped to at least 1.0; splitting below the mean is meaningless).
    pub fn with_skew_split(mut self, threshold: f64) -> DistPlan {
        self.skew.split = true;
        self.skew.split_threshold = if threshold.is_finite() {
            threshold.max(1.0)
        } else {
            SkewPolicy::default().split_threshold
        };
        self
    }

    /// Enable mid-round straggler offload at the given lag factor over the
    /// median completion time (clamped to at least 0.0).
    pub fn with_skew_offload(mut self, factor: f64) -> DistPlan {
        self.skew.offload = true;
        self.skew.offload_factor = if factor.is_finite() {
            factor.max(0.0)
        } else {
            SkewPolicy::default().offload_factor
        };
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.rounds.len() != self.expr.ops.len() {
            return Err(SkallaError::plan(format!(
                "{} round specs for {} operators",
                self.rounds.len(),
                self.expr.ops.len()
            )));
        }
        if let Some(last) = self.rounds.last() {
            if last.local_only {
                return Err(SkallaError::plan(
                    "last round cannot be local_only (final results must reach the coordinator)",
                ));
            }
        }
        if matches!(self.base_round, BaseRound::LocalOnly)
            && matches!(self.expr.base, skalla_gmdj::BaseSpec::Relation(_))
        {
            return Err(SkallaError::plan(
                "LocalOnly base round requires a distinct-project base",
            ));
        }
        if self.skew.split
            && !(self.skew.split_threshold.is_finite() && self.skew.split_threshold >= 1.0)
        {
            return Err(SkallaError::plan(format!(
                "skew split threshold must be a finite ratio >= 1.0, got {}",
                self.skew.split_threshold
            )));
        }
        if self.skew.offload
            && !(self.skew.offload_factor.is_finite() && self.skew.offload_factor >= 0.0)
        {
            return Err(SkallaError::plan(format!(
                "skew offload factor must be finite and non-negative, got {}",
                self.skew.offload_factor
            )));
        }
        Ok(())
    }

    /// Split the rounds into execution [`Segment`]s: a synchronization
    /// happens after each segment.
    pub fn segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for (k, r) in self.rounds.iter().enumerate() {
            if !r.local_only {
                if k == start && !self.first_segment_forced_local(start) {
                    out.push(Segment::Standard { op: k });
                } else {
                    out.push(Segment::LocalRun { start, end: k });
                }
                start = k + 1;
            }
        }
        out
    }

    /// A `LocalOnly` base round forces the first segment to execute as a
    /// local run (the base fragments exist only at the sites), even if it
    /// contains a single operator.
    fn first_segment_forced_local(&self, seg_start: usize) -> bool {
        seg_start == 0 && matches!(self.base_round, BaseRound::LocalOnly)
    }

    /// Number of synchronizations this plan performs (base sync, if any,
    /// plus one per segment). This is the quantity synchronization
    /// reduction minimizes (paper Example 5).
    pub fn num_synchronizations(&self) -> usize {
        let base = match self.base_round {
            BaseRound::Distributed => 1,
            BaseRound::LocalOnly | BaseRound::Coordinator(_) => 0,
        };
        base + self.segments().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_expr::Expr;
    use skalla_gmdj::{AggSpec, BaseSpec, GmdjBlock, GmdjOp};

    fn op(name: &str) -> GmdjOp {
        GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star(name)],
            Expr::base(0).eq(Expr::detail(0)),
        )])
    }

    fn expr(n_ops: usize) -> GmdjExpr {
        let ops = (0..n_ops).map(|i| op(&format!("c{i}"))).collect();
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "t",
            ops,
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn unoptimized_plan_has_one_sync_per_round_plus_base() {
        let p = DistPlan::unoptimized(expr(2));
        p.validate().unwrap();
        assert_eq!(p.base_round, BaseRound::Distributed);
        assert_eq!(
            p.segments(),
            vec![Segment::Standard { op: 0 }, Segment::Standard { op: 1 }]
        );
        assert_eq!(p.num_synchronizations(), 3); // paper Example 5: "three synchronizations"
    }

    #[test]
    fn local_only_rounds_form_runs() {
        let mut p = DistPlan::unoptimized(expr(3));
        p.rounds[0].local_only = true;
        p.rounds[1].local_only = true;
        p.validate().unwrap();
        assert_eq!(p.segments(), vec![Segment::LocalRun { start: 0, end: 2 }]);
        assert_eq!(p.num_synchronizations(), 2); // base + one final

        let mut p = DistPlan::unoptimized(expr(3));
        p.rounds[0].local_only = true;
        assert_eq!(
            p.segments(),
            vec![
                Segment::LocalRun { start: 0, end: 1 },
                Segment::Standard { op: 2 }
            ]
        );
    }

    #[test]
    fn local_base_forces_local_first_segment() {
        let mut p = DistPlan::unoptimized(expr(2));
        p.base_round = BaseRound::LocalOnly;
        p.validate().unwrap();
        assert_eq!(
            p.segments(),
            vec![
                Segment::LocalRun { start: 0, end: 0 },
                Segment::Standard { op: 1 }
            ]
        );
        assert_eq!(p.num_synchronizations(), 2);

        // Full Example 5 shape: local base + local run = single sync.
        p.rounds[0].local_only = true;
        assert_eq!(p.segments(), vec![Segment::LocalRun { start: 0, end: 1 }]);
        assert_eq!(p.num_synchronizations(), 1);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = DistPlan::unoptimized(expr(2));
        p.rounds.pop();
        assert!(p.validate().is_err());

        let mut p = DistPlan::unoptimized(expr(2));
        p.rounds[1].local_only = true;
        assert!(p.validate().is_err());

        let base_rel = Relation::empty(
            skalla_types::Schema::from_pairs([("k", skalla_types::DataType::Int64)])
                .unwrap()
                .into_arc(),
        );
        let e = GmdjExpr::new(BaseSpec::Relation(base_rel), "t", vec![op("c")], vec![0]).unwrap();
        let mut p = DistPlan::unoptimized(e);
        p.base_round = BaseRound::LocalOnly;
        assert!(p.validate().is_err());
    }

    #[test]
    fn coordinator_base_round_from_relation_base() {
        let base_rel = Relation::empty(
            skalla_types::Schema::from_pairs([("k", skalla_types::DataType::Int64)])
                .unwrap()
                .into_arc(),
        );
        let e = GmdjExpr::new(BaseSpec::Relation(base_rel), "t", vec![op("c")], vec![0]).unwrap();
        let p = DistPlan::unoptimized(e);
        assert!(matches!(p.base_round, BaseRound::Coordinator(_)));
        assert_eq!(p.num_synchronizations(), 1);
    }

    #[test]
    fn retry_policy_backoff_and_defaults() {
        let p = DistPlan::unoptimized(expr(1));
        assert_eq!(p.retry, RetryPolicy::default());
        assert_eq!(p.retry.degraded, DegradedMode::Fail);

        let rp = RetryPolicy {
            deadline: Duration::from_millis(100),
            max_retries: 2,
            backoff: 2.0,
            degraded: DegradedMode::Partial,
        };
        assert_eq!(rp.deadline_for_attempt(0), Duration::from_millis(100));
        assert_eq!(rp.deadline_for_attempt(2), Duration::from_millis(400));

        // Backoff below 1 is clamped: deadlines never shrink.
        let flat = RetryPolicy {
            backoff: 0.5,
            ..RetryPolicy::default()
        };
        assert_eq!(flat.deadline_for_attempt(3), flat.deadline);

        let q = p.with_degraded_mode(DegradedMode::Partial);
        assert_eq!(q.retry.degraded, DegradedMode::Partial);
    }

    #[test]
    fn parallelism_builders_clamp_to_one() {
        let p = DistPlan::unoptimized(expr(1))
            .with_site_parallelism(0)
            .with_coord_parallelism(0);
        assert_eq!(p.site_parallelism, 1);
        assert_eq!(p.coord_parallelism, 1);
        let p = p.with_coord_parallelism(8);
        assert_eq!(p.coord_parallelism, 8);
    }

    #[test]
    fn flags_presets() {
        assert_eq!(OptFlags::none(), OptFlags::default());
        let all = OptFlags::all();
        assert!(all.coalesce && all.site_group_reduction);
        assert!(all.coord_group_reduction && all.sync_reduction);
    }

    #[test]
    fn skew_policy_builders_and_validation() {
        let p = DistPlan::unoptimized(expr(1));
        assert!(p.skew.is_disabled());
        assert!(p.validate().is_ok());

        let p = p.with_skew_split(0.5).with_skew_offload(-3.0);
        assert!(p.skew.split && p.skew.offload);
        // Clamped into their valid ranges.
        assert_eq!(p.skew.split_threshold, 1.0);
        assert_eq!(p.skew.offload_factor, 0.0);
        assert!(p.validate().is_ok());

        // Non-finite knobs fall back to defaults rather than poisoning the plan.
        let p = DistPlan::unoptimized(expr(1)).with_skew_split(f64::NAN);
        assert_eq!(
            p.skew.split_threshold,
            SkewPolicy::default().split_threshold
        );
        assert!(p.validate().is_ok());

        // A hand-built policy with bad values is rejected by validate().
        let mut bad = DistPlan::unoptimized(expr(1));
        bad.skew = SkewPolicy {
            split: true,
            split_threshold: f64::INFINITY,
            ..SkewPolicy::default()
        };
        assert!(bad.validate().is_err());
        bad.skew = SkewPolicy {
            offload: true,
            offload_factor: f64::NAN,
            ..SkewPolicy::default()
        };
        assert!(bad.validate().is_err());
    }
}
