#![warn(missing_docs)]

//! # skalla-core
//!
//! The Skalla distributed runtime: coordinator, warehouse sites, and
//! **Alg. GMDJDistribEval** (paper §3) with all three optimization families
//! of §4 wired in as executable plan options:
//!
//! * **distribution-independent group reduction** (Proposition 1) — sites
//!   piggyback a `COUNT(*)` over `θ₁ ∨ … ∨ θₘ` and ship only groups with a
//!   positive match count;
//! * **distribution-aware group reduction** (Theorem 4) — the coordinator
//!   applies a per-site base filter `¬ψᵢ` before shipping groups;
//! * **synchronization reduction** (Proposition 2, Theorem 5, Corollary 1)
//!   — runs of GMDJs evaluate entirely locally, with a single final
//!   synchronization.
//!
//! Architecture (paper Fig. 1): a strict coordinator topology. Sites run as
//! OS threads owning their local [`skalla_storage::Catalog`]; every message
//! between coordinator and sites crosses the simulated network of
//! `skalla-net` and is therefore serialized and byte-counted exactly.
//!
//! Modules:
//!
//! * [`plan`] — [`DistPlan`]: the distributed evaluation plan (rounds,
//!   reduction flags, synchronization segments).
//! * [`message`] — the coordinator↔site protocol and its wire encoding.
//! * [`baseresult`] — the coordinator's key-indexed base-result structure
//!   `X` and Theorem 1 synchronization.
//! * [`metrics`] — per-round and per-query cost breakdown (site compute,
//!   coordinator compute, communication; measured and modeled).
//! * [`site`] — the site worker loop.
//! * [`warehouse`] — [`DistributedWarehouse`]: launch sites, execute plans,
//!   and the ship-all-detail-data baseline used to demonstrate Theorem 2.
//! * [`sync`] — [`ShardedSync`]: the hash-partitioned, multi-worker
//!   synchronization pipeline (parallel Theorem 1, bit-for-bit equivalent
//!   to [`BaseResult`]).
//! * [`tree`] — [`TieredWarehouse`]: the multi-tier coordinator topology
//!   sketched in the paper's future work (§6).
//! * [`checkpoint`] — round-granular coordinator checkpointing: a small WAL
//!   of synchronized base-results so a restarted coordinator re-executes at
//!   most one round.
//! * [`cache`] — [`ResultCache`]: the coordinator's plan-fingerprint result
//!   cache, so repeated dashboard-style queries short-circuit.
//! * [`sched`] — [`QueryScheduler`]: bounded admission with backpressure
//!   and fair round-robin interleaving of concurrent [`QueryRun`]s over the
//!   shared site engines.

pub mod baseresult;
pub mod cache;
pub mod checkpoint;
pub mod message;
pub mod metrics;
pub mod plan;
pub mod sched;
pub mod site;
pub mod sync;
pub mod tree;
pub mod warehouse;

pub use baseresult::BaseResult;
pub use cache::{CacheStats, PlanKey, ResultCache};
pub use checkpoint::{plan_fingerprint, CheckpointRecord, CheckpointWal};
pub use message::ScrubEntry;
pub use metrics::{Coverage, ExecMetrics, RoundMetrics};
pub use plan::{
    BaseRound, DegradedMode, DistPlan, OptFlags, RetryPolicy, RoundSpec, Segment, SkewPolicy,
};
pub use sched::{Admission, QueryScheduler, QueryTicket, SchedConfig, SchedStats};
pub use sync::{ShardedSync, SyncOptions, SyncOutput, SyncSpec, SyncStats};
pub use tree::TieredWarehouse;
pub use warehouse::{DistributedWarehouse, QueryRun, ScrubSummary};
