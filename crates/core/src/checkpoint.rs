//! Round-granular coordinator checkpointing.
//!
//! Theorem 1 makes the synchronized base-result after round *k* the
//! *entire* state of a running query: every earlier round is folded into
//! it, and every later round needs nothing else from the coordinator. So a
//! coordinator can survive a crash by appending one small record per
//! synchronization to a write-ahead log — plan fingerprint, query epoch,
//! how many synchronizations have completed, and the synchronized relation
//! itself — and a restarted coordinator resumes at round *k + 1*,
//! re-executing at most the one round that was in flight (the same
//! round-granularity recovery argument GYM makes for multi-round joins).
//!
//! The log is append-only and tolerant on read: [`CheckpointWal::load_latest`]
//! scans records until the first torn/corrupt one (a crash mid-append
//! leaves a torn tail) and returns the last intact record whose fingerprint
//! matches the plan. A corrupt or truncated log therefore degrades to clean
//! re-execution — never a panic, never a resume from wrong state. Records
//! reuse the `skalla-net` wire codec, framed with a magic, a length, and a
//! checksum.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::BytesMut;
use skalla_net::wire::put_varint;
use skalla_net::{WireDecode, WireEncode, WireReader};
use skalla_types::{Relation, Result, SkallaError};

use crate::message::Message;
use crate::plan::DistPlan;

/// Per-record frame magic (`SKCP`).
const MAGIC: [u8; 4] = *b"SKCP";

/// Frame overhead ahead of the payload: magic + u32 length + u64 checksum.
const HEADER_LEN: usize = 4 + 4 + 8;

/// Refuse to read absurd payload lengths from a corrupt header.
const MAX_PAYLOAD: usize = 1 << 30;

/// One synchronized-round checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Fingerprint of the plan this state belongs to (see
    /// [`plan_fingerprint`]); a record from a different query never
    /// resumes this one.
    pub fingerprint: u64,
    /// Query epoch the round ran under (failover bumps it mid-query).
    pub epoch: u64,
    /// Synchronizations completed when the record was written (the base
    /// synchronization, if the plan has one, counts as the first).
    pub synced: u32,
    /// The synchronized base-result relation after those rounds — by
    /// Theorem 1, the whole query state.
    pub state: Relation,
}

impl CheckpointRecord {
    /// Encode the record payload (without the frame header).
    fn encode_payload(&self) -> BytesMut {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, self.fingerprint);
        put_varint(&mut buf, self.epoch);
        put_varint(&mut buf, u64::from(self.synced));
        self.state.encode(&mut buf);
        buf
    }

    /// Decode a record payload. Strict: trailing bytes are an error.
    pub fn decode_payload(bytes: &[u8]) -> Result<CheckpointRecord> {
        let mut r = WireReader::new(bytes);
        let rec = CheckpointRecord {
            fingerprint: r.varint()?,
            epoch: r.varint()?,
            synced: r.varint()? as u32,
            state: Relation::decode(&mut r)?,
        };
        if !r.is_empty() {
            return Err(SkallaError::net("trailing bytes after checkpoint record"));
        }
        Ok(rec)
    }

    /// Serialize the record as one framed WAL entry
    /// (magic + length + checksum + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Decode one framed record from the front of `bytes`; returns the record
/// and how many bytes it consumed. Any defect — bad magic, torn frame,
/// checksum mismatch, undecodable payload — is an error, never a panic.
pub fn decode_frame(bytes: &[u8]) -> Result<(CheckpointRecord, usize)> {
    if bytes.len() < HEADER_LEN {
        return Err(SkallaError::net("truncated checkpoint frame header"));
    }
    if bytes[..4] != MAGIC {
        return Err(SkallaError::net("bad checkpoint frame magic"));
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(SkallaError::net("checkpoint frame length out of range"));
    }
    let sum = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let rest = &bytes[HEADER_LEN..];
    if rest.len() < len {
        return Err(SkallaError::net("torn checkpoint frame"));
    }
    let payload = &rest[..len];
    if checksum(payload) != sum {
        return Err(SkallaError::net("checkpoint frame checksum mismatch"));
    }
    let rec = CheckpointRecord::decode_payload(payload)?;
    Ok((rec, HEADER_LEN + len))
}

/// FNV-1a 64-bit — enough to catch torn writes and bit rot; this is an
/// integrity check, not an adversarial defense. Also the hash behind
/// [`plan_fingerprint`], which the result cache reuses as its key.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint a plan by hashing its wire encoding — the same bytes the
/// sites receive, so any difference in expression, rounds, flags, or retry
/// policy yields a different fingerprint and blocks a cross-plan resume.
pub fn plan_fingerprint(plan: &DistPlan) -> u64 {
    checksum(&Message::Plan(plan.clone()).to_wire())
}

/// An append-only checkpoint write-ahead log on disk.
#[derive(Debug, Clone)]
pub struct CheckpointWal {
    path: PathBuf,
}

impl CheckpointWal {
    /// A WAL at `path`. Nothing is touched until the first append; a
    /// missing file reads as an empty log.
    pub fn new(path: impl Into<PathBuf>) -> CheckpointWal {
        CheckpointWal { path: path.into() }
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncate the log (start a fresh query's history).
    pub fn clear(&self) -> Result<()> {
        File::create(&self.path)
            .map(|_| ())
            .map_err(|e| SkallaError::exec(format!("checkpoint wal {}: {e}", self.path.display())))
    }

    /// Append one record, flushed before returning.
    pub fn append(&self, rec: &CheckpointRecord) -> Result<()> {
        let io = |e: std::io::Error| {
            SkallaError::exec(format!("checkpoint wal {}: {e}", self.path.display()))
        };
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(io)?;
        f.write_all(&rec.to_frame()).map_err(io)?;
        f.flush().map_err(io)?;
        Ok(())
    }

    /// The last intact record whose fingerprint matches, or `None`.
    ///
    /// Tolerant by design: scanning stops at the first torn or corrupt
    /// frame (everything after a torn write is unreachable anyway), and a
    /// missing file is an empty log — both fall back to `None`, i.e. clean
    /// re-execution from round zero.
    pub fn load_latest(&self, fingerprint: u64) -> Result<Option<CheckpointRecord>> {
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                if f.read_to_end(&mut bytes).is_err() {
                    return Ok(None);
                }
            }
            Err(_) => return Ok(None),
        }
        let mut latest = None;
        let mut off = 0usize;
        while off < bytes.len() {
            match decode_frame(&bytes[off..]) {
                Ok((rec, used)) => {
                    if rec.fingerprint == fingerprint {
                        latest = Some(rec);
                    }
                    off += used;
                }
                Err(_) => break,
            }
        }
        Ok(latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema, Value};

    fn rel(n: i64) -> Relation {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        Relation::new(schema, (0..n).map(|i| vec![Value::Int(i)]).collect()).unwrap()
    }

    fn record(fp: u64, synced: u32) -> CheckpointRecord {
        CheckpointRecord {
            fingerprint: fp,
            epoch: 3,
            synced,
            state: rel(synced as i64 + 1),
        }
    }

    #[test]
    fn frame_round_trips() {
        let rec = record(0xFEED, 2);
        let frame = rec.to_frame();
        let (back, used) = decode_frame(&frame).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn corruption_is_detected() {
        let frame = record(1, 1).to_frame();
        // Bad magic.
        let mut bad = frame.clone();
        bad[0] ^= 0xFF;
        assert!(decode_frame(&bad).is_err());
        // Torn tail.
        assert!(decode_frame(&frame[..frame.len() - 1]).is_err());
        // Any flipped payload byte fails the checksum.
        for i in HEADER_LEN..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(decode_frame(&bad).is_err(), "flip at {i} accepted");
        }
        // Trailing garbage inside a declared payload.
        assert!(CheckpointRecord::decode_payload(&[0, 0, 0, 1, 0, 0]).is_err());
    }

    #[test]
    fn wal_appends_and_resumes_latest_matching() {
        let dir = std::env::temp_dir().join(format!("skalla-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = CheckpointWal::new(dir.join("appends.wal"));
        wal.clear().unwrap();

        assert_eq!(wal.load_latest(7).unwrap(), None);
        wal.append(&record(7, 1)).unwrap();
        wal.append(&record(9, 1)).unwrap(); // different query
        wal.append(&record(7, 2)).unwrap();
        let latest = wal.load_latest(7).unwrap().unwrap();
        assert_eq!(latest.synced, 2);
        assert_eq!(latest.state.len(), 3);
        assert_eq!(wal.load_latest(9).unwrap().unwrap().synced, 1);
        assert_eq!(wal.load_latest(1234).unwrap(), None);

        // A torn tail (crash mid-append) hides nothing before it.
        let mut bytes = std::fs::read(wal.path()).unwrap();
        bytes.extend_from_slice(&record(7, 3).to_frame()[..10]);
        std::fs::write(wal.path(), &bytes).unwrap();
        assert_eq!(wal.load_latest(7).unwrap().unwrap().synced, 2);

        // Corruption mid-log stops the scan at the damage.
        let mut bytes = std::fs::read(wal.path()).unwrap();
        let second_frame_start = record(7, 1).to_frame().len();
        bytes[second_frame_start + HEADER_LEN] ^= 0xFF;
        std::fs::write(wal.path(), &bytes).unwrap();
        assert_eq!(wal.load_latest(7).unwrap().unwrap().synced, 1);

        // Missing file is an empty log.
        let ghost = CheckpointWal::new(dir.join("missing.wal"));
        assert_eq!(ghost.load_latest(7).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
