//! Execution metrics.
//!
//! Fig. 5 (right) of the paper breaks query evaluation time into *site
//! computation*, *coordinator computation*, and *communication overhead*.
//! [`ExecMetrics`] reproduces that breakdown: site and coordinator compute
//! are measured (wall-clock inside the workers), communication is modeled
//! from exact byte counts via [`skalla_net::CostModel`].
//!
//! The modeled response time of a round follows the paper's cost analysis
//! (§5.2): the coordinator's link serializes transfers, so a round costs
//! `Σᵢ send(baseᵢ) + maxᵢ computeᵢ + Σᵢ recv(Hᵢ)` plus the coordinator's
//! synchronization time.

use std::collections::BTreeMap;
use std::fmt;

use skalla_net::{CostModel, NodeId};

/// How many of the plan's sites contributed to the result.
///
/// `n/n` for a fault-free execution; under
/// [`DegradedMode::Partial`](crate::plan::DegradedMode) an execution that
/// lost sites reports the surviving count, e.g. `3/4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Sites whose replies were synchronized into the result.
    pub responded: usize,
    /// Sites the plan targeted.
    pub total: usize,
}

impl Coverage {
    /// `true` when every targeted site contributed.
    pub fn is_complete(&self) -> bool {
        self.responded == self.total
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.responded, self.total)
    }
}

/// Cost breakdown of one synchronization round (or local-run segment).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundMetrics {
    /// Human-readable label ("base", "round 1", "local-run 1-2", …).
    pub label: String,
    /// Bytes shipped coordinator → sites this round.
    pub bytes_down: u64,
    /// Bytes shipped sites → coordinator this round.
    pub bytes_up: u64,
    /// Relation tuples shipped coordinator → sites this round (the unit of
    /// the paper's Theorem 2 transfer bound).
    pub rows_down: u64,
    /// Relation tuples shipped sites → coordinator this round.
    pub rows_up: u64,
    /// Messages exchanged.
    pub messages: u64,
    /// Maximum per-site compute seconds (sites run in parallel) — the
    /// round's critical path. Sites report thread-CPU seconds, so this
    /// models sites that each own their cores even when the host
    /// time-slices the site threads.
    pub site_compute_max_s: f64,
    /// Total site compute seconds (work performed).
    pub site_compute_total_s: f64,
    /// Coordinator compute seconds (synchronization, filtering).
    pub coord_compute_s: f64,
    /// Modeled communication seconds (serialized at the coordinator link).
    pub comm_modeled_s: f64,
    /// Number of participating sites.
    pub sites: usize,
    /// Groups (rows) in the synchronized structure after this round.
    pub groups: usize,
    /// GMDJ blocks the sites evaluated through compiled (vectorized)
    /// kernels this round, summed across sites.
    pub blocks_compiled: u64,
    /// GMDJ blocks the sites evaluated with the row-at-a-time interpreter
    /// this round, summed across sites.
    pub blocks_interpreted: u64,
    /// Seconds decoding reply fragments off the wire this round (formerly
    /// lumped into the synchronization time).
    pub sync_decode_s: f64,
    /// Seconds merging fragments into the synchronized structure. For the
    /// sharded pipeline this is summed *busy* worker time (work performed,
    /// overlapped with receive); serially it is elapsed merge time.
    pub sync_merge_s: f64,
    /// Seconds finalizing the synchronized structure into the round's
    /// output relation.
    pub sync_finalize_s: f64,
    /// Merge workers used by the synchronization this round (1 = serial
    /// [`BaseResult`](crate::baseresult::BaseResult) path).
    pub sync_workers: usize,
    /// Hash shards of the group space (1 for the serial path).
    pub sync_shards: usize,
    /// Worker-pool utilization of the sharded pipeline this round
    /// (busy / (workers × wall), 0 for the serial path).
    pub sync_utilization: f64,
    /// Merge-load imbalance across sync workers this round (busiest
    /// worker's busy seconds over the mean; 1.0 = perfectly balanced,
    /// 0 for the serial path).
    pub sync_imbalance: f64,
    /// Out-of-core segments the sites decoded this round, summed across
    /// sites (0 when every detail partition was in memory).
    pub segments_scanned: u64,
    /// Out-of-core segments the sites skipped via zone-map pruning this
    /// round, summed across sites.
    pub segments_pruned: u64,
    /// Column chunks whose CRC32C the sites verified while decoding this
    /// round, summed across sites.
    pub blocks_verified: u64,
}

impl RoundMetrics {
    /// Modeled response time of this round.
    pub fn modeled_time_s(&self) -> f64 {
        self.comm_modeled_s + self.site_compute_max_s + self.coord_compute_s
    }
}

/// Cost breakdown of a whole query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    /// Per-round metrics, in execution order.
    pub rounds: Vec<RoundMetrics>,
    /// Measured wall-clock seconds for the whole execution.
    pub wall_s: f64,
    /// The cost model used for the modeled times.
    pub cost_model: Option<CostModel>,
    /// Site coverage of the result: `None` until execution finishes, then
    /// `k/n` — complete (`n/n`) unless the execution degraded to a partial
    /// result after losing sites. Under replica failover the unit is
    /// *partitions*, so a run that lost a site but recovered every
    /// partition from replicas still reports complete coverage.
    pub coverage: Option<Coverage>,
    /// Requests sent per site across the execution: the initial send plus
    /// every deadline/error re-send, keyed by network node id. A site at 1
    /// answered first time; higher counts localize flaky links or stragglers
    /// that aggregate coverage hides.
    pub site_attempts: BTreeMap<NodeId, u32>,
    /// Failover events: sites written off mid-query whose partitions were
    /// re-planned onto surviving replicas.
    pub failovers: u64,
    /// Partitions reassigned to a surviving replica host by failover.
    pub parts_reassigned: u64,
    /// Partitions permanently lost (site dead and no surviving replica);
    /// non-zero only when failover degraded to partial coverage.
    pub parts_lost: u64,
    /// Seconds spent re-planning waves after site loss (epoch bump,
    /// reassignment, re-sends).
    pub failover_s: f64,
    /// Hot partitions split into row-range fragments across replicas by
    /// the skew planner, summed over rounds (a partition split in every
    /// round counts once per round).
    pub parts_split: u64,
    /// Straggler-offload offers issued: a laggard's residual work was
    /// duplicated to an idle replica under a fresh task id.
    pub offloads: u64,
    /// Offload offers the helper won (its duplicate reply completed
    /// before the laggard's original did).
    pub offload_wins: u64,
    /// Largest per-partition load imbalance (max/mean detail rows) the
    /// sites' sketches reported, 0 when no sketches were shipped.
    pub skew_ratio: f64,
    /// Largest single-group share of any partition's rows reported by the
    /// heavy-hitter sketches, 0 when none were shipped.
    pub skew_top_share: f64,
    /// Round checkpoints appended to the write-ahead log.
    pub checkpoints: u32,
    /// Seconds spent serializing and writing round checkpoints.
    pub checkpoint_s: f64,
    /// Synchronizations restored from a checkpoint instead of re-executed
    /// (a resumed coordinator re-executes at most one round).
    pub resumed_syncs: u32,
    /// Result-cache hits: the query was answered from the coordinator's
    /// plan-fingerprint result cache without touching the sites. Set by
    /// the serving layer's scheduler; always 0 for direct execution.
    pub cache_hits: u64,
    /// Result-cache misses: the query went through the cache but had to
    /// execute. Set by the serving layer's scheduler; always 0 for direct
    /// execution.
    pub cache_misses: u64,
    /// Segment checksum failures the sites reported during this execution.
    /// Each one routed a partition to the degradation ladder (failover
    /// re-plan, partial coverage, or a typed error) instead of retrying.
    pub checksum_failures: u64,
}

impl ExecMetrics {
    /// Total bytes transferred in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_down + r.bytes_up).sum()
    }

    /// Total bytes coordinator → sites.
    pub fn total_bytes_down(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_down).sum()
    }

    /// Total bytes sites → coordinator.
    pub fn total_bytes_up(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_up).sum()
    }

    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Total tuples shipped coordinator → sites.
    pub fn total_rows_down(&self) -> u64 {
        self.rounds.iter().map(|r| r.rows_down).sum()
    }

    /// Total tuples shipped sites → coordinator.
    pub fn total_rows_up(&self) -> u64 {
        self.rounds.iter().map(|r| r.rows_up).sum()
    }

    /// Modeled end-to-end response time (sum of round times — rounds are
    /// sequential by construction of Alg. GMDJDistribEval).
    pub fn modeled_time_s(&self) -> f64 {
        self.rounds.iter().map(RoundMetrics::modeled_time_s).sum()
    }

    /// Summed site compute (max per round — the parallel critical path).
    pub fn site_compute_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.site_compute_max_s).sum()
    }

    /// Summed coordinator compute.
    pub fn coord_compute_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.coord_compute_s).sum()
    }

    /// Summed modeled communication time.
    pub fn comm_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.comm_modeled_s).sum()
    }

    /// Number of synchronization rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total GMDJ blocks evaluated through compiled kernels, across all
    /// rounds and sites.
    pub fn total_blocks_compiled(&self) -> u64 {
        self.rounds.iter().map(|r| r.blocks_compiled).sum()
    }

    /// Total GMDJ blocks that fell back to the row-at-a-time interpreter.
    pub fn total_blocks_interpreted(&self) -> u64 {
        self.rounds.iter().map(|r| r.blocks_interpreted).sum()
    }

    /// Total out-of-core segments decoded, across all rounds and sites.
    pub fn total_segments_scanned(&self) -> u64 {
        self.rounds.iter().map(|r| r.segments_scanned).sum()
    }

    /// Total out-of-core segments skipped via zone-map pruning.
    pub fn total_segments_pruned(&self) -> u64 {
        self.rounds.iter().map(|r| r.segments_pruned).sum()
    }

    /// Total column chunks whose CRC32C the sites verified during decode.
    pub fn total_blocks_verified(&self) -> u64 {
        self.rounds.iter().map(|r| r.blocks_verified).sum()
    }

    /// Summed fragment decode seconds across rounds.
    pub fn sync_decode_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.sync_decode_s).sum()
    }

    /// Summed merge seconds across rounds (busy worker time for sharded
    /// rounds).
    pub fn sync_merge_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.sync_merge_s).sum()
    }

    /// Summed finalize seconds across rounds.
    pub fn sync_finalize_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.sync_finalize_s).sum()
    }

    /// Largest worker pool any round synchronized with (1 = fully serial).
    pub fn sync_workers(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.sync_workers)
            .max()
            .unwrap_or(0)
    }

    /// Largest shard count any round synchronized with.
    pub fn sync_shards(&self) -> usize {
        self.rounds.iter().map(|r| r.sync_shards).max().unwrap_or(0)
    }

    /// Mean worker utilization over the rounds that ran the sharded
    /// pipeline (0 when every round was serial).
    pub fn sync_utilization(&self) -> f64 {
        let sharded: Vec<&RoundMetrics> =
            self.rounds.iter().filter(|r| r.sync_workers > 1).collect();
        if sharded.is_empty() {
            0.0
        } else {
            sharded.iter().map(|r| r.sync_utilization).sum::<f64>() / sharded.len() as f64
        }
    }

    /// Mean merge-load imbalance over the rounds that ran the sharded
    /// pipeline (0 when every round was serial).
    pub fn sync_imbalance(&self) -> f64 {
        let sharded: Vec<&RoundMetrics> =
            self.rounds.iter().filter(|r| r.sync_workers > 1).collect();
        if sharded.is_empty() {
            0.0
        } else {
            sharded.iter().map(|r| r.sync_imbalance).sum::<f64>() / sharded.len() as f64
        }
    }

    /// A per-round table (label, traffic, compute components) — the
    /// detailed view behind [`ExecMetrics::summary`].
    pub fn render_rounds(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>7}",
            "round",
            "bytes_down",
            "bytes_up",
            "rows_dn",
            "rows_up",
            "site_max",
            "coord_s",
            "comm_s",
            "groups"
        );
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>10} {:>8} {:>8} {:>9.4} {:>9.4} {:>9.4} {:>7}",
                r.label,
                r.bytes_down,
                r.bytes_up,
                r.rows_down,
                r.rows_up,
                r.site_compute_max_s,
                r.coord_compute_s,
                r.comm_modeled_s,
                r.groups
            );
        }
        out.trim_end().to_string()
    }

    /// Per-site retry/attempt histogram: how many sites needed how many
    /// request sends, e.g. `3×1 1×4` — three sites answered on the first
    /// send, one needed four. `None` when no attempts were recorded.
    pub fn attempts_histogram(&self) -> Option<String> {
        if self.site_attempts.is_empty() {
            return None;
        }
        let mut buckets: BTreeMap<u32, usize> = BTreeMap::new();
        for &n in self.site_attempts.values() {
            *buckets.entry(n).or_insert(0) += 1;
        }
        let hist: Vec<String> = buckets
            .iter()
            .map(|(attempts, sites)| format!("{sites}\u{d7}{attempts}"))
            .collect();
        let retried: Vec<String> = self
            .site_attempts
            .iter()
            .filter(|(_, &n)| n > 1)
            .map(|(site, n)| format!("site {site}: {n}"))
            .collect();
        let mut s = format!("attempts (sites\u{d7}sends): {}", hist.join(" "));
        if !retried.is_empty() {
            s.push_str(&format!(" [{}]", retried.join(", ")));
        }
        Some(s)
    }

    /// A compact single-line summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} rounds | {} B down, {} B up | modeled {:.4}s (site {:.4}s, coord {:.4}s, comm {:.4}s) | wall {:.4}s",
            self.num_rounds(),
            self.total_bytes_down(),
            self.total_bytes_up(),
            self.modeled_time_s(),
            self.site_compute_s(),
            self.coord_compute_s(),
            self.comm_s(),
            self.wall_s,
        );
        let (bc, bi) = (
            self.total_blocks_compiled(),
            self.total_blocks_interpreted(),
        );
        if bc + bi > 0 {
            s.push_str(&format!(" | blocks: {bc} compiled, {bi} interpreted"));
        }
        let (sc, sp) = (self.total_segments_scanned(), self.total_segments_pruned());
        if sc + sp > 0 {
            s.push_str(&format!(" | segments: {sc} scanned, {sp} pruned"));
        }
        let bv = self.total_blocks_verified();
        if bv + self.checksum_failures > 0 {
            s.push_str(&format!(
                " | integrity: {bv} blocks verified, {} checksum failure(s)",
                self.checksum_failures,
            ));
        }
        if self.rounds.iter().any(|r| r.sync_workers > 0) {
            s.push_str(&format!(
                " | sync: decode {:.4}s, merge {:.4}s, finalize {:.4}s",
                self.sync_decode_s(),
                self.sync_merge_s(),
                self.sync_finalize_s(),
            ));
            if self.sync_workers() > 1 {
                s.push_str(&format!(
                    " ({} workers × {} shards, {:.0}% busy, {:.2}× imbalance)",
                    self.sync_workers(),
                    self.sync_shards(),
                    self.sync_utilization() * 100.0,
                    self.sync_imbalance(),
                ));
            }
        }
        if self.site_attempts.values().any(|&n| n > 1) {
            if let Some(h) = self.attempts_histogram() {
                s.push_str(&format!(" | {h}"));
            }
        }
        if self.failovers > 0 {
            s.push_str(&format!(
                " | failover: {} site(s), {} part(s) reassigned, {} lost, {:.4}s",
                self.failovers, self.parts_reassigned, self.parts_lost, self.failover_s,
            ));
        }
        if self.parts_split + self.offloads > 0 || self.skew_ratio > 0.0 {
            s.push_str(&format!(
                " | skew: {:.2}× imbalance, top share {:.0}%, {} split(s), {} offload(s) ({} won)",
                self.skew_ratio,
                self.skew_top_share * 100.0,
                self.parts_split,
                self.offloads,
                self.offload_wins,
            ));
        }
        if self.checkpoints > 0 {
            s.push_str(&format!(
                " | checkpoint: {} sync(s), {:.4}s",
                self.checkpoints, self.checkpoint_s,
            ));
        }
        if self.resumed_syncs > 0 {
            s.push_str(&format!(
                " | resumed: {} sync(s) from checkpoint",
                self.resumed_syncs,
            ));
        }
        if self.cache_hits + self.cache_misses > 0 {
            s.push_str(&format!(
                " | cache: {} hit(s), {} miss(es)",
                self.cache_hits, self.cache_misses,
            ));
        }
        if let Some(c) = self.coverage {
            if !c.is_complete() {
                s.push_str(&format!(" | coverage: {c}"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(down: u64, up: u64, site_max: f64, coord: f64, comm: f64) -> RoundMetrics {
        RoundMetrics {
            label: "r".into(),
            bytes_down: down,
            bytes_up: up,
            rows_down: down / 10,
            rows_up: up / 10,
            messages: 2,
            site_compute_max_s: site_max,
            site_compute_total_s: site_max * 2.0,
            coord_compute_s: coord,
            comm_modeled_s: comm,
            sites: 2,
            groups: 10,
            blocks_compiled: 2,
            blocks_interpreted: 1,
            sync_decode_s: 0.001,
            sync_merge_s: coord / 2.0,
            sync_finalize_s: 0.002,
            sync_workers: 4,
            sync_shards: 16,
            sync_utilization: 0.5,
            sync_imbalance: 1.25,
            segments_scanned: 3,
            segments_pruned: 5,
            blocks_verified: 9,
        }
    }

    #[test]
    fn totals_sum_rounds() {
        let m = ExecMetrics {
            rounds: vec![round(100, 50, 0.1, 0.02, 0.3), round(10, 5, 0.2, 0.01, 0.1)],
            wall_s: 1.0,
            cost_model: Some(CostModel::free()),
            coverage: Some(Coverage {
                responded: 2,
                total: 2,
            }),
            ..ExecMetrics::default()
        };
        assert_eq!(m.total_bytes_down(), 110);
        assert_eq!(m.total_bytes_up(), 55);
        assert_eq!(m.total_bytes(), 165);
        assert_eq!(m.total_messages(), 4);
        assert_eq!(m.total_rows_down(), 11);
        assert_eq!(m.total_rows_up(), 5);
        assert_eq!(m.num_rounds(), 2);
        assert!((m.modeled_time_s() - (0.42 + 0.31)).abs() < 1e-12);
        assert!((m.site_compute_s() - 0.3).abs() < 1e-12);
        assert!((m.coord_compute_s() - 0.03).abs() < 1e-12);
        assert!((m.comm_s() - 0.4).abs() < 1e-12);
        assert_eq!(m.total_blocks_compiled(), 4);
        assert_eq!(m.total_blocks_interpreted(), 2);
        assert_eq!(m.total_segments_scanned(), 6);
        assert_eq!(m.total_segments_pruned(), 10);
        assert!(m.summary().contains("2 rounds"));
        assert!(m.summary().contains("blocks: 4 compiled, 2 interpreted"));
        assert!(m.summary().contains("segments: 6 scanned, 10 pruned"));
        assert_eq!(m.total_blocks_verified(), 18);
        assert!(m
            .summary()
            .contains("integrity: 18 blocks verified, 0 checksum failure(s)"));
        assert!(m.summary().contains("sync: decode 0.0020s"));
        assert!(m
            .summary()
            .contains("(4 workers × 16 shards, 50% busy, 1.25× imbalance)"));
        assert_eq!(m.sync_workers(), 4);
        assert_eq!(m.sync_shards(), 16);
        assert!((m.sync_decode_s() - 0.002).abs() < 1e-12);
        assert!((m.sync_utilization() - 0.5).abs() < 1e-12);
        let table = m.render_rounds();
        assert!(table.contains("round"));
        assert_eq!(table.lines().count(), 3); // header + 2 rounds
    }

    #[test]
    fn round_modeled_time_components() {
        let r = round(1, 1, 0.5, 0.25, 0.125);
        assert!((r.modeled_time_s() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn coverage_display_and_summary() {
        let full = Coverage {
            responded: 4,
            total: 4,
        };
        let partial = Coverage {
            responded: 3,
            total: 4,
        };
        assert!(full.is_complete());
        assert!(!partial.is_complete());
        assert_eq!(partial.to_string(), "3/4");

        let mut m = ExecMetrics {
            coverage: Some(full),
            ..ExecMetrics::default()
        };
        assert!(!m.summary().contains("coverage"));
        m.coverage = Some(partial);
        assert!(m.summary().contains("coverage: 3/4"));
    }

    #[test]
    fn attempts_histogram_buckets_sites_by_sends() {
        let mut m = ExecMetrics::default();
        assert_eq!(m.attempts_histogram(), None);
        assert!(!m.summary().contains("attempts"));

        m.site_attempts = BTreeMap::from([(1, 1), (2, 1), (3, 1)]);
        // All first-try: histogram available, but the summary stays quiet.
        assert_eq!(
            m.attempts_histogram().unwrap(),
            "attempts (sites\u{d7}sends): 3\u{d7}1"
        );
        assert!(!m.summary().contains("attempts"));

        m.site_attempts.insert(4, 3);
        let h = m.attempts_histogram().unwrap();
        assert!(h.contains("3\u{d7}1"), "{h}");
        assert!(h.contains("1\u{d7}3"), "{h}");
        assert!(h.contains("site 4: 3"), "{h}");
        assert!(m.summary().contains("attempts"), "{}", m.summary());
    }

    #[test]
    fn failover_and_checkpoint_summary_lines() {
        let mut m = ExecMetrics::default();
        let quiet = m.summary();
        assert!(!quiet.contains("failover") && !quiet.contains("checkpoint"));

        m.failovers = 1;
        m.parts_reassigned = 2;
        m.failover_s = 0.5;
        m.checkpoints = 3;
        m.checkpoint_s = 0.25;
        m.resumed_syncs = 2;
        let s = m.summary();
        assert!(
            s.contains("failover: 1 site(s), 2 part(s) reassigned, 0 lost"),
            "{s}"
        );
        assert!(s.contains("checkpoint: 3 sync(s)"), "{s}");
        assert!(s.contains("resumed: 2 sync(s) from checkpoint"), "{s}");
    }

    #[test]
    fn skew_summary_line() {
        let mut m = ExecMetrics::default();
        assert!(!m.summary().contains("skew"), "{}", m.summary());

        m.skew_ratio = 2.5;
        m.skew_top_share = 0.4;
        m.parts_split = 1;
        m.offloads = 2;
        m.offload_wins = 1;
        let s = m.summary();
        assert!(
            s.contains(
                "skew: 2.50\u{d7} imbalance, top share 40%, 1 split(s), 2 offload(s) (1 won)"
            ),
            "{s}"
        );
    }
}
