//! The coordinator's base-result structure `X`.
//!
//! "The base-results structure maintained at the coordinator is indexed on
//! K, which allows us to efficiently determine RNG(X, t, θ_K) for any tuple
//! t in H and then update the structure accordingly; i.e., the
//! synchronization can be computed in O(|H|)." (paper §3.2)
//!
//! [`BaseResult`] holds, per group: the base part of the row (key and any
//! previously finalized aggregate columns) and the raw sub-aggregate state
//! of the current segment's aggregates. [`BaseResult::merge_fragment`]
//! implements the Theorem 1 super-aggregation; [`BaseResult::finalize`]
//! renders the next base relation `B_k`.

use std::collections::HashMap;
use std::sync::Arc;

use skalla_gmdj::AggSpec;
use skalla_types::{Field, Relation, Result, Row, Schema, SkallaError};

/// Key-indexed synchronization structure.
#[derive(Debug, Clone)]
pub struct BaseResult {
    base_schema: Arc<Schema>,
    output_fields: Vec<Field>,
    key_cols: Vec<usize>,
    specs: Vec<AggSpec>,
    state_width: usize,
    index: HashMap<Row, usize>,
    rows: Vec<Row>,
    states: Vec<Vec<Value>>,
}

use skalla_types::Value;

impl BaseResult {
    /// Initialize from a synchronized base relation: one group per base row,
    /// every aggregate at its identity state.
    pub fn from_base(
        base: &Relation,
        key_cols: &[usize],
        specs: Vec<AggSpec>,
        output_fields: Vec<Field>,
    ) -> Result<BaseResult> {
        let mut br = BaseResult::empty(base.schema().clone(), key_cols, specs, output_fields);
        for row in base.rows() {
            br.insert_group(row.clone())?;
        }
        Ok(br)
    }

    /// An empty structure; groups are inserted as fragments arrive
    /// (Proposition 2 mode, where the base is never synchronized and each
    /// site contributes disjoint groups).
    pub fn empty(
        base_schema: Arc<Schema>,
        key_cols: &[usize],
        specs: Vec<AggSpec>,
        output_fields: Vec<Field>,
    ) -> BaseResult {
        let state_width = specs.iter().map(AggSpec::state_width).sum();
        BaseResult {
            base_schema,
            output_fields,
            key_cols: key_cols.to_vec(),
            specs,
            state_width,
            index: HashMap::new(),
            rows: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no groups are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The base-part schema.
    pub fn base_schema(&self) -> &Arc<Schema> {
        &self.base_schema
    }

    fn key_of(&self, base_part: &[Value]) -> Row {
        self.key_cols
            .iter()
            .map(|&c| base_part[c].clone())
            .collect()
    }

    fn insert_group(&mut self, base_part: Row) -> Result<usize> {
        if base_part.len() != self.base_schema.len() {
            return Err(SkallaError::exec(format!(
                "group row has {} columns, base schema has {}",
                base_part.len(),
                self.base_schema.len()
            )));
        }
        let key = self.key_of(&base_part);
        if let Some(&idx) = self.index.get(&key) {
            return Ok(idx);
        }
        let idx = self.rows.len();
        let mut state = Vec::with_capacity(self.state_width);
        for s in &self.specs {
            state.extend(s.init_state());
        }
        self.index.insert(key, idx);
        self.rows.push(base_part);
        self.states.push(state);
        Ok(idx)
    }

    /// Synchronize one site's fragment `H` into `X` (Theorem 1). Fragment
    /// rows are `base part ++ state columns`. With `allow_new = false`
    /// (standard rounds, where the coordinator shipped the base), a key
    /// missing from the index is an execution error; with `allow_new = true`
    /// (Proposition 2 local bases), new groups are inserted.
    ///
    /// The merge is **all-or-nothing**: arity, state types, and (without
    /// `allow_new`) key membership are validated for the whole fragment
    /// before any row is folded in, so a rejected fragment leaves `X`
    /// untouched and `DegradedMode::Partial` coverage accounting stays
    /// exact. Arithmetic overflow during the merge itself remains the one
    /// residual (query-fatal) failure.
    ///
    /// Runs in O(|H|).
    pub fn merge_fragment(&mut self, frag: &Relation, allow_new: bool) -> Result<()> {
        let expect = self.base_schema.len() + self.state_width;
        if frag.schema().len() != expect {
            return Err(SkallaError::exec(format!(
                "fragment has {} columns, expected {} (base {} + state {})",
                frag.schema().len(),
                expect,
                self.base_schema.len(),
                self.state_width
            )));
        }
        let base_width = self.base_schema.len();
        for row in frag.rows() {
            let mut off = base_width;
            for spec in &self.specs {
                let w = spec.state_width();
                spec.validate_incoming(&row[off..off + w])?;
                off += w;
            }
            if !allow_new {
                let key = self.key_of(&row[..base_width]);
                if !self.index.contains_key(&key) {
                    return Err(SkallaError::exec(format!(
                        "fragment contains unknown group key {key:?}"
                    )));
                }
            }
        }
        for row in frag.rows() {
            let base_part = &row[..base_width];
            let key = self.key_of(base_part);
            let idx = match self.index.get(&key) {
                Some(&i) => i,
                None if allow_new => self.insert_group(base_part.to_vec())?,
                None => {
                    return Err(SkallaError::exec(format!(
                        "fragment contains unknown group key {key:?}"
                    )))
                }
            };
            let state = &mut self.states[idx];
            let mut off = base_width;
            let mut soff = 0;
            for spec in &self.specs {
                let w = spec.state_width();
                spec.merge(&mut state[soff..soff + w], &row[off..off + w])?;
                off += w;
                soff += w;
            }
        }
        Ok(())
    }

    /// Render the *unfinalized* structure: base columns plus raw
    /// sub-aggregate state columns. This is what a mid-tier coordinator in
    /// a multi-tier topology ships upward — state merges associatively, so
    /// partial synchronization composes (Theorem 1 applied per tier).
    pub fn to_state_relation(&self) -> Result<Relation> {
        let state_fields: Vec<Field> = {
            // State fields carry the same names a site fragment would use;
            // reconstruct them generically (name collisions are impossible
            // because fragment schemas validated upstream).
            let mut out = Vec::with_capacity(self.state_width);
            for (i, spec) in self.specs.iter().enumerate() {
                for w in 0..spec.state_width() {
                    out.push(Field::new(
                        format!("__state_{i}_{w}"),
                        skalla_types::DataType::Int64, // placeholder, see below
                    ));
                }
            }
            out
        };
        // Types in the placeholder fields are irrelevant for wire transfer
        // of Relations (values are self-describing); but keep the relation
        // well-formed by only using it as a container.
        let mut fields = self.base_schema.fields().to_vec();
        fields.extend(state_fields);
        let schema = Arc::new(Schema::new(fields)?);
        let mut rows = Vec::with_capacity(self.rows.len());
        for (base_part, state) in self.rows.iter().zip(&self.states) {
            let mut row = base_part.clone();
            row.extend(state.iter().cloned());
            rows.push(row);
        }
        Ok(Relation::from_rows_unchecked(schema, rows))
    }

    /// Render the synchronized result `B_k`: base columns plus finalized
    /// aggregate outputs, in group insertion order.
    pub fn finalize(&self) -> Result<Relation> {
        let mut fields = self.base_schema.fields().to_vec();
        fields.extend(self.output_fields.iter().cloned());
        let schema = Arc::new(Schema::new(fields)?);

        let mut rows = Vec::with_capacity(self.rows.len());
        for (base_part, state) in self.rows.iter().zip(&self.states) {
            let mut row = base_part.clone();
            let mut off = 0;
            for spec in &self.specs {
                let w = spec.state_width();
                row.push(spec.finalize(&state[off..off + w])?);
                off += w;
            }
            rows.push(row);
        }
        Ok(Relation::from_rows_unchecked(schema, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_expr::Expr;
    use skalla_types::DataType;

    fn base() -> Relation {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        Relation::new(schema, vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(Expr::detail(1), "avg").unwrap(),
        ]
    }

    fn output_fields() -> Vec<Field> {
        vec![
            Field::new("cnt", DataType::Int64),
            Field::new("avg", DataType::Float64),
        ]
    }

    fn frag(rows: Vec<Row>) -> Relation {
        // k, cnt_state, avg_sum, avg_count
        let schema = Schema::from_pairs([
            ("k", DataType::Int64),
            ("cnt", DataType::Int64),
            ("avg__sum", DataType::Int64),
            ("avg__count", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn merges_two_site_fragments() {
        let mut x = BaseResult::from_base(&base(), &[0], specs(), output_fields()).unwrap();
        assert_eq!(x.len(), 2);
        // Site 1: group 1 matched twice (sum 10), group 2 untouched.
        x.merge_fragment(
            &frag(vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(10), Value::Int(2)],
                vec![Value::Int(2), Value::Int(0), Value::Null, Value::Int(0)],
            ]),
            false,
        )
        .unwrap();
        // Site 2: group 1 matched once (sum 20), group 2 matched once (sum 6).
        x.merge_fragment(
            &frag(vec![
                vec![Value::Int(1), Value::Int(1), Value::Int(20), Value::Int(1)],
                vec![Value::Int(2), Value::Int(1), Value::Int(6), Value::Int(1)],
            ]),
            false,
        )
        .unwrap();
        let out = x.finalize().unwrap().sorted();
        assert_eq!(out.schema().names(), vec!["k", "cnt", "avg"]);
        assert_eq!(
            out.row(0),
            &vec![Value::Int(1), Value::Int(3), Value::Float(10.0)]
        );
        assert_eq!(
            out.row(1),
            &vec![Value::Int(2), Value::Int(1), Value::Float(6.0)]
        );
    }

    #[test]
    fn reduced_fragments_omit_unmatched_groups() {
        // Site-side group reduction: site 1 ships only group 1.
        let mut x = BaseResult::from_base(&base(), &[0], specs(), output_fields()).unwrap();
        x.merge_fragment(
            &frag(vec![vec![
                Value::Int(1),
                Value::Int(1),
                Value::Int(5),
                Value::Int(1),
            ]]),
            false,
        )
        .unwrap();
        let out = x.finalize().unwrap().sorted();
        // Group 2 keeps identity aggregates.
        assert_eq!(out.row(1), &vec![Value::Int(2), Value::Int(0), Value::Null]);
    }

    #[test]
    fn unknown_group_rejected_unless_allowed() {
        let mut x = BaseResult::from_base(&base(), &[0], specs(), output_fields()).unwrap();
        let f = frag(vec![vec![
            Value::Int(99),
            Value::Int(1),
            Value::Int(5),
            Value::Int(1),
        ]]);
        assert!(x.merge_fragment(&f, false).is_err());
        x.merge_fragment(&f, true).unwrap();
        assert_eq!(x.len(), 3);
    }

    #[test]
    fn empty_mode_inserts_disjoint_groups() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let mut x = BaseResult::empty(schema, &[0], specs(), output_fields());
        assert!(x.is_empty());
        x.merge_fragment(
            &frag(vec![vec![
                Value::Int(5),
                Value::Int(1),
                Value::Int(7),
                Value::Int(1),
            ]]),
            true,
        )
        .unwrap();
        x.merge_fragment(
            &frag(vec![vec![
                Value::Int(6),
                Value::Int(2),
                Value::Int(4),
                Value::Int(2),
            ]]),
            true,
        )
        .unwrap();
        let out = x.finalize().unwrap().sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out.row(0),
            &vec![Value::Int(5), Value::Int(1), Value::Float(7.0)]
        );
        assert_eq!(
            out.row(1),
            &vec![Value::Int(6), Value::Int(2), Value::Float(2.0)]
        );
    }

    #[test]
    fn fragment_arity_checked() {
        let mut x = BaseResult::from_base(&base(), &[0], specs(), output_fields()).unwrap();
        let bad_schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let bad = Relation::new(bad_schema, vec![vec![Value::Int(1)]]).unwrap();
        assert!(x.merge_fragment(&bad, false).is_err());
    }

    #[test]
    fn rejected_fragment_leaves_structure_untouched() {
        let mut x = BaseResult::from_base(&base(), &[0], specs(), output_fields()).unwrap();
        // A valid first row followed by a bad one: a string COUNT state,
        // then (separately) an unknown key. Neither fragment may merge its
        // leading valid row.
        let bad_type = frag(vec![
            vec![Value::Int(1), Value::Int(3), Value::Int(9), Value::Int(1)],
            vec![Value::Int(2), Value::str("x"), Value::Null, Value::Int(0)],
        ]);
        assert!(x.merge_fragment(&bad_type, false).is_err());
        let bad_key = frag(vec![
            vec![Value::Int(1), Value::Int(3), Value::Int(9), Value::Int(1)],
            vec![Value::Int(99), Value::Int(1), Value::Null, Value::Int(0)],
        ]);
        assert!(x.merge_fragment(&bad_key, false).is_err());
        let out = x.finalize().unwrap().sorted();
        // Every group is still at the identity state.
        assert_eq!(out.row(0), &vec![Value::Int(1), Value::Int(0), Value::Null]);
        assert_eq!(out.row(1), &vec![Value::Int(2), Value::Int(0), Value::Null]);
    }

    #[test]
    fn duplicate_base_rows_collapse_to_one_group() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let dup = Relation::new(
            schema,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        let x = BaseResult::from_base(&dup, &[0], specs(), output_fields()).unwrap();
        assert_eq!(x.len(), 2);
    }

    #[test]
    fn composite_keys_use_all_key_columns() {
        let schema = Schema::from_pairs([("a", DataType::Int64), ("b", DataType::Int64)])
            .unwrap()
            .into_arc();
        let base = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(1), Value::Int(2)],
            ],
        )
        .unwrap();
        let x = BaseResult::from_base(
            &base,
            &[0, 1],
            vec![AggSpec::count_star("c")],
            vec![Field::new("c", DataType::Int64)],
        )
        .unwrap();
        assert_eq!(x.len(), 2);
        assert_eq!(x.base_schema().len(), 2);
    }
}
