//! Concurrent query scheduler: fair, round-granular multiplexing of many
//! client queries over one shared set of site engines.
//!
//! The paper's architecture (§5) has many analysts issuing GMDJ queries
//! against shared warehouse sites. This module is the admission and
//! scheduling layer that makes that safe on the reproduction's engine:
//!
//! * **Bounded admission with backpressure.** At most
//!   [`SchedConfig::queue_depth`] queries are admitted (queued +
//!   executing) at once. [`QueryScheduler::try_submit`] reports
//!   [`Admission::Busy`] when the bound is hit — the serving layer turns
//!   that into an explicit busy response so clients back off instead of
//!   piling unbounded work onto the coordinator.
//!   [`QueryScheduler::submit`] blocks until a slot frees.
//! * **Fair round-robin interleaving.** A single executor thread owns the
//!   warehouse and steps up to [`SchedConfig::max_interleave`] admitted
//!   [`QueryRun`]s one synchronization round at a time, round-robin.
//!   Theorem 1 makes the interleave sound: between rounds a query's whole
//!   state is its synchronized base-result at the coordinator, so site
//!   engines can serve another query's round in between. Per-run epochs
//!   and reliable plan re-installs (see [`QueryRun`]) keep the
//!   interleaved rounds isolated.
//! * **Result caching.** Before execution, the plan is looked up in a
//!   [`ResultCache`] keyed by the checkpoint WAL's plan fingerprint; a
//!   hit replies immediately without touching the sites and sets
//!   [`ExecMetrics::cache_hits`]. Completed queries with complete
//!   coverage are inserted; partial results never are.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use skalla_types::{Relation, Result, SkallaError};

use crate::cache::{CacheStats, PlanKey, ResultCache};
use crate::metrics::ExecMetrics;
use crate::plan::DistPlan;
use crate::warehouse::{DistributedWarehouse, QueryRun};

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Admission bound: queued plus executing queries (clamped to ≥ 1).
    /// Submissions beyond it are rejected with [`Admission::Busy`].
    pub queue_depth: usize,
    /// How many admitted queries the executor interleaves at once
    /// (clamped to ≥ 1). `1` degenerates to strict FIFO execution.
    pub max_interleave: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            queue_depth: 64,
            max_interleave: 4,
            cache_capacity: 128,
        }
    }
}

/// Outcome of a non-blocking submission.
pub enum Admission {
    /// The query was admitted; await its result on the ticket.
    Admitted(QueryTicket),
    /// The admission queue is full — back off and retry.
    Busy,
}

/// The reply handle for a submitted query.
pub struct QueryTicket {
    rx: Receiver<Result<(Relation, ExecMetrics)>>,
}

impl QueryTicket {
    /// Block until the query finishes (or fails).
    pub fn wait(self) -> Result<(Relation, ExecMetrics)> {
        self.rx
            .recv()
            .map_err(|_| SkallaError::exec("scheduler shut down before the query finished"))?
    }
}

/// Aggregate scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Queries accepted into the admission queue.
    pub submitted: u64,
    /// Non-blocking submissions rejected with [`Admission::Busy`].
    pub rejected: u64,
    /// Queries answered successfully (cache hits included).
    pub completed: u64,
    /// Queries that ended in an error reply.
    pub failed: u64,
    /// The configured admission bound.
    pub queue_depth: usize,
    /// Queries currently admitted (queued + executing).
    pub in_flight: usize,
}

struct Ticket {
    plan: DistPlan,
    reply: Sender<Result<(Relation, ExecMetrics)>>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

struct Shared {
    /// Queries currently admitted; guarded so admission is exact, with
    /// `freed` signaled on every release for blocking submitters.
    admitted: Mutex<usize>,
    freed: Condvar,
    depth: usize,
    caching: bool,
    cache: Mutex<ResultCache>,
    counters: Counters,
}

/// The serving layer's query scheduler; see the module docs.
///
/// Clone-free sharing: wrap it in an `Arc` and hand it to every session
/// thread — all methods take `&self`.
pub struct QueryScheduler {
    shared: Arc<Shared>,
    wh: Arc<DistributedWarehouse>,
    tx: Mutex<Option<Sender<Ticket>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl QueryScheduler {
    /// Start the executor thread over `wh`.
    pub fn launch(wh: Arc<DistributedWarehouse>, cfg: SchedConfig) -> QueryScheduler {
        let depth = cfg.queue_depth.max(1);
        let interleave = cfg.max_interleave.max(1);
        let shared = Arc::new(Shared {
            admitted: Mutex::new(0),
            freed: Condvar::new(),
            depth,
            caching: cfg.cache_capacity > 0,
            cache: Mutex::new(ResultCache::new(cfg.cache_capacity)),
            counters: Counters::default(),
        });
        let (tx, rx) = channel::<Ticket>();
        let sh = Arc::clone(&shared);
        let wh2 = Arc::clone(&wh);
        let worker = std::thread::spawn(move || worker_loop(&wh2, rx, &sh, interleave));
        QueryScheduler {
            shared,
            wh,
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Submit without blocking: [`Admission::Busy`] when the admission
    /// queue is full.
    pub fn try_submit(&self, plan: DistPlan) -> Result<Admission> {
        {
            let mut admitted = self.shared.admitted.lock().expect("admission lock");
            if *admitted >= self.shared.depth {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(Admission::Busy);
            }
            *admitted += 1;
        }
        self.enqueue(plan).map(Admission::Admitted)
    }

    /// Submit, blocking until an admission slot frees up.
    pub fn submit(&self, plan: DistPlan) -> Result<QueryTicket> {
        {
            let mut admitted = self.shared.admitted.lock().expect("admission lock");
            while *admitted >= self.shared.depth {
                admitted = self.shared.freed.wait(admitted).expect("admission lock");
            }
            *admitted += 1;
        }
        self.enqueue(plan)
    }

    fn enqueue(&self, plan: DistPlan) -> Result<QueryTicket> {
        let (reply, rx) = channel();
        let tx = self.tx.lock().expect("sender lock");
        let sent = tx
            .as_ref()
            .ok_or_else(|| SkallaError::exec("scheduler is shut down"))
            .and_then(|tx| {
                tx.send(Ticket { plan, reply })
                    .map_err(|_| SkallaError::exec("scheduler executor is gone"))
            });
        match sent {
            Ok(()) => {
                self.shared
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(QueryTicket { rx })
            }
            Err(e) => {
                release_slot(&self.shared);
                Err(e)
            }
        }
    }

    /// Drop every cached result. Must be called whenever site data
    /// changes — the cache key fingerprints the plan, not the data.
    pub fn invalidate_cache(&self) {
        self.shared.cache.lock().expect("cache lock").invalidate();
    }

    /// Replace `table` with fresh on-disk segment files at every site
    /// (site *i* opens `paths[i-1]`) and drop every cached result, as one
    /// atomic step from the queries' point of view: the call drains
    /// in-flight queries first and holds new admissions out until both the
    /// swap and the invalidation are done. A query admitted after this
    /// returns can therefore neither scan half-swapped data nor be
    /// answered from a result computed against the old data. Returns
    /// per-site row counts of the new files.
    ///
    /// Every incoming file's checksums (header, footer, and all column
    /// blocks) are verified *before* any site swaps, so a corrupt
    /// directory is refused whole: either all sites rebind to verified
    /// files or the previous binding stays live everywhere.
    pub fn reload_segments(&self, table: &str, paths: &[String]) -> Result<Vec<u64>> {
        for p in paths {
            let f = skalla_storage::SegmentFile::open(p)?;
            f.verify().map_err(|e| {
                SkallaError::corrupt(format!("refusing reload: {e} (table `{table}`)"))
            })?;
        }
        let admitted = self.shared.admitted.lock().expect("admission lock");
        let _quiesced = self
            .shared
            .freed
            .wait_while(admitted, |n| *n > 0)
            .expect("admission lock");
        let rows = self.wh.load_segments(table, paths)?;
        self.shared.cache.lock().expect("cache lock").invalidate();
        Ok(rows)
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().expect("cache lock").stats()
    }

    /// Scheduler counters.
    pub fn stats(&self) -> SchedStats {
        let c = &self.shared.counters;
        SchedStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            queue_depth: self.shared.depth,
            in_flight: *self.shared.admitted.lock().expect("admission lock"),
        }
    }

    /// Stop accepting queries, drain the ones already admitted, and join
    /// the executor.
    pub fn shutdown(&self) -> Result<()> {
        drop(self.tx.lock().expect("sender lock").take());
        if let Some(h) = self.worker.lock().expect("worker lock").take() {
            h.join()
                .map_err(|_| SkallaError::exec("scheduler executor panicked"))?;
        }
        Ok(())
    }
}

impl Drop for QueryScheduler {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

struct Active<'w> {
    id: u64,
    run: QueryRun<'w>,
    reply: Sender<Result<(Relation, ExecMetrics)>>,
    /// `Some` iff caching is enabled for this query (the key is computed
    /// once, shared by the lookup on admission and the insert on
    /// completion).
    key: Option<PlanKey>,
    /// The plan's requested sync worker count, the ceiling for the
    /// window-aware scaling in [`worker_loop`].
    sync_workers: usize,
}

/// The executor: pull admitted tickets, step active runs round-robin one
/// synchronization round at a time, reply and release the admission slot
/// on completion. Exits once the scheduler handle is dropped *and* every
/// admitted query has been drained.
fn worker_loop(wh: &DistributedWarehouse, rx: Receiver<Ticket>, sh: &Shared, interleave: usize) {
    let mut active: Vec<Active<'_>> = Vec::new();
    let mut next_id = 0u64;
    let mut rr = 0usize;
    // The run whose plan the sites currently hold. `QueryRun::new`
    // installs the plan at begin, so every admission transfers ownership;
    // stepping a run that is not the owner re-installs its plan first.
    let mut engine_owner: Option<u64> = None;
    let mut disconnected = false;
    loop {
        // Fill the interleave window from the admission queue.
        while active.len() < interleave && !disconnected {
            match rx.try_recv() {
                Ok(t) => {
                    if let Some(a) = admit(wh, sh, &mut next_id, t) {
                        engine_owner = Some(a.id);
                        active.push(a);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => disconnected = true,
            }
        }
        if active.is_empty() {
            if disconnected {
                return;
            }
            // Idle: block until the next submission (or shutdown).
            match rx.recv() {
                Ok(t) => {
                    if let Some(a) = admit(wh, sh, &mut next_id, t) {
                        engine_owner = Some(a.id);
                        active.push(a);
                    }
                    continue;
                }
                Err(_) => return,
            }
        }
        // Step the next run in round-robin order.
        if rr >= active.len() {
            rr = 0;
        }
        let window = active.len();
        let a = &mut active[rr];
        if engine_owner != Some(a.id) {
            a.run.mark_plan_stale();
        }
        engine_owner = Some(a.id);
        // Split the sync worker budget across the interleave window: N
        // concurrently stepped runs each get ~1/N of their requested
        // workers (never below 1), so a full window does not oversubscribe
        // the host with N full worker pools. Results are unaffected —
        // sync output is bit-for-bit invariant to the worker count — and
        // the cache key was computed from the plan at admission, before
        // this adjustment.
        a.run
            .set_coord_parallelism((a.sync_workers / window).max(1));
        match a.run.step() {
            Ok(false) => rr += 1,
            Ok(true) => {
                let done = active.remove(rr);
                finish(sh, done);
            }
            Err(e) => {
                let failed = active.remove(rr);
                let _ = failed.reply.send(Err(e));
                sh.counters.failed.fetch_add(1, Ordering::Relaxed);
                release_slot(sh);
            }
        }
    }
}

/// Admit one ticket: answer from the cache if possible, otherwise begin a
/// run. Returns `None` when the ticket was already answered (hit or
/// begin-error).
fn admit<'w>(
    wh: &'w DistributedWarehouse,
    sh: &Shared,
    next_id: &mut u64,
    t: Ticket,
) -> Option<Active<'w>> {
    let key = if sh.caching {
        let key = PlanKey::of(&t.plan);
        let cached = sh.cache.lock().expect("cache lock").lookup(&key);
        if let Some(rel) = cached {
            // Synthetic metrics: no rounds ran, nothing crossed the wire.
            let m = ExecMetrics {
                cost_model: Some(wh.network().cost_model()),
                cache_hits: 1,
                ..ExecMetrics::default()
            };
            let _ = t.reply.send(Ok((rel, m)));
            sh.counters.completed.fetch_add(1, Ordering::Relaxed);
            release_slot(sh);
            return None;
        }
        Some(key)
    } else {
        None
    };
    match wh.begin(&t.plan) {
        Ok(run) => {
            *next_id += 1;
            Some(Active {
                id: *next_id,
                run,
                reply: t.reply,
                key,
                sync_workers: t.plan.coord_parallelism,
            })
        }
        Err(e) => {
            let _ = t.reply.send(Err(e));
            sh.counters.failed.fetch_add(1, Ordering::Relaxed);
            release_slot(sh);
            None
        }
    }
}

/// Reply to a completed run, cache its result when eligible, release the
/// admission slot.
fn finish(sh: &Shared, a: Active<'_>) {
    match a.run.into_result() {
        Ok((rel, mut m)) => {
            if let Some(key) = &a.key {
                m.cache_misses = 1;
                // `insert` refuses partial coverage, so a degraded answer
                // can never be replayed as an exact one.
                sh.cache
                    .lock()
                    .expect("cache lock")
                    .insert(key, rel.clone(), m.coverage);
            }
            let _ = a.reply.send(Ok((rel, m)));
            sh.counters.completed.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            let _ = a.reply.send(Err(e));
            sh.counters.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    release_slot(sh);
}

fn release_slot(sh: &Shared) {
    let mut admitted = sh.admitted.lock().expect("admission lock");
    *admitted = admitted.saturating_sub(1);
    drop(admitted);
    sh.freed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_expr::Expr;
    use skalla_gmdj::{eval_expr_centralized, AggSpec, BaseSpec, GmdjBlock, GmdjExpr, GmdjOp};
    use skalla_net::CostModel;
    use skalla_storage::{partition_by_hash, Catalog, Table};
    use skalla_types::{DataType, Schema, Value};

    fn flow_schema() -> Arc<Schema> {
        Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc()
    }

    fn flow_table(rows: usize) -> Table {
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Int((i % 7) as i64),
                    Value::Int((i % 5) as i64),
                    Value::Int((i * 13 % 101) as i64),
                ]
            })
            .collect();
        Table::from_rows(flow_schema(), &data).unwrap()
    }

    fn warehouse(n_sites: usize, rows: usize) -> (Arc<DistributedWarehouse>, Catalog) {
        let t = flow_table(rows);
        let parts = partition_by_hash(&t, 0, n_sites).unwrap();
        let catalogs: Vec<Catalog> = parts
            .parts
            .iter()
            .map(|p| {
                let mut c = Catalog::new();
                c.register("flow", p.clone());
                c
            })
            .collect();
        let mut full = Catalog::new();
        full.register("flow", t);
        (
            Arc::new(DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap()),
            full,
        )
    }

    /// A one-operator query whose aggregate threshold varies, so each `k`
    /// is a distinct plan (and distinct cache key).
    fn query(k: i64) -> GmdjExpr {
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::detail(2).ge(Expr::lit(k))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "flow",
            vec![op],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn interleaved_queries_match_serial_execution() {
        let (wh, full) = warehouse(3, 240);
        let sched = Arc::new(QueryScheduler::launch(
            Arc::clone(&wh),
            SchedConfig {
                queue_depth: 16,
                max_interleave: 4,
                cache_capacity: 0,
            },
        ));
        let ks: Vec<i64> = (0..8).collect();
        let handles: Vec<_> = ks
            .iter()
            .map(|&k| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || {
                    let plan = DistPlan::unoptimized(query(k));
                    sched.submit(plan).unwrap().wait().unwrap()
                })
            })
            .collect();
        for (k, h) in ks.iter().zip(handles) {
            let (rel, m) = h.join().unwrap();
            let cent = eval_expr_centralized(&query(*k), &full).unwrap();
            assert_eq!(rel.sorted(), cent.sorted(), "query k={k}");
            assert!(m.coverage.unwrap().is_complete());
        }
        let s = sched.stats();
        assert_eq!(s.submitted, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(s.failed, 0);
        sched.shutdown().unwrap();
        drop(sched);
        Arc::try_unwrap(wh).ok().unwrap().shutdown().unwrap();
    }

    #[test]
    fn repeated_plan_hits_cache_until_invalidated() {
        let (wh, _full) = warehouse(2, 120);
        let sched = QueryScheduler::launch(Arc::clone(&wh), SchedConfig::default());
        let plan = DistPlan::unoptimized(query(50));

        let (r1, m1) = sched.submit(plan.clone()).unwrap().wait().unwrap();
        assert_eq!(m1.cache_misses, 1);
        assert_eq!(m1.cache_hits, 0);

        let (r2, m2) = sched.submit(plan.clone()).unwrap().wait().unwrap();
        assert_eq!(m2.cache_hits, 1);
        assert_eq!(m2.cache_misses, 0);
        assert_eq!(m2.num_rounds(), 0); // never touched the sites
        assert_eq!(r1.sorted(), r2.sorted());

        sched.invalidate_cache();
        let (r3, m3) = sched.submit(plan).unwrap().wait().unwrap();
        assert_eq!(m3.cache_misses, 1);
        assert_eq!(r1.sorted(), r3.sorted());

        let cs = sched.cache_stats();
        assert_eq!(cs.hits, 1);
        assert_eq!(cs.invalidations, 1);
        sched.shutdown().unwrap();
        drop(sched);
        Arc::try_unwrap(wh).ok().unwrap().shutdown().unwrap();
    }

    /// The stale-cache regression: once a table is reloaded from disk,
    /// a result cached against the old data must never be served again.
    #[test]
    fn reload_segments_evicts_stale_cached_results() {
        let (wh, _full) = warehouse(2, 120);
        let sched = QueryScheduler::launch(Arc::clone(&wh), SchedConfig::default());
        let plan = DistPlan::unoptimized(query(50));

        let (r1, m1) = sched.submit(plan.clone()).unwrap().wait().unwrap();
        assert_eq!(m1.cache_misses, 1);
        let (_r2, m2) = sched.submit(plan.clone()).unwrap().wait().unwrap();
        assert_eq!(m2.cache_hits, 1);

        // The data changes: each site's partition is replaced by a
        // segment file holding twice the rows. The cached answer for the
        // same plan is now wrong.
        let new = flow_table(240);
        let parts = partition_by_hash(&new, 0, 2).unwrap();
        let dir = std::env::temp_dir().join(format!("skalla-sched-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths: Vec<String> = parts
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let path = dir.join(format!("flow-{i}.seg"));
                skalla_storage::write_segments(&path, p, 64).unwrap();
                path.to_string_lossy().into_owned()
            })
            .collect();
        let per_site = sched.reload_segments("flow", &paths).unwrap();
        assert_eq!(per_site.iter().sum::<u64>(), 240);

        // Same plan again: must re-execute against the new data, not
        // replay the stale cached relation.
        let (r3, m3) = sched.submit(plan).unwrap().wait().unwrap();
        assert_eq!(m3.cache_hits, 0);
        assert_eq!(m3.cache_misses, 1);
        let mut full = Catalog::new();
        full.register("flow", new);
        let cent = eval_expr_centralized(&query(50), &full).unwrap();
        assert_eq!(r3.sorted(), cent.sorted());
        assert_ne!(r1.sorted(), r3.sorted(), "stale answer served after reload");

        sched.shutdown().unwrap();
        drop(sched);
        Arc::try_unwrap(wh).ok().unwrap().shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admission_queue_backpressure() {
        let (wh, _full) = warehouse(2, 200);
        let sched = QueryScheduler::launch(
            Arc::clone(&wh),
            SchedConfig {
                queue_depth: 2,
                max_interleave: 2,
                cache_capacity: 0,
            },
        );
        // Fire 10 submissions back-to-back: at most 2 can be admitted at
        // once, and the executor cannot finish a multi-round distributed
        // query within the microseconds between submissions.
        let mut tickets = Vec::new();
        let mut busy = 0;
        for k in 0..10 {
            match sched.try_submit(DistPlan::unoptimized(query(k))).unwrap() {
                Admission::Admitted(t) => tickets.push(t),
                Admission::Busy => busy += 1,
            }
        }
        assert!(busy > 0, "expected at least one Busy rejection");
        assert!(!tickets.is_empty());
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(sched.stats().rejected, busy);
        sched.shutdown().unwrap();
        drop(sched);
        Arc::try_unwrap(wh).ok().unwrap().shutdown().unwrap();
    }

    #[test]
    fn shutdown_drains_admitted_queries() {
        let (wh, _full) = warehouse(2, 100);
        let sched = QueryScheduler::launch(Arc::clone(&wh), SchedConfig::default());
        let t1 = sched.submit(DistPlan::unoptimized(query(1))).unwrap();
        let t2 = sched.submit(DistPlan::unoptimized(query(2))).unwrap();
        sched.shutdown().unwrap();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        assert!(sched.submit(DistPlan::unoptimized(query(3))).is_err());
        drop(sched);
        Arc::try_unwrap(wh).ok().unwrap().shutdown().unwrap();
    }
}
