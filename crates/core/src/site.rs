//! The Skalla site worker.
//!
//! Each site is an OS thread owning its local [`Catalog`] (its partition of
//! the warehouse's fact relations) and an [`Endpoint`] into the simulated
//! network. The worker answers coordinator requests until it receives
//! [`Message::Shutdown`]. Failures are reported back as [`Message::Error`]
//! rather than crashing the fabric.

use std::hash::{Hash, Hasher};

use skalla_gmdj::{
    eval_gmdj_dual, eval_gmdj_dual_segments, eval_gmdj_sub, eval_gmdj_sub_segments, BaseSpec,
    EvalOptions, GmdjExpr, SegScanStats, MATCH_COUNT_COL,
};
use skalla_net::Endpoint;
use skalla_storage::{
    partition_table_name, Catalog, PartFrag, PartSketch, SegmentFile, SpaceSaving, Table,
};
use skalla_types::{Relation, Result, Schema, SkallaError, Value};

use crate::message::{Message, ScrubEntry};
use crate::plan::DistPlan;

/// The clock behind every `compute_s` a site reports: per-thread CPU
/// seconds. Sites are threads of one process sharing the host's cores,
/// but they model machines that each own theirs — a wall clock would
/// charge a site for time the OS spent running its neighbours, which
/// inverts every comparison that changes how much sites overlap (a
/// skew-balanced layout looks *slower* than a stragglered one on a
/// small host). Thread CPU time is what the modeled cluster would
/// measure; `RoundMetrics::site_compute_max_s` stays the true parallel
/// critical path at any host core count.
fn site_clock_s() -> f64 {
    crate::sync::thread_cpu_s()
}

/// Run the site worker loop until shutdown. Intended to be the body of a
/// spawned thread; the coordinator is node 0.
pub fn run_site(endpoint: Endpoint, catalog: Catalog) {
    run_site_with_parent(endpoint, catalog, 0)
}

/// [`run_site`] replying to an arbitrary parent node — used by the
/// multi-tier topology, where sites report to a mid-tier coordinator.
pub fn run_site_with_parent(endpoint: Endpoint, catalog: Catalog, parent: skalla_net::NodeId) {
    let mut state = SiteState {
        catalog,
        plan: None,
        frag_cache: std::cell::RefCell::new(None),
    };
    // One-entry reply cache keyed by `(epoch, round, task)`. The
    // coordinator re-sends a round request when its deadline expires; a
    // site that already served that exact round replays its reply (the
    // original may have been lost in transit) instead of recomputing. One
    // entry suffices: the coordinator never moves to round r+1 before
    // round r is settled, so a duplicate can only concern the latest round
    // served — the task id keeps a straggler-offload assignment from
    // replaying the site's reply for a different work set in that round.
    let mut reply_cache: Option<(u64, u32, u32, Vec<Message>)> = None;
    loop {
        let env = match endpoint.recv() {
            Ok(e) => e,
            Err(_) => return, // fabric torn down (or this site was crashed)
        };
        let (epoch, round, msg) = match Message::from_wire_framed(&env.payload) {
            Ok(m) => m,
            Err(e) => {
                let _ = reply(
                    &endpoint,
                    parent,
                    0,
                    0,
                    Message::Error {
                        msg: e.to_string(),
                        corrupt: false,
                    },
                );
                continue;
            }
        };
        if matches!(msg, Message::Shutdown) {
            return;
        }
        // Plan installs are idempotent and produce no reply; they bypass
        // the cache so a re-sent Plan + request pair still answers the
        // request.
        if let Message::Plan(p) = msg {
            state.plan = Some(p);
            continue;
        }
        let task = request_task(&msg);
        if let Some((ce, cr, ct, cached)) = &reply_cache {
            if *ce == epoch && *cr == round && *ct == task {
                for resp in cached.clone() {
                    if reply(&endpoint, parent, epoch, round, resp).is_err() {
                        return;
                    }
                }
                continue;
            }
        }
        match state.handle(msg) {
            Ok(responses) => {
                reply_cache = Some((epoch, round, task, responses.clone()));
                for resp in responses {
                    if reply(&endpoint, parent, epoch, round, resp).is_err() {
                        return;
                    }
                }
            }
            // Errors are not cached: a retried request recomputes, which
            // also re-fails for deterministic errors but lets transient
            // conditions clear.
            Err(e) => {
                if reply(
                    &endpoint,
                    parent,
                    epoch,
                    round,
                    Message::Error {
                        msg: e.to_string(),
                        corrupt: e.is_corrupt(),
                    },
                )
                .is_err()
                {
                    return;
                }
            }
        }
    }
}

fn reply(
    endpoint: &Endpoint,
    parent: skalla_net::NodeId,
    epoch: u64,
    round: u32,
    msg: Message,
) -> Result<()> {
    endpoint.send(parent, msg.to_wire_framed(epoch, round))
}

/// The work-assignment id a request carries (0 for messages that predate
/// the task protocol, e.g. `ShipAllRequest`).
fn request_task(msg: &Message) -> u32 {
    match msg {
        Message::ComputeBase { task, .. }
        | Message::Round { task, .. }
        | Message::LocalRun { task, .. } => *task,
        _ => 0,
    }
}

/// A cached materialized detail table: (table name, fragment list) key
/// plus the assembled rows.
type FragCacheEntry = (String, Vec<PartFrag>, std::sync::Arc<Table>);

/// The detail relation a scan runs over: an in-memory table, or an
/// on-disk segment file streamed one segment at a time (optionally
/// windowed to a global row range for fragment addressing).
enum LocalDetail {
    /// Fully materialized rows.
    Mem(std::sync::Arc<Table>),
    /// Out-of-core segment store, with an optional `[start, end)` global
    /// row window.
    Seg(std::sync::Arc<SegmentFile>, Option<(usize, usize)>),
}

/// Mutable per-site state.
struct SiteState {
    catalog: Catalog,
    plan: Option<DistPlan>,
    /// One-entry cache of the last materialized multi-fragment detail
    /// table, keyed by (table name, fragment list). A query's rounds
    /// name the same split layout once per synchronization; without the
    /// cache each round would pay a fresh columnar copy of the site's
    /// whole work list.
    frag_cache: std::cell::RefCell<Option<FragCacheEntry>>,
}

impl SiteState {
    fn handle(&mut self, msg: Message) -> Result<Vec<Message>> {
        match msg {
            Message::Plan(p) => {
                self.plan = Some(p);
                Ok(Vec::new())
            }
            Message::ComputeBase { parts, task } => {
                self.compute_base(parts.as_deref(), task).map(|m| vec![m])
            }
            Message::Round {
                op_idx,
                base,
                parts,
                task,
            } => self.round(op_idx as usize, base, parts.as_deref(), task),
            Message::LocalRun {
                start,
                end,
                base,
                parts,
                task,
            } => self.local_run(start as usize, end as usize, base, parts.as_deref(), task),
            Message::LoadSegments { table, path, part } => {
                let file = std::sync::Arc::new(SegmentFile::open(&path)?);
                let rows = file.total_rows() as u64;
                // Under replicated placement the same rows are also the
                // site's primary partition: bind the mangled alias to the
                // same file, so partition-addressed scans stream from
                // disk exactly like plain-name scans.
                if let Some(p) = part {
                    self.catalog
                        .register_segments(partition_table_name(&table, p as usize), file.clone());
                }
                self.catalog.register_segments(table, file);
                // Any materialized fragment union may now be stale.
                *self.frag_cache.borrow_mut() = None;
                Ok(vec![Message::SegmentsLoaded { rows }])
            }
            Message::ShipAllRequest { table } => {
                let started = site_clock_s();
                let t = self.catalog.get(&table)?;
                let rel = t.to_relation();
                Ok(vec![Message::ShipAllData {
                    rel,
                    compute_s: site_clock_s() - started,
                }])
            }
            Message::ScrubRequest => Ok(vec![self.scrub()]),
            other => Err(SkallaError::exec(format!(
                "site received unexpected message {other:?}"
            ))),
        }
    }

    /// Verify every segment-backed catalog entry's checksums off the query
    /// path. A corrupt file is quarantined — renamed to
    /// `<path>.quarantined` and unregistered — so queries get a typed miss
    /// instead of bad bytes until the coordinator repairs the partition
    /// from a replica.
    fn scrub(&mut self) -> Message {
        let names: Vec<String> = self
            .catalog
            .table_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        // Group segment-backed entries by file: under replicated
        // placement one file is registered under both the plain table
        // name and the primary-partition alias — it is a single disk
        // artifact, verified (and quarantined) once.
        let mut files: Vec<(std::path::PathBuf, std::sync::Arc<SegmentFile>, Vec<String>)> =
            Vec::new();
        for name in names {
            let Some(file) = self.catalog.get_segments(&name) else {
                continue;
            };
            let path = file.path().to_path_buf();
            match files.iter_mut().find(|(p, _, _)| *p == path) {
                Some((_, _, ns)) => ns.push(name),
                None => files.push((path, file, vec![name])),
            }
        }
        let mut entries = Vec::new();
        for (path, file, mut names) in files {
            // Report under the plain name when both are bound — that is
            // the name the coordinator's replica map addresses repairs
            // by.
            names.sort_by_key(|n| n.starts_with("__part::"));
            let name = names[0].clone();
            let entry = match file.verify() {
                Ok(blocks) => ScrubEntry {
                    table: name,
                    path: path.display().to_string(),
                    blocks,
                    error: None,
                },
                Err(e) => {
                    drop(file);
                    let mut q = path.as_os_str().to_owned();
                    q.push(".quarantined");
                    let _ = std::fs::rename(&path, std::path::PathBuf::from(q));
                    // Every name bound to the file must go: a surviving
                    // alias would keep serving the quarantined bytes
                    // through its still-open handle.
                    for n in &names {
                        self.catalog.unregister(n);
                    }
                    *self.frag_cache.borrow_mut() = None;
                    ScrubEntry {
                        table: name,
                        path: path.display().to_string(),
                        blocks: 0,
                        error: Some(e.to_string()),
                    }
                }
            };
            entries.push(entry);
        }
        Message::ScrubReport { entries }
    }

    fn plan(&self) -> Result<&DistPlan> {
        self.plan
            .as_ref()
            .ok_or_else(|| SkallaError::exec("no plan installed at site"))
    }

    fn expr(&self) -> Result<&GmdjExpr> {
        Ok(&self.plan()?.expr)
    }

    /// Resolve the detail relation a request aggregates over. `parts: None`
    /// is the replication-unaware protocol — the site's primary partition,
    /// registered under the plain table name. `Some(fs)` names replicated
    /// partition fragments (tables registered by
    /// `skalla-storage::replicate_catalogs` under their mangled names) and
    /// unions them; failover uses this to hand a dead site's partitions to
    /// a surviving replica host, and skew-aware splitting uses row-range
    /// fragments to spread a hot partition over several hosts. Replicas
    /// are bit-identical with identical row order, so a `PartFrag` row
    /// range denotes the same rows on every host.
    fn detail_table(
        &self,
        name: &str,
        parts: Option<&[PartFrag]>,
    ) -> Result<std::sync::Arc<Table>> {
        let Some(fs) = parts else {
            return self.catalog.get(name);
        };
        if fs.is_empty() {
            return Err(SkallaError::exec("request names an empty fragment list"));
        }
        if fs.len() == 1 && fs[0].is_whole() {
            return self
                .catalog
                .get(&partition_table_name(name, fs[0].part as usize));
        }
        if let Some((n, f, t)) = self.frag_cache.borrow().as_ref() {
            if n == name && f == fs {
                return Ok(t.clone());
            }
        }
        // Columnar assembly: whole partitions and row-range slices are
        // bulk typed-vector copies, never per-row pushes — fragment
        // materialization must stay cheap relative to the scan it slices.
        let mut pieces: Vec<Table> = Vec::with_capacity(fs.len());
        for f in fs {
            let t = self
                .catalog
                .get(&partition_table_name(name, f.part as usize))?;
            if f.is_whole() {
                pieces.push((*t).clone());
            } else {
                let (start, end) = f.row_bounds(t.len());
                pieces.push(t.row_range(start, end)?);
            }
        }
        let table = std::sync::Arc::new(Table::concat(&pieces)?);
        *self.frag_cache.borrow_mut() = Some((name.to_string(), fs.to_vec(), table.clone()));
        Ok(table)
    }

    /// [`SiteState::detail_table`] that keeps segment-backed partitions
    /// out-of-core. A request resolving to exactly one segment-backed
    /// partition (the common case — `parts: None`, or a single fragment)
    /// streams from disk; a multi-fragment union over segment files falls
    /// back to materialization via [`Catalog::get`], which stays correct
    /// but pays the decode (failover hands a site at most a few extra
    /// partitions, so the fallback is rare and bounded).
    fn detail_source(&self, name: &str, parts: Option<&[PartFrag]>) -> Result<LocalDetail> {
        match parts {
            None => {
                if let Some(f) = self.catalog.get_segments(name) {
                    return Ok(LocalDetail::Seg(f, None));
                }
            }
            Some([f]) => {
                let pname = partition_table_name(name, f.part as usize);
                if let Some(file) = self.catalog.get_segments(&pname) {
                    let range = (!f.is_whole()).then(|| f.row_bounds(file.total_rows()));
                    return Ok(LocalDetail::Seg(file, range));
                }
            }
            Some(_) => {}
        }
        self.detail_table(name, parts).map(LocalDetail::Mem)
    }

    /// Per-partition sketches for the partitions a request names. `rows`
    /// is the *whole* partition's cardinality (the site hosts the full
    /// replica even when asked for a fragment of it), so coordinator-side
    /// load estimates are exact regardless of how the request was sliced.
    /// When `heavy_cols` is given, a space-saving heavy-hitter sketch over
    /// those columns is gathered from the requested row ranges.
    fn part_sketches(
        &self,
        name: &str,
        parts: Option<&[PartFrag]>,
        heavy_cols: Option<&[usize]>,
    ) -> Result<Vec<PartSketch>> {
        // The replication-unaware protocol has no partition ids to report.
        let Some(fs) = parts else {
            return Ok(Vec::new());
        };
        let mut out: Vec<PartSketch> = Vec::new();
        // One sketch per partition, accumulated across that partition's
        // fragments (a split partition sends several row ranges to one
        // site; its heavy hitters are a property of the partition, not of
        // any single slice).
        let mut sketches: Vec<SpaceSaving> = Vec::new();
        for f in fs {
            let pname = partition_table_name(name, f.part as usize);
            // Segment-backed partitions report cardinality from footer
            // metadata and sketch by streaming — never materialized whole.
            let seg = self.catalog.get_segments(&pname);
            let mem = match &seg {
                Some(_) => None,
                None => Some(self.catalog.get(&pname)?),
            };
            let total = match (&seg, &mem) {
                (Some(file), _) => file.total_rows(),
                (None, Some(t)) => t.len(),
                (None, None) => unreachable!("resolved above"),
            };
            if out.last().map(|s| s.part) != Some(f.part) {
                out.push(PartSketch {
                    part: f.part,
                    rows: total as u64,
                    heavy: Vec::new(),
                });
                sketches.push(SpaceSaving::new(HEAVY_HITTER_CAP));
            }
            if let Some(cols) = heavy_cols {
                let (start, end) = if f.is_whole() {
                    (0, total)
                } else {
                    f.row_bounds(total)
                };
                let ss = sketches.last_mut().expect("just pushed");
                match (&seg, &mem) {
                    (Some(file), _) => offer_segment_rows(file, cols, start, end, ss)?,
                    (None, Some(t)) => {
                        // Columnar scan: hash only the group-key columns by
                        // index — no per-row materialization, and a
                        // fragment's nonzero start offset costs nothing
                        // (iterating rows and skipping the prefix would
                        // charge split fragments for rows they never
                        // compute on).
                        let key_cols: Vec<_> = cols
                            .iter()
                            .map(|&c| (c < t.schema().len()).then(|| t.column(c)))
                            .collect();
                        for i in start..end {
                            ss.offer(hash_group_cols(&key_cols, i));
                        }
                    }
                    (None, None) => unreachable!("resolved above"),
                }
            }
        }
        for (sk, ss) in out.iter_mut().zip(&sketches) {
            sk.heavy = ss.top();
        }
        Ok(out)
    }

    /// Compute the local `B₀ᵢ` fragment.
    fn compute_base(&self, parts: Option<&[PartFrag]>, task: u32) -> Result<Message> {
        let started = site_clock_s();
        let expr = self.expr()?;
        let rel = self.local_base(expr, parts)?;
        let heavy_cols = match &expr.base {
            BaseSpec::DistinctProject { cols } => Some(cols.clone()),
            BaseSpec::Relation(_) => None,
        };
        let sketch = self.part_sketches(&expr.detail_name, parts, heavy_cols.as_deref())?;
        Ok(Message::BaseFragment {
            rel,
            compute_s: site_clock_s() - started,
            task,
            sketch,
        })
    }

    fn local_base(&self, expr: &GmdjExpr, parts: Option<&[PartFrag]>) -> Result<Relation> {
        match &expr.base {
            BaseSpec::DistinctProject { cols } => {
                match self.detail_source(&expr.detail_name, parts)? {
                    LocalDetail::Mem(detail) => detail.distinct_project(cols),
                    LocalDetail::Seg(file, range) => segmented_distinct_project(&file, cols, range),
                }
            }
            BaseSpec::Relation(_) => Err(SkallaError::exec(
                "coordinator asked a site to compute an explicit base relation",
            )),
        }
    }

    /// One standard round: sub-aggregates for operator `op_idx` over the
    /// shipped base fragment. Row blocking (if enabled in the plan) splits
    /// the reply into chunks, all but the last flagged `last: false`.
    fn round(
        &self,
        op_idx: usize,
        base: Relation,
        parts: Option<&[PartFrag]>,
        task: u32,
    ) -> Result<Vec<Message>> {
        let started = site_clock_s();
        let plan = self.plan()?;
        let op = plan
            .expr
            .ops
            .get(op_idx)
            .ok_or_else(|| SkallaError::exec(format!("operator {op_idx} out of range")))?;
        let reduce = plan.rounds[op_idx].site_group_reduction;
        let source = self.detail_source(plan.expr.detail_for_op(op_idx), parts)?;
        let opts = EvalOptions {
            with_match_count: reduce,
            parallelism: plan.site_parallelism,
            ..Default::default()
        };
        let (h, stats, seg) = match &source {
            LocalDetail::Mem(detail) => {
                let (h, stats) = eval_gmdj_sub(&base, &**detail, detail.schema(), op, &opts)?;
                (h, stats, SegScanStats::default())
            }
            LocalDetail::Seg(file, range) => {
                eval_gmdj_sub_segments(&base, file, op, &opts, plan.segment_prune, *range)?
            }
        };
        let blocks_compiled = stats.blocks_compiled;
        let blocks_interpreted = (stats.blocks_hashed + stats.blocks_nested) - blocks_compiled;
        let h = if reduce { strip_unmatched(h)? } else { h };
        // Cardinality-only sketches (O(#parts)): the coordinator refreshes
        // its load estimates from every reply, not just base rounds.
        let sketch = self.part_sketches(plan.expr.detail_for_op(op_idx), parts, None)?;
        let compute_s = site_clock_s() - started;
        Ok(chunk_relation(h, plan.block_rows)
            .into_iter()
            .enumerate()
            .map(|(seq, (chunk, last))| Message::RoundResult {
                op_idx: op_idx as u32,
                seq: seq as u32,
                h: chunk,
                compute_s: if last { compute_s } else { 0.0 },
                blocks_compiled: if last { blocks_compiled } else { 0 },
                blocks_interpreted: if last { blocks_interpreted } else { 0 },
                last,
                task,
                sketch: if last { sketch.clone() } else { Vec::new() },
                segments_scanned: if last { seg.scanned } else { 0 },
                segments_pruned: if last { seg.pruned } else { 0 },
                blocks_verified: if last { seg.blocks_verified } else { 0 },
            })
            .collect())
    }

    /// A synchronization-reduced local run: evaluate operators
    /// `start..=end` against local data with no intermediate
    /// synchronization, shipping all sub-aggregate states at the end.
    fn local_run(
        &self,
        start: usize,
        end: usize,
        base: Option<Relation>,
        parts: Option<&[PartFrag]>,
        task: u32,
    ) -> Result<Vec<Message>> {
        let started = site_clock_s();
        let plan = self.plan()?;
        let expr = &plan.expr;
        if end >= expr.ops.len() || start > end {
            return Err(SkallaError::exec(format!(
                "local run {start}..={end} out of range"
            )));
        }
        // Site-side group reduction is only sound here when the coordinator
        // already knows the groups (base was shipped); with a local base the
        // shipped rows are the only record of the group's existence.
        let reduce = base.is_some()
            && plan.rounds[start..=end]
                .iter()
                .any(|r| r.site_group_reduction);

        let base_rel = match base {
            Some(b) => b,
            None => self.local_base(expr, parts)?,
        };
        let n = base_rel.len();

        let mut acc_states: Vec<Vec<Value>> = vec![Vec::new(); n];
        let mut total_matches = vec![0u64; n];
        let mut current = base_rel.clone();
        let mut state_fields = Vec::new();
        let mut blocks_compiled = 0u32;
        let mut blocks_interpreted = 0u32;
        let mut seg_total = SegScanStats::default();

        for k in start..=end {
            let op = &expr.ops[k];
            let source = self.detail_source(expr.detail_for_op(k), parts)?;
            let opts = EvalOptions {
                parallelism: plan.site_parallelism,
                ..Default::default()
            };
            let (dual, seg) = match &source {
                LocalDetail::Mem(detail) => {
                    state_fields.extend(op.state_fields(detail.schema())?);
                    let dual = eval_gmdj_dual(&current, &**detail, detail.schema(), op, &opts)?;
                    (dual, SegScanStats::default())
                }
                LocalDetail::Seg(file, range) => {
                    state_fields.extend(op.state_fields(file.schema())?);
                    eval_gmdj_dual_segments(&current, file, op, &opts, plan.segment_prune, *range)?
                }
            };
            seg_total.scanned += seg.scanned;
            seg_total.pruned += seg.pruned;
            seg_total.blocks_verified += seg.blocks_verified;
            for (i, st) in dual.states.iter().enumerate() {
                acc_states[i].extend(st.iter().cloned());
                total_matches[i] += dual.match_counts[i];
            }
            blocks_compiled += dual.stats.blocks_compiled;
            blocks_interpreted +=
                (dual.stats.blocks_hashed + dual.stats.blocks_nested) - dual.stats.blocks_compiled;
            current = dual.full;
        }

        // Ship: original base part ++ concatenated run states.
        let mut fields = base_rel.schema().fields().to_vec();
        fields.extend(state_fields);
        let schema = std::sync::Arc::new(Schema::new(fields)?);
        let mut rows = Vec::with_capacity(n);
        for (i, b) in base_rel.rows().iter().enumerate() {
            if reduce && total_matches[i] == 0 {
                continue;
            }
            let mut row = b.clone();
            row.extend(acc_states[i].iter().cloned());
            rows.push(row);
        }
        let ship = Relation::from_rows_unchecked(schema, rows);
        let sketch = self.part_sketches(&expr.detail_name, parts, None)?;
        let compute_s = site_clock_s() - started;
        Ok(chunk_relation(ship, plan.block_rows)
            .into_iter()
            .enumerate()
            .map(|(seq, (chunk, last))| Message::LocalRunResult {
                end: end as u32,
                seq: seq as u32,
                ship: chunk,
                compute_s: if last { compute_s } else { 0.0 },
                blocks_compiled: if last { blocks_compiled } else { 0 },
                blocks_interpreted: if last { blocks_interpreted } else { 0 },
                last,
                task,
                sketch: if last { sketch.clone() } else { Vec::new() },
                segments_scanned: if last { seg_total.scanned } else { 0 },
                segments_pruned: if last { seg_total.pruned } else { 0 },
                blocks_verified: if last { seg_total.blocks_verified } else { 0 },
            })
            .collect())
    }
}

/// Space-saving counter capacity for the heavy-hitter sketch shipped with
/// base replies: enough to expose a handful of dominant groups without
/// bloating the frame.
const HEAVY_HITTER_CAP: usize = 8;

/// Deterministic 64-bit hash of the group-key columns of a detail row.
/// Only used for sketching — collisions merely blur the skew estimate.
/// Hash row `i`'s group key straight off the columns (type-tagged, `Null`
/// for out-of-range indices). Columnar so the sketch scan never
/// materializes rows it only needs two columns of.
fn hash_group_cols(cols: &[Option<&skalla_storage::Column>], i: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for c in cols {
        match c.map(|c| c.get(i)) {
            None | Some(Value::Null) => 0u8.hash(&mut h),
            Some(Value::Int(v)) => {
                1u8.hash(&mut h);
                v.hash(&mut h);
            }
            Some(Value::Float(v)) => {
                2u8.hash(&mut h);
                v.to_bits().hash(&mut h);
            }
            Some(Value::Str(s)) => {
                3u8.hash(&mut h);
                s.as_bytes().hash(&mut h);
            }
            Some(Value::Bool(b)) => {
                4u8.hash(&mut h);
                b.hash(&mut h);
            }
        }
    }
    h.finish()
}

/// Decode the segments of `file` overlapping the `[start, end)` global row
/// window one at a time — trimmed to the window — and feed each to `f`.
/// Segments arrive in global row order, so streaming consumers observe the
/// same rows in the same order as a scan of the materialized table.
fn for_each_segment_window(
    file: &SegmentFile,
    start: usize,
    end: usize,
    mut f: impl FnMut(Table) -> Result<()>,
) -> Result<()> {
    for i in 0..file.num_segments() {
        let s = file.segment_row_start(i);
        let e = s + file.meta(i).rows;
        let (lo, hi) = (start.max(s), end.min(e));
        if lo >= hi {
            continue;
        }
        let mut t = file.read_segment(i)?;
        if (lo, hi) != (s, e) {
            t = t.row_range(lo - s, hi - s)?;
        }
        f(t)?;
    }
    Ok(())
}

/// Offer the group-key hash of every row in the `[start, end)` window of a
/// segment file to the heavy-hitter sketch — the out-of-core counterpart of
/// the columnar in-memory sketch scan, one decoded segment resident at a
/// time.
fn offer_segment_rows(
    file: &SegmentFile,
    cols: &[usize],
    start: usize,
    end: usize,
    ss: &mut SpaceSaving,
) -> Result<()> {
    for_each_segment_window(file, start, end, |t| {
        let key_cols: Vec<_> = cols
            .iter()
            .map(|&c| (c < t.schema().len()).then(|| t.column(c)))
            .collect();
        for i in 0..t.len() {
            ss.offer(hash_group_cols(&key_cols, i));
        }
        Ok(())
    })
}

/// `Table::distinct_project` over a segment file, one decoded segment
/// resident at a time. Segments are visited in global row order, so the
/// first-seen row ordering is bit-for-bit the in-memory scan's.
fn segmented_distinct_project(
    file: &SegmentFile,
    cols: &[usize],
    range: Option<(usize, usize)>,
) -> Result<Relation> {
    let schema = std::sync::Arc::new(file.schema().project(cols)?);
    let (start, end) = range.unwrap_or((0, file.total_rows()));
    let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for_each_segment_window(file, start, end, |t| {
        for i in 0..t.len() {
            let key: Vec<Value> = cols.iter().map(|&c| t.column(c).get(i)).collect();
            if seen.insert(key.clone()) {
                rows.push(key);
            }
        }
        Ok(())
    })?;
    Ok(Relation::from_rows_unchecked(schema, rows))
}

/// Split a relation into `(chunk, is_last)` pieces of at most `block_rows`
/// rows. With `None` (or an empty relation) a single `last` piece is
/// returned, so every reply carries exactly one `last: true` message.
fn chunk_relation(rel: Relation, block_rows: Option<usize>) -> Vec<(Relation, bool)> {
    let Some(block) = block_rows else {
        return vec![(rel, true)];
    };
    let block = block.max(1);
    if rel.len() <= block {
        return vec![(rel, true)];
    }
    let schema = rel.schema().clone();
    let rows = rel.into_rows();
    let mut out = Vec::with_capacity(rows.len() / block + 1);
    let mut iter = rows.into_iter().peekable();
    while iter.peek().is_some() {
        let chunk: Vec<_> = iter.by_ref().take(block).collect();
        out.push((Relation::from_rows_unchecked(schema.clone(), chunk), false));
    }
    if let Some(last) = out.last_mut() {
        last.1 = true;
    }
    out
}

/// Drop rows with `__rng_count = 0` and remove the counter column
/// (Proposition 1's site-side reduction).
fn strip_unmatched(h: Relation) -> Result<Relation> {
    let count_idx = h.schema().index_of(MATCH_COUNT_COL)?;
    let keep: Vec<usize> = (0..h.schema().len()).filter(|&i| i != count_idx).collect();
    let schema = std::sync::Arc::new(h.schema().project(&keep)?);
    let rows = h
        .rows()
        .iter()
        .filter(|r| r[count_idx] != Value::Int(0))
        .map(|r| keep.iter().map(|&i| r[i].clone()).collect())
        .collect();
    Ok(Relation::from_rows_unchecked(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::DataType;

    #[test]
    fn strip_unmatched_filters_and_projects() {
        let schema = Schema::from_pairs([
            ("k", DataType::Int64),
            ("cnt", DataType::Int64),
            (MATCH_COUNT_COL, DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        let h = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(3), Value::Int(3)],
                vec![Value::Int(2), Value::Int(0), Value::Int(0)],
                vec![Value::Int(3), Value::Int(1), Value::Int(1)],
            ],
        )
        .unwrap();
        let out = strip_unmatched(h).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().names(), vec!["k", "cnt"]);
        assert_eq!(out.row(0), &vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(out.row(1), &vec![Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn site_state_requires_plan() {
        let state = SiteState {
            catalog: Catalog::new(),
            plan: None,
            frag_cache: std::cell::RefCell::new(None),
        };
        assert!(state.plan().is_err());
        let r = state.round(0, Relation::empty(Schema::empty().into_arc()), None, 0);
        assert!(r.is_err());
    }

    #[test]
    fn chunking_splits_and_flags_last() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rel = Relation::new(
            schema.clone(),
            (0..10).map(|i| vec![Value::Int(i)]).collect(),
        )
        .unwrap();
        // No blocking: one last piece.
        let whole = chunk_relation(rel.clone(), None);
        assert_eq!(whole.len(), 1);
        assert!(whole[0].1);
        assert_eq!(whole[0].0.len(), 10);
        // Block of 4: 4 + 4 + 2, only final flagged last.
        let chunks = chunk_relation(rel.clone(), Some(4));
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].0.len(), 4);
        assert_eq!(chunks[2].0.len(), 2);
        assert_eq!(
            chunks.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            vec![false, false, true]
        );
        // Rows preserved in order.
        assert_eq!(chunks[1].0.row(0)[0], Value::Int(4));
        // Block ≥ len: single last piece. Zero clamps to one row per chunk.
        assert_eq!(chunk_relation(rel.clone(), Some(100)).len(), 1);
        assert_eq!(chunk_relation(rel.clone(), Some(0)).len(), 10);
        // Empty relation: still one last piece.
        let empty = Relation::empty(schema);
        let chunks = chunk_relation(empty, Some(4));
        assert_eq!(chunks.len(), 1);
        assert!(chunks[0].1);
    }
}
