//! Criterion microbenches for coordinator synchronization (Theorem 1):
//! merging site fragments into the base-result structure must stay O(|H|).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skalla_core::BaseResult;
use skalla_expr::Expr;
use skalla_gmdj::AggSpec;
use skalla_types::{DataType, Field, Relation, Schema, Value};

fn base(groups: usize) -> Relation {
    let schema = Schema::from_pairs([("k", DataType::Int64)])
        .unwrap()
        .into_arc();
    Relation::new(
        schema,
        (0..groups as i64).map(|k| vec![Value::Int(k)]).collect(),
    )
    .unwrap()
}

fn fragment(groups: usize) -> Relation {
    // k, cnt_state, avg_sum, avg_count
    let schema = Schema::from_pairs([
        ("k", DataType::Int64),
        ("cnt", DataType::Int64),
        ("a__sum", DataType::Float64),
        ("a__count", DataType::Int64),
    ])
    .unwrap()
    .into_arc();
    Relation::new(
        schema,
        (0..groups as i64)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::Int(3),
                    Value::Float(k as f64 * 2.0),
                    Value::Int(3),
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star("cnt"),
        AggSpec::avg(Expr::detail(0), "a").unwrap(),
    ]
}

fn output_fields() -> Vec<Field> {
    vec![
        Field::new("cnt", DataType::Int64),
        Field::new("a", DataType::Float64),
    ]
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("synchronize");
    group.sample_size(20);
    for &groups in &[1_000usize, 10_000, 50_000] {
        let b = base(groups);
        let frag = fragment(groups);
        group.bench_with_input(
            BenchmarkId::new("merge_8_fragments", groups),
            &groups,
            |bch, _| {
                bch.iter(|| {
                    let mut x = BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
                    for _ in 0..8 {
                        x.merge_fragment(&frag, false).unwrap();
                    }
                    x.finalize().unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
