//! Criterion benches for whole distributed queries: the ablation of the
//! paper's optimization families at a fixed scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skalla_bench::{correlated_query, ExperimentSetup};
use skalla_core::OptFlags;
use skalla_planner::plan_query;
use skalla_tpcr::{CUSTNAME_COL, EXTENDEDPRICE_COL};

fn bench_flag_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_query");
    group.sample_size(10);

    let setup = ExperimentSetup::new(0.05, 4).expect("setup");
    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).expect("query");
    let dist = setup.distribution_info(CUSTNAME_COL);

    let variants: Vec<(&str, OptFlags)> = vec![
        ("none", OptFlags::none()),
        (
            "site_reduction",
            OptFlags {
                site_group_reduction: true,
                ..OptFlags::none()
            },
        ),
        (
            "coord_reduction",
            OptFlags {
                coord_group_reduction: true,
                ..OptFlags::none()
            },
        ),
        (
            "sync_reduction",
            OptFlags {
                sync_reduction: true,
                ..OptFlags::none()
            },
        ),
        ("all", OptFlags::all()),
    ];

    for (name, flags) in variants {
        let (plan, _) = plan_query(&expr, &dist, flags).expect("plan");
        // One warehouse per variant, reused across iterations (launch cost
        // excluded from the measurement).
        let wh = setup.launch().expect("launch");
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| wh.execute(plan).unwrap())
        });
        wh.shutdown().expect("shutdown");
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("egil_planning");
    group.sample_size(20);
    let setup = ExperimentSetup::new(0.05, 8).expect("setup");
    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).expect("query");
    let dist = setup.distribution_info(CUSTNAME_COL);
    group.bench_function("all_optimizations", |b| {
        b.iter(|| plan_query(&expr, &dist, OptFlags::all()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_flag_ablation, bench_planner);
criterion_main!(benches);
