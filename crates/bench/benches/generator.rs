//! Criterion microbench for the TPCR data generator and partitioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skalla_tpcr::{generate, partition_by_nation, TpcrConfig};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpcr_generate");
    group.sample_size(10);
    for &sf in &[0.05f64, 0.2] {
        let cfg = TpcrConfig::scale(sf);
        group.throughput(Throughput::Elements(cfg.num_rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(sf), &cfg, |b, cfg| {
            b.iter(|| generate(cfg))
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpcr_partition");
    group.sample_size(10);
    let table = generate(&TpcrConfig::scale(0.2));
    for &sites in &[2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, &n| {
            b.iter(|| partition_by_nation(&table, n).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generate, bench_partition);
criterion_main!(benches);
