//! Criterion microbenches for the wire format: encoding and decoding the
//! base-result relations that cross the network every round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skalla_net::{WireDecode, WireEncode};
use skalla_types::{DataType, Relation, Schema, Value};

fn relation(rows: usize) -> Relation {
    let schema = Schema::from_pairs([
        ("name", DataType::Utf8),
        ("cnt", DataType::Int64),
        ("avg", DataType::Float64),
    ])
    .unwrap()
    .into_arc();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::str(format!("Customer#{i:09}")),
                Value::Int(i as i64),
                Value::Float(i as f64 * 1.5),
            ]
        })
        .collect();
    Relation::new(schema, data).unwrap()
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_relation");
    group.sample_size(20);
    for &rows in &[100usize, 1000, 10_000] {
        let rel = relation(rows);
        let bytes = rel.to_wire();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", rows), &rows, |b, _| {
            b.iter(|| rel.to_wire())
        });
        group.bench_with_input(BenchmarkId::new("decode", rows), &rows, |b, _| {
            b.iter(|| Relation::from_wire(&bytes).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode_decode);
criterion_main!(benches);
