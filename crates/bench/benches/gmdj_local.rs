//! Criterion microbenches for local GMDJ evaluation: hash strategy vs
//! nested loop, across group cardinalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skalla_expr::Expr;
use skalla_gmdj::{eval_gmdj_full, AggSpec, EvalOptions, GmdjBlock, GmdjOp, LocalStrategy};
use skalla_storage::Table;
use skalla_types::{DataType, Schema, Value};

fn table(rows: usize, groups: i64) -> Table {
    let schema = Schema::from_pairs([("g", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int(i as i64 % groups),
                Value::Int((i * 31 % 997) as i64),
            ]
        })
        .collect();
    Table::from_rows(schema, &data).unwrap()
}

fn count_avg_op() -> GmdjOp {
    GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("c"),
            AggSpec::avg(Expr::detail(1), "a").unwrap(),
        ],
        Expr::base(0).eq(Expr::detail(0)),
    )])
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmdj_local");
    group.sample_size(20);
    for &groups in &[10i64, 100, 1000] {
        let t = table(20_000, groups);
        let base = t.distinct_project(&[0]).unwrap();
        let op = count_avg_op();
        group.bench_with_input(BenchmarkId::new("hash", groups), &groups, |b, _| {
            b.iter(|| eval_gmdj_full(&base, &t, t.schema(), &op, &EvalOptions::default()).unwrap())
        });
        // Nested loop is O(|B|·|R|); keep it to the small-group case.
        if groups <= 100 {
            let opts = EvalOptions {
                strategy: LocalStrategy::NestedLoop,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new("nested_loop", groups), &groups, |b, _| {
                b.iter(|| eval_gmdj_full(&base, &t, t.schema(), &op, &opts).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_match_count_overhead(c: &mut Criterion) {
    // The Proposition 1 piggyback: extra COUNT over θ₁ ∨ … ∨ θₘ. The paper
    // argues its overhead is negligible.
    let mut group = c.benchmark_group("gmdj_match_count");
    group.sample_size(20);
    let t = table(20_000, 200);
    let base = t.distinct_project(&[0]).unwrap();
    let op = count_avg_op();
    group.bench_function("without", |b| {
        b.iter(|| {
            skalla_gmdj::eval_gmdj_sub(&base, &t, t.schema(), &op, &EvalOptions::default()).unwrap()
        })
    });
    let opts = EvalOptions {
        with_match_count: true,
        ..Default::default()
    };
    group.bench_function("with", |b| {
        b.iter(|| skalla_gmdj::eval_gmdj_sub(&base, &t, t.schema(), &op, &opts).unwrap())
    });
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    // Intra-site parallel scan: Theorem 1 applied within a site.
    let mut group = c.benchmark_group("gmdj_parallel_scan");
    group.sample_size(10);
    let t = table(200_000, 500);
    let base = t.distinct_project(&[0]).unwrap();
    let op = count_avg_op();
    for &par in &[1usize, 2, 4, 8] {
        let opts = EvalOptions {
            parallelism: par,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(par), &par, |b, _| {
            b.iter(|| eval_gmdj_full(&base, &t, t.schema(), &op, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_match_count_overhead,
    bench_parallelism
);
criterion_main!(benches);
