//! Shared experiment machinery for the figure binaries.

use skalla_core::{DistributedWarehouse, ExecMetrics, OptFlags};
use skalla_gmdj::GmdjExpr;
use skalla_net::CostModel;
use skalla_planner::{plan_query, DistributionInfo, PlanReport};
use skalla_storage::{Catalog, Partitioning, Table};
use skalla_tpcr::{generate, partition_by_nation, TpcrConfig};
use skalla_types::{Relation, Result};

use crate::queries::TPCR_TABLE;

/// A generated, partitioned TPCR warehouse ready to launch.
pub struct ExperimentSetup {
    /// The full relation (for centralized cross-checks).
    pub table: Table,
    /// Per-site partitions (on `nationkey`).
    pub partitioning: Partitioning,
    /// The scale factor used.
    pub scale: f64,
}

impl ExperimentSetup {
    /// Generate TPCR data at `scale` and partition it across `n_sites`
    /// (paper §5.1: partitioned on NationKey, spread over eight sites).
    pub fn new(scale: f64, n_sites: usize) -> Result<ExperimentSetup> {
        let table = generate(&TpcrConfig::scale(scale));
        let partitioning = partition_by_nation(&table, n_sites)?;
        Ok(ExperimentSetup {
            table,
            partitioning,
            scale,
        })
    }

    /// Like [`ExperimentSetup::new`] but reusing an already generated
    /// table (saves generation time across site-count sweeps).
    pub fn from_table(table: Table, scale: f64, n_sites: usize) -> Result<ExperimentSetup> {
        let partitioning = partition_by_nation(&table, n_sites)?;
        Ok(ExperimentSetup {
            table,
            partitioning,
            scale,
        })
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.partitioning.num_sites()
    }

    /// One catalog per site, with the partition registered as `tpcr`.
    pub fn catalogs(&self) -> Vec<Catalog> {
        self.partitioning
            .parts
            .iter()
            .map(|p| {
                let mut c = Catalog::new();
                c.register(TPCR_TABLE, p.clone());
                c
            })
            .collect()
    }

    /// Distribution knowledge anchored on `anchor_col` — the grouping
    /// attribute the query's conditions join on. Because partitioning is on
    /// `nationkey` and several TPCR attributes are functionally dependent
    /// on it (custname, cityname, custkey), those attributes are partition
    /// attributes too; re-anchoring exposes that to the optimizer.
    pub fn distribution_info(&self, anchor_col: usize) -> DistributionInfo {
        let reanchored = Partitioning {
            parts: self.partitioning.parts.clone(),
            partition_col: Some(anchor_col),
        };
        DistributionInfo::from_partitioning(&reanchored)
    }

    /// Launch the warehouse over a 2002-era LAN cost model.
    pub fn launch(&self) -> Result<DistributedWarehouse> {
        DistributedWarehouse::launch(self.catalogs(), CostModel::lan_2002())
    }

    /// The full relation in a single catalog (centralized reference).
    pub fn full_catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        c.register(TPCR_TABLE, self.table.clone());
        c
    }
}

/// One measured configuration — a row of a figure's data series.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Variant label (e.g. "no-reduction", "group-reduced").
    pub label: String,
    /// Participating sites.
    pub n_sites: usize,
    /// Data scale factor.
    pub scale: f64,
    /// Bytes coordinator → sites.
    pub bytes_down: u64,
    /// Bytes sites → coordinator.
    pub bytes_up: u64,
    /// Tuples coordinator → sites (Theorem 2's unit).
    pub rows_down: u64,
    /// Tuples sites → coordinator.
    pub rows_up: u64,
    /// Modeled response time (communication + parallel site compute +
    /// coordinator compute), seconds.
    pub modeled_s: f64,
    /// Site-compute component (max per round, summed over rounds).
    pub site_s: f64,
    /// Coordinator-compute component.
    pub coord_s: f64,
    /// Modeled communication component.
    pub comm_s: f64,
    /// Measured wall-clock seconds.
    pub wall_s: f64,
    /// Result groups.
    pub groups: usize,
    /// Synchronizations performed.
    pub syncs: usize,
}

impl RunRecord {
    /// Header line matching [`RunRecord::row`].
    pub fn header() -> String {
        format!(
            "{:<22} {:>5} {:>6} {:>12} {:>12} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>5}",
            "variant",
            "sites",
            "scale",
            "bytes_down",
            "bytes_up",
            "modeled_s",
            "site_s",
            "coord_s",
            "comm_s",
            "wall_s",
            "groups",
            "syncs"
        )
    }

    /// Aligned data row.
    pub fn row(&self) -> String {
        format!(
            "{:<22} {:>5} {:>6.2} {:>12} {:>12} {:>10.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>8} {:>5}",
            self.label,
            self.n_sites,
            self.scale,
            self.bytes_down,
            self.bytes_up,
            self.modeled_s,
            self.site_s,
            self.coord_s,
            self.comm_s,
            self.wall_s,
            self.groups,
            self.syncs
        )
    }

    /// CSV header matching [`RunRecord::csv_row`].
    pub fn csv_header() -> String {
        "variant,sites,scale,bytes_down,bytes_up,rows_down,rows_up,modeled_s,site_s,coord_s,comm_s,wall_s,groups,syncs"
            .to_string()
    }

    /// Machine-readable CSV row (for replotting the figures).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.label,
            self.n_sites,
            self.scale,
            self.bytes_down,
            self.bytes_up,
            self.rows_down,
            self.rows_up,
            self.modeled_s,
            self.site_s,
            self.coord_s,
            self.comm_s,
            self.wall_s,
            self.groups,
            self.syncs
        )
    }

    /// Build from execution metrics.
    pub fn from_metrics(
        label: impl Into<String>,
        setup: &ExperimentSetup,
        metrics: &ExecMetrics,
        report: &PlanReport,
        groups: usize,
    ) -> RunRecord {
        RunRecord {
            label: label.into(),
            n_sites: setup.n_sites(),
            scale: setup.scale,
            bytes_down: metrics.total_bytes_down(),
            bytes_up: metrics.total_bytes_up(),
            rows_down: metrics.total_rows_down(),
            rows_up: metrics.total_rows_up(),
            modeled_s: metrics.modeled_time_s(),
            site_s: metrics.site_compute_s(),
            coord_s: metrics.coord_compute_s(),
            comm_s: metrics.comm_s(),
            wall_s: metrics.wall_s,
            groups,
            syncs: report.num_synchronizations,
        }
    }
}

/// Plan `expr` with `flags` against `setup`'s distribution knowledge and
/// execute it, returning the result relation and the measured record.
pub fn run_variant(
    setup: &ExperimentSetup,
    expr: &GmdjExpr,
    flags: OptFlags,
    anchor_col: usize,
    label: &str,
) -> Result<(Relation, RunRecord)> {
    let dist = setup.distribution_info(anchor_col);
    let (plan, report) = plan_query(expr, &dist, flags)?;
    let wh = setup.launch()?;
    let (result, metrics) = wh.execute(&plan)?;
    wh.shutdown()?;
    let record = RunRecord::from_metrics(label, setup, &metrics, &report, result.len());
    Ok((result, record))
}

/// Parse `--key value` style arguments with a default.
pub fn arg_f64(args: &[String], key: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse an integer `--key value` argument with a default.
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `true` if the flag `--key` is present.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::correlated_query;
    use skalla_tpcr::{CUSTNAME_COL, EXTENDEDPRICE_COL};

    #[test]
    fn setup_and_variant_run_end_to_end() {
        let setup = ExperimentSetup::new(0.02, 3).unwrap();
        assert_eq!(setup.n_sites(), 3);
        let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).unwrap();
        let (plain, r1) =
            run_variant(&setup, &expr, OptFlags::none(), CUSTNAME_COL, "none").unwrap();
        let (optimized, r2) =
            run_variant(&setup, &expr, OptFlags::all(), CUSTNAME_COL, "all").unwrap();
        assert_eq!(plain.sorted(), optimized.sorted());
        // All reductions should cut synchronizations to 1 and move fewer bytes.
        assert_eq!(r2.syncs, 1);
        assert!(r1.syncs > r2.syncs);
        assert!(r2.bytes_down + r2.bytes_up < r1.bytes_down + r1.bytes_up);
        // Records render.
        assert!(RunRecord::header().contains("variant"));
        assert!(r1.row().contains("none"));
        assert_eq!(
            RunRecord::csv_header().split(',').count(),
            r1.csv_row().split(',').count()
        );
        assert!(r1.csv_row().starts_with("none,3,"));
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--scale", "0.5", "--sites", "4", "--verify"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_f64(&args, "--scale", 1.0), 0.5);
        assert_eq!(arg_usize(&args, "--sites", 8), 4);
        assert!(arg_flag(&args, "--verify"));
        assert!(!arg_flag(&args, "--missing"));
        assert_eq!(arg_f64(&args, "--other", 2.0), 2.0);
    }
}
