#![warn(missing_docs)]

//! # skalla-bench
//!
//! The experiment library behind the figure-reproduction binaries
//! (`fig2_group_reduction`, `fig3_coalescing`, `fig4_sync_reduction`,
//! `fig5_scaleup`, `transfer_bound`) and the Criterion microbenches.
//!
//! [`queries`] builds the paper's §5 test queries over the TPCR relation;
//! [`harness`] sets up partitioned warehouses, runs plan variants, and
//! formats result series the way the paper's figures report them.

pub mod harness;
pub mod queries;

pub use harness::{arg_f64, arg_flag, arg_usize, run_variant, ExperimentSetup, RunRecord};
pub use queries::{coalescible_query, correlated_query, single_gmdj_query};
