//! The paper's §5 experiment queries, built over the TPCR schema.
//!
//! Every test query "computes a COUNT and an AVG aggregate on each GMDJ
//! operator" (§5.1), grouped either on the high-cardinality
//! `Customer.Name`-style attribute or on a low-cardinality attribute.

use skalla_expr::Expr;
use skalla_gmdj::{AggSpec, BaseSpec, GmdjBlock, GmdjExpr, GmdjOp};
use skalla_types::Result;

/// The detail-table name the experiment queries read.
pub const TPCR_TABLE: &str = "tpcr";

fn key_theta(group_col: usize) -> Expr {
    // Base column 0 is the (single) grouping attribute.
    Expr::base(0).eq(Expr::detail(group_col))
}

/// A *correlated* two-GMDJ query (the shape of paper Example 1, used for
/// the group-reduction and synchronization-reduction experiments):
///
/// * `MD₁`: `COUNT(*)`, `AVG(measure)` per group;
/// * `MD₂`: `COUNT(*)` of detail tuples whose measure is at least the
///   group's `MD₁` average.
///
/// `θ₂` references `MD₁`'s outputs, so the two operators **cannot** be
/// coalesced — evaluating this query unoptimized takes three
/// synchronizations.
pub fn correlated_query(group_col: usize, measure_col: usize) -> Result<GmdjExpr> {
    let md1 = GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt1"),
            AggSpec::avg(Expr::detail(measure_col), "avg1")?,
        ],
        key_theta(group_col),
    )]);
    // Base schema after MD₁: [group, cnt1, avg1] → avg1 is base col 2.
    let md2 = GmdjOp::new(vec![GmdjBlock::new(
        vec![AggSpec::count_star("cnt2")],
        key_theta(group_col).and(Expr::detail(measure_col).ge(Expr::base(2))),
    )]);
    GmdjExpr::new(
        BaseSpec::DistinctProject {
            cols: vec![group_col],
        },
        TPCR_TABLE,
        vec![md1, md2],
        vec![0],
    )
}

/// A *coalescible* two-GMDJ query (the Fig. 3 experiment): `θ₂` filters on
/// a detail attribute only, so the optimizer can merge both operators into
/// one round.
///
/// * `MD₁`: `COUNT(*)`, `AVG(measure)` per group;
/// * `MD₂`: `COUNT(*)`, `AVG(measure)` over detail tuples with
///   `filter_col > threshold`.
pub fn coalescible_query(
    group_col: usize,
    measure_col: usize,
    filter_col: usize,
    threshold: f64,
) -> Result<GmdjExpr> {
    let md1 = GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt1"),
            AggSpec::avg(Expr::detail(measure_col), "avg1")?,
        ],
        key_theta(group_col),
    )]);
    let md2 = GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt2"),
            AggSpec::avg(Expr::detail(measure_col), "avg2")?,
        ],
        key_theta(group_col).and(Expr::detail(filter_col).gt(Expr::lit(threshold))),
    )]);
    GmdjExpr::new(
        BaseSpec::DistinctProject {
            cols: vec![group_col],
        },
        TPCR_TABLE,
        vec![md1, md2],
        vec![0],
    )
}

/// A *selective* single-GMDJ query: `COUNT(*)`, `AVG(measure)` per group,
/// restricted to detail tuples with `lo ≤ date_col < hi`.
///
/// The date bounds make `θ` refutable from segment zone maps: on
/// time-ordered data every segment covers a narrow date window, so an
/// out-of-core scan can prove most segments irrelevant from their footers
/// alone and skip the decode — the workload of the zone-map pruning bench.
pub fn date_range_query(
    group_col: usize,
    measure_col: usize,
    date_col: usize,
    lo: i64,
    hi: i64,
) -> Result<GmdjExpr> {
    let md = GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(Expr::detail(measure_col), "avg")?,
        ],
        key_theta(group_col)
            .and(Expr::detail(date_col).ge(Expr::lit(lo)))
            .and(Expr::detail(date_col).lt(Expr::lit(hi))),
    )]);
    GmdjExpr::new(
        BaseSpec::DistinctProject {
            cols: vec![group_col],
        },
        TPCR_TABLE,
        vec![md],
        vec![0],
    )
}

/// A single-GMDJ query (`COUNT`, `AVG` per group) — the minimal workload,
/// used by microbenches and the transfer-bound check.
pub fn single_gmdj_query(group_col: usize, measure_col: usize) -> Result<GmdjExpr> {
    let md = GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(Expr::detail(measure_col), "avg")?,
        ],
        key_theta(group_col),
    )]);
    GmdjExpr::new(
        BaseSpec::DistinctProject {
            cols: vec![group_col],
        },
        TPCR_TABLE,
        vec![md],
        vec![0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_tpcr::{tpcr_schema, CUSTNAME_COL, EXTENDEDPRICE_COL, QUANTITY_COL};

    #[test]
    fn queries_validate_against_tpcr_schema() {
        let schema = tpcr_schema();
        correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL)
            .unwrap()
            .validate(&schema)
            .unwrap();
        coalescible_query(CUSTNAME_COL, EXTENDEDPRICE_COL, QUANTITY_COL, 30.0)
            .unwrap()
            .validate(&schema)
            .unwrap();
        date_range_query(
            CUSTNAME_COL,
            QUANTITY_COL,
            skalla_tpcr::ORDERDATE_COL,
            2400,
            2557,
        )
        .unwrap()
        .validate(&schema)
        .unwrap();
        single_gmdj_query(CUSTNAME_COL, EXTENDEDPRICE_COL)
            .unwrap()
            .validate(&schema)
            .unwrap();
    }

    #[test]
    fn correlated_query_is_not_coalescible() {
        let e = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).unwrap();
        let (c, steps) = skalla_gmdj::coalesce_chain(&e).unwrap();
        assert_eq!(steps, 0);
        assert_eq!(c.ops.len(), 2);
    }

    #[test]
    fn coalescible_query_coalesces() {
        let e = coalescible_query(CUSTNAME_COL, EXTENDEDPRICE_COL, QUANTITY_COL, 30.0).unwrap();
        let (c, steps) = skalla_gmdj::coalesce_chain(&e).unwrap();
        assert_eq!(steps, 1);
        assert_eq!(c.ops.len(), 1);
    }
}
