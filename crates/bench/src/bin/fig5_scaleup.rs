//! Figure 5 — the combined reductions query (scale-up).
//!
//! Reproduces both panels of the paper's Fig. 5: four sites, data size
//! scaled ×1 to ×4, with all optimizations on versus all off. The left
//! panel is the query evaluation time; the right panel breaks the optimized
//! run into site computation, coordinator computation, and communication
//! overhead — all three growing linearly with the data size.
//!
//! The paper also repeats the experiment with a *constant* number of groups
//! as the database grows ("comparable results"); pass `--constant-groups`
//! to run that variant (row count scales, customer count stays fixed).
//!
//! Usage: `fig5_scaleup [--scale S] [--steps K] [--constant-groups] [--verify]`

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_bench::queries::TPCR_TABLE;
use skalla_bench::{correlated_query, run_variant, ExperimentSetup, RunRecord};
use skalla_core::OptFlags;
use skalla_tpcr::{generate, partition_by_nation, TpcrConfig, CUSTNAME_COL, EXTENDEDPRICE_COL};

const N_SITES: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base_scale = arg_f64(&args, "--scale", 0.1);
    let steps = arg_usize(&args, "--steps", 4);
    let constant_groups = arg_flag(&args, "--constant-groups");
    let verify = arg_flag(&args, "--verify");
    let csv = arg_flag(&args, "--csv");

    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).expect("query builds");
    let mode = if constant_groups {
        "constant groups"
    } else {
        "groups scale with data"
    };
    println!("# Figure 5: combined reductions query, {N_SITES} sites, size x1..x{steps} ({mode})");
    println!(
        "{}",
        if csv {
            RunRecord::csv_header()
        } else {
            RunRecord::header()
        }
    );

    for m in 1..=steps {
        let scale = base_scale * m as f64;
        let setup = if constant_groups {
            // Rows grow, group count stays fixed at the base scale.
            let mut cfg = TpcrConfig::scale(scale);
            let base_cfg = TpcrConfig::scale(base_scale);
            cfg.num_customers = base_cfg.num_customers;
            cfg.num_cities = base_cfg.num_cities;
            let table = generate(&cfg);
            let partitioning = partition_by_nation(&table, N_SITES).expect("partition");
            ExperimentSetup {
                table,
                partitioning,
                scale,
            }
        } else {
            ExperimentSetup::new(scale, N_SITES).expect("setup")
        };

        let (r_off, rec_off) =
            run_variant(&setup, &expr, OptFlags::none(), CUSTNAME_COL, "all-off").expect("run");
        println!(
            "{}",
            if csv {
                rec_off.csv_row()
            } else {
                rec_off.row()
            }
        );
        let (r_on, rec_on) =
            run_variant(&setup, &expr, OptFlags::all(), CUSTNAME_COL, "all-on").expect("run");
        println!("{}", if csv { rec_on.csv_row() } else { rec_on.row() });

        assert_eq!(
            r_off.sorted(),
            r_on.sorted(),
            "optimizations changed the result"
        );
        if verify {
            let mut cat = skalla_storage::Catalog::new();
            cat.register(TPCR_TABLE, setup.table.clone());
            let cent = skalla_gmdj::eval_expr_centralized(&expr, &cat).expect("centralized");
            assert_eq!(r_off.sorted(), cent.sorted(), "distributed != centralized");
        }

        // Right panel: cost breakdown of the optimized run.
        println!(
            "#   x{m} breakdown (all-on): site {:.4}s | coordinator {:.4}s | communication {:.4}s",
            rec_on.site_s, rec_on.coord_s, rec_on.comm_s
        );
    }
}
