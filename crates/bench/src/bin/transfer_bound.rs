//! Theorem 2 — the data-transfer bound.
//!
//! The paper's Theorem 2 bounds the data transferred by
//! Alg. GMDJDistribEval on a query with `m` GMDJ operators by
//!
//! ```text
//! Σ_{i=1..m} (2 · sᵢ · |Q|)  +  s₀ · |Q|
//! ```
//!
//! tuples — *independent of the size of the fact relation*. This binary
//! runs the experiment queries at several data scales, checks the measured
//! tuple transfers against the bound, and contrasts them with the
//! ship-all-detail-data baseline (whose transfers grow with the fact
//! relation).
//!
//! Usage: `transfer_bound [--sites N]`

use skalla_bench::harness::arg_usize;
use skalla_bench::{correlated_query, run_variant, single_gmdj_query, ExperimentSetup};
use skalla_core::{DistPlan, OptFlags};
use skalla_tpcr::{CUSTNAME_COL, EXTENDEDPRICE_COL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_sites = arg_usize(&args, "--sites", 4);

    println!("# Theorem 2: transfer bound check ({n_sites} sites)");
    println!(
        "{:<18} {:>7} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "query", "scale", "|Q| groups", "tuples moved", "bound", "detail rows", "ship-all rows"
    );

    for &scale in &[0.05, 0.1, 0.2] {
        let setup = ExperimentSetup::new(scale, n_sites).expect("setup");
        let detail_rows = setup.table.len();

        for (name, expr) in [
            (
                "single-gmdj",
                single_gmdj_query(CUSTNAME_COL, EXTENDEDPRICE_COL).unwrap(),
            ),
            (
                "correlated",
                correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).unwrap(),
            ),
        ] {
            let (result, rec) =
                run_variant(&setup, &expr, OptFlags::none(), CUSTNAME_COL, name).expect("run");
            let q = result.len() as u64;
            let m = expr.ops.len() as u64;
            let s = n_sites as u64;
            let bound = m * 2 * s * q + s * q;

            // Re-run to pull per-round tuple counts from the metrics.
            let wh = setup.launch().expect("launch");
            let plan = DistPlan::unoptimized(expr.clone());
            let (_, metrics) = wh.execute(&plan).expect("execute");
            let (_, ship_metrics) = wh.execute_ship_all(&expr).expect("ship-all");
            wh.shutdown().expect("shutdown");

            let moved = metrics.total_rows_down() + metrics.total_rows_up();
            let ship_rows = ship_metrics.total_rows_up();
            assert!(
                moved <= bound,
                "{name}: moved {moved} tuples exceeds Theorem 2 bound {bound}"
            );
            // Per-round bound: each direction of each evaluation round moves
            // at most s·|Q| tuples.
            for r in &metrics.rounds {
                assert!(
                    r.rows_down <= s * q,
                    "{name} round {}: down {} > s|Q| {}",
                    r.label,
                    r.rows_down,
                    s * q
                );
                assert!(
                    r.rows_up <= s * q,
                    "{name} round {}: up {} > s|Q| {}",
                    r.label,
                    r.rows_up,
                    s * q
                );
            }

            println!(
                "{:<18} {:>7} {:>10} {:>12} {:>12} {:>14} {:>14}",
                name, scale, q, moved, bound, detail_rows, ship_rows
            );
            let _ = rec;
        }
    }
    println!(
        "# all configurations within the Theorem 2 bound; ship-all grows with the fact relation"
    );
}
