//! Compiled-vs-interpreted kernel benchmark (the PR 3 baseline).
//!
//! Runs the site-local sub-aggregate accumulation — the hot loop of
//! Alg. GMDJDistribEval — over TPCR data twice per workload: once through
//! the compiled batch kernels (`EvalOptions::default()`) and once through
//! the row-at-a-time interpreter (`compiled: false`). Two workloads cover
//! both compiled plans:
//!
//! * `sub-aggregate-scan` — a band-histogram GMDJ (range θ, no equi-join
//!   conjuncts) that exercises the nested plan: a [`CompiledPred`]
//!   selection bitmap per base tuple per batch. This is the
//!   "interpreted-vs-compiled sub-aggregate scan" headline number.
//! * `hash-equijoin` — the §5 single-GMDJ query shape (COUNT + AVG per
//!   customer), exercising the hash plan with batched argument kernels and
//!   typed accumulators.
//!
//! A distributed run of the single-GMDJ query is included for the bytes
//! shipped and the `blocks_compiled` counter surfaced in `ExecMetrics`.
//! Results go to stdout and to a machine-readable JSON file (default
//! `BENCH_3.json`) so future PRs have a perf baseline.
//!
//! Usage: `compiled_kernels [--scale F] [--sites N] [--iters N]
//! [--out PATH] [--check]` — `--check` exits nonzero unless the scan
//! speedup is ≥ 3×.
//!
//! [`CompiledPred`]: skalla_expr::CompiledPred

use std::time::Instant;

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_bench::{single_gmdj_query, ExperimentSetup};
use skalla_core::DistPlan;
use skalla_expr::Expr;
use skalla_gmdj::{eval_gmdj_sub, AggSpec, EvalOptions, EvalStats, GmdjBlock, GmdjOp};
use skalla_tpcr::{CUSTNAME_COL, EXTENDEDPRICE_COL};
use skalla_types::{DataType, Relation, Schema, Value};

/// One workload's measurements, compiled vs interpreted.
struct Measurement {
    name: &'static str,
    strategy: &'static str,
    groups: usize,
    interpreted_s: f64,
    compiled_s: f64,
    blocks_compiled: u32,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.interpreted_s / self.compiled_s
    }

    fn json(&self, detail_rows: usize) -> String {
        let rows = detail_rows as f64;
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"strategy\": \"{}\",\n",
                "      \"groups\": {},\n",
                "      \"interpreted_s\": {:.6},\n",
                "      \"compiled_s\": {:.6},\n",
                "      \"interpreted_rows_per_s\": {:.0},\n",
                "      \"compiled_rows_per_s\": {:.0},\n",
                "      \"speedup\": {:.2},\n",
                "      \"blocks_compiled\": {}\n",
                "    }}"
            ),
            self.name,
            self.strategy,
            self.groups,
            self.interpreted_s,
            self.compiled_s,
            rows / self.interpreted_s,
            rows / self.compiled_s,
            self.speedup(),
            self.blocks_compiled,
        )
    }
}

/// Time `op` over (`base`, table) in both modes, best-of-`iters`, checking
/// that the two paths produce identical relations and that the compiled
/// run actually took the compiled path.
fn measure(
    name: &'static str,
    strategy: &'static str,
    setup: &ExperimentSetup,
    base: &Relation,
    op: &GmdjOp,
    iters: usize,
) -> Measurement {
    let schema = setup.table.schema();
    let compiled_opts = EvalOptions::default();
    let interpreted_opts = EvalOptions {
        compiled: false,
        ..Default::default()
    };

    let time = |opts: &EvalOptions| -> (f64, Relation, EvalStats) {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..iters.max(1) {
            let t0 = Instant::now();
            let (rel, stats) =
                eval_gmdj_sub(base, &setup.table, schema, op, opts).expect("eval_gmdj_sub");
            best = best.min(t0.elapsed().as_secs_f64());
            out = Some((rel, stats));
        }
        let (rel, stats) = out.expect("at least one iteration");
        (best, rel, stats)
    };

    let (compiled_s, compiled_rel, compiled_stats) = time(&compiled_opts);
    let (interpreted_s, interpreted_rel, interpreted_stats) = time(&interpreted_opts);

    assert_eq!(
        compiled_rel.sorted(),
        interpreted_rel.sorted(),
        "{name}: compiled and interpreted sub-aggregates disagree"
    );
    assert!(
        compiled_stats.blocks_compiled > 0,
        "{name}: compiled run fell back to the interpreter"
    );
    assert_eq!(
        interpreted_stats.blocks_compiled, 0,
        "{name}: interpreted run used compiled kernels"
    );

    Measurement {
        name,
        strategy,
        groups: base.len(),
        interpreted_s,
        compiled_s,
        blocks_compiled: compiled_stats.blocks_compiled,
    }
}

/// Base relation of `n_bands` equal-width `[lo, hi)` bands covering the
/// table's `extendedprice` range — the datacube-style histogram dimension.
fn price_bands(setup: &ExperimentSetup, n_bands: usize) -> Relation {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for row in 0..setup.table.len() {
        if let Value::Float(p) = setup.table.row(row)[EXTENDEDPRICE_COL] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
    }
    let width = (hi - lo) / n_bands as f64;
    let schema = Schema::from_pairs([("lo", DataType::Float64), ("hi", DataType::Float64)])
        .expect("band schema")
        .into_arc();
    let rows = (0..n_bands)
        .map(|i| {
            let band_lo = lo + width * i as f64;
            // Nudge the last bound past the max so it lands in a band.
            let band_hi = if i + 1 == n_bands {
                hi + 1.0
            } else {
                lo + width * (i + 1) as f64
            };
            vec![Value::Float(band_lo), Value::Float(band_hi)]
        })
        .collect();
    Relation::from_rows_unchecked(schema, rows)
}

/// The band-histogram GMDJ: COUNT, AVG, MIN, MAX of `extendedprice` per
/// price band. θ has no equi-join conjuncts, so evaluation is a full scan
/// per band — the nested compiled plan.
fn band_scan_op() -> GmdjOp {
    let price = || Expr::detail(EXTENDEDPRICE_COL);
    let theta = price().ge(Expr::base(0)).and(price().lt(Expr::base(1)));
    GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(price(), "avg").expect("avg"),
            AggSpec::min(price(), "min").expect("min"),
            AggSpec::max(price(), "max").expect("max"),
        ],
        theta,
    )])
}

/// The §5 single-GMDJ shape: COUNT + AVG of `extendedprice` per customer,
/// joined on the grouping attribute — the hash compiled plan.
fn equijoin_op() -> GmdjOp {
    GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(Expr::detail(EXTENDEDPRICE_COL), "avg").expect("avg"),
        ],
        Expr::base(0).eq(Expr::detail(CUSTNAME_COL)),
    )])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 0.5);
    let n_sites = arg_usize(&args, "--sites", 4);
    let iters = arg_usize(&args, "--iters", 3);
    let check = arg_flag(&args, "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_3.json".to_string());

    let setup = ExperimentSetup::new(scale, n_sites).expect("setup");
    let detail_rows = setup.table.len();
    println!("# compiled kernels vs interpreter (scale {scale}, {detail_rows} detail rows, best of {iters})");
    println!(
        "{:<20} {:>8} {:>7} {:>13} {:>11} {:>14} {:>12} {:>8}",
        "workload",
        "strategy",
        "groups",
        "interpreted_s",
        "compiled_s",
        "interp rows/s",
        "comp rows/s",
        "speedup"
    );

    let bands = price_bands(&setup, 16);
    let customers = setup
        .table
        .distinct_project(&[CUSTNAME_COL])
        .expect("distinct customers");
    let workloads = [
        measure(
            "sub-aggregate-scan",
            "nested",
            &setup,
            &bands,
            &band_scan_op(),
            iters,
        ),
        measure(
            "hash-equijoin",
            "hash",
            &setup,
            &customers,
            &equijoin_op(),
            iters,
        ),
    ];
    for m in &workloads {
        println!(
            "{:<20} {:>8} {:>7} {:>13.4} {:>11.4} {:>14.0} {:>12.0} {:>7.2}x",
            m.name,
            m.strategy,
            m.groups,
            m.interpreted_s,
            m.compiled_s,
            detail_rows as f64 / m.interpreted_s,
            detail_rows as f64 / m.compiled_s,
            m.speedup(),
        );
    }

    // Distributed context: bytes shipped and the blocks_compiled counter
    // surfaced through ExecMetrics (sites run the compiled path by default).
    let expr = single_gmdj_query(CUSTNAME_COL, EXTENDEDPRICE_COL).expect("query");
    let wh = setup.launch().expect("launch");
    let (_, metrics) = wh
        .execute(&DistPlan::unoptimized(expr))
        .expect("distributed run");
    wh.shutdown().expect("shutdown");
    let (bytes_down, bytes_up) = (metrics.total_bytes_down(), metrics.total_bytes_up());
    let (bc, bi) = (
        metrics.total_blocks_compiled(),
        metrics.total_blocks_interpreted(),
    );
    println!(
        "# distributed single-gmdj ({n_sites} sites): {bytes_down} B down, {bytes_up} B up, \
         {bc} blocks compiled, {bi} interpreted"
    );
    assert!(bc > 0, "distributed run reported no compiled blocks");

    let scan_speedup = workloads[0].speedup();
    let workload_json: Vec<String> = workloads.iter().map(|m| m.json(detail_rows)).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"compiled_kernels\",\n",
            "  \"generated_by\": \"cargo run --release -p skalla-bench --bin compiled_kernels\",\n",
            "  \"scale\": {},\n",
            "  \"sites\": {},\n",
            "  \"iters\": {},\n",
            "  \"detail_rows\": {},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"scan_speedup\": {:.2},\n",
            "  \"distributed\": {{\n",
            "    \"query\": \"single-gmdj\",\n",
            "    \"bytes_down\": {},\n",
            "    \"bytes_up\": {},\n",
            "    \"blocks_compiled\": {},\n",
            "    \"blocks_interpreted\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        scale,
        n_sites,
        iters,
        detail_rows,
        workload_json.join(",\n"),
        scan_speedup,
        bytes_down,
        bytes_up,
        bc,
        bi,
    );
    std::fs::write(&out, &json).expect("write JSON");
    println!("# wrote {out}");

    if check {
        assert!(
            scan_speedup >= 3.0,
            "sub-aggregate scan speedup {scan_speedup:.2}x is below the 3x floor"
        );
        println!("# check passed: scan speedup {scan_speedup:.2}x >= 3x");
    }
}
