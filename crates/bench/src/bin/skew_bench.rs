//! Skew-aware execution benchmark (PR 8).
//!
//! A barrier-synchronous GMDJ round is as slow as its slowest site, so a
//! Zipfian customer distribution — which piles the popular customers'
//! orders onto one nation partition — turns the static uniform placement
//! into a straggler machine: one site owns the hot partition and every
//! round waits for it. PR 8 makes execution skew-aware on replicated
//! warehouses: sites piggyback per-partition cardinality + heavy-hitter
//! sketches on round replies, the coordinator splits a hot partition's
//! row range across its ring replicas (disjoint slices of bit-identical
//! copies, so sub-aggregates merge additively and the answer stays
//! exact), and mid-round stragglers are raced against an idle replica
//! with first-complete-wins.
//!
//! This bench generates a seeded Zipf(θ) TPCR table, launches a
//! fully-replicated warehouse, and runs the paper's correlated two-GMDJ
//! query both ways: static uniform placement (skew policy off) and
//! skew-aware (split + offload). A warmup pass primes the coordinator's
//! learned partition loads from the sites' sketches — exactly the steady
//! state of a long-running deployment. Every run is compared bit-for-bit
//! against the centralized serial evaluation; a θ=0 (uniform) workload is
//! also measured both ways as the no-regression control.
//!
//! The measure column is `quantity`, whose values are whole numbers: its
//! sums are exactly representable in f64, so COUNT/AVG results are
//! independent of accumulation order and the bit-for-bit comparison is
//! meaningful across serial, distributed, and split execution. (A float
//! measure with rounded cents, like `extendedprice`, differs in final
//! ulps between accumulation orders — in any engine, not just this one.)
//!
//! The headline metric is **round time**: Σ over rounds of the maximum
//! per-site compute seconds — the parallel critical path a barrier
//! execution actually waits on (communication is modeled separately and
//! does not change with placement here). Sites report thread-CPU
//! seconds, so the critical path is measured as the modeled cluster
//! would see it even when the host has fewer cores than sites (a wall
//! clock would charge a site for time the OS spent running its
//! neighbours, which *inverts* the comparison: the better the balance,
//! the more site threads overlap).
//!
//! The default is eight sites — the paper's eight equal partitions —
//! where round-robin nation placement leaves the Zipf head partition
//! ~2.5× over the mean.
//!
//! Usage: `skew_bench [--scale F] [--sites N] [--replication N]
//! [--theta F] [--iters N] [--out PATH] [--check]`.
//!
//! `--check` exits nonzero unless all of:
//!   1. every distributed run (uniform and skewed, both workloads) is
//!      byte-exact vs the centralized serial evaluation;
//!   2. skew-aware round time is ≥ 1.3× faster than static placement on
//!      the Zipf(θ) workload (the committed BENCH_8.json reports ≥ 1.5×
//!      at the default shape; 1.3× leaves headroom for host noise);
//!   3. on the uniform workload the skew-aware path is within noise of
//!      static placement (≥ 0.8× — it should be a no-op there).

use std::time::Instant;

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_bench::queries::{correlated_query, TPCR_TABLE};
use skalla_core::{DegradedMode, DistPlan, DistributedWarehouse, ExecMetrics};
use skalla_gmdj::eval_expr_centralized;
use skalla_net::{CostModel, FaultPlan};
use skalla_storage::Catalog;
use skalla_tpcr::{generate, partition_by_nation, TpcrConfig, NATIONKEY_COL, QUANTITY_COL};
use skalla_types::{Relation, Value};

/// Bit-strict comparison of two (sorted) relations: `Value` equality
/// identifies `-0.0` with `0.0`; exactness here means the bits agree.
fn assert_bits_eq(a: &Relation, b: &Relation, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: row count");
    for (i, (ra, rb)) in a.rows().iter().zip(b.rows()).enumerate() {
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: row {i}: {va:?} vs {vb:?}")
                }
                _ => assert_eq!(va, vb, "{ctx}: row {i}"),
            }
        }
    }
}

struct Measurement {
    /// Round time: Σ per-round max site compute seconds (best of iters).
    round_s: f64,
    /// Measured wall seconds (best of iters).
    wall_s: f64,
    /// Metrics of the best pass, for the skew counters.
    metrics: ExecMetrics,
}

/// Run `plan` `iters` times on `wh`, assert exactness against `expected`
/// every pass, and keep the pass with the smallest round time.
fn measure(
    wh: &DistributedWarehouse,
    plan: &DistPlan,
    expected: &Relation,
    iters: usize,
    ctx: &str,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let (rel, metrics) = wh.execute(plan).expect("execute");
        let wall_s = t0.elapsed().as_secs_f64();
        assert_bits_eq(&rel.sorted(), expected, ctx);
        let round_s = metrics.site_compute_s();
        if best.as_ref().is_none_or(|b| round_s < b.round_s) {
            best = Some(Measurement {
                round_s,
                wall_s,
                metrics,
            });
        }
    }
    best.expect("at least one iteration")
}

/// Generate, launch, warm up, and measure one workload (one θ).
struct Workload {
    uniform: Measurement,
    skewed: Measurement,
    rows: usize,
    imbalance: f64,
}

fn run_workload(
    scale: f64,
    sites: usize,
    replication: usize,
    theta: f64,
    iters: usize,
) -> Workload {
    let table = generate(&TpcrConfig::scale(scale).with_zipf(theta));
    let rows = table.len();
    let parts = partition_by_nation(&table, sites).expect("partition");
    let expr = correlated_query(NATIONKEY_COL, QUANTITY_COL).expect("query");

    let mut full = Catalog::new();
    full.register(TPCR_TABLE, table.clone());
    let expected = eval_expr_centralized(&expr, &full)
        .expect("centralized eval")
        .sorted();

    let wh = DistributedWarehouse::launch_replicated(
        TPCR_TABLE,
        &parts,
        replication,
        CostModel::lan_2002(),
        FaultPlan::none(),
    )
    .expect("launch");

    let uniform_plan =
        DistPlan::unoptimized(expr.clone()).with_degraded_mode(DegradedMode::Failover);
    let skew_plan = uniform_plan
        .clone()
        .with_skew_split(1.2)
        .with_skew_offload(3.0);

    // Warmup: one pass primes the coordinator's learned partition loads
    // from the sites' sketches (and JITs the kernels for both paths). The
    // measured passes then see the steady state of a warm deployment.
    let (warm, _) = wh.execute(&skew_plan).expect("warmup");
    assert_bits_eq(&warm.sorted(), &expected, "warmup");

    let uniform = measure(&wh, &uniform_plan, &expected, iters, "uniform placement");
    let skewed = measure(&wh, &skew_plan, &expected, iters, "skew-aware");
    let imbalance = skewed.metrics.skew_ratio.max(uniform.metrics.skew_ratio);
    wh.shutdown().expect("shutdown");
    Workload {
        uniform,
        skewed,
        rows,
        imbalance,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 0.3);
    let sites = arg_usize(&args, "--sites", 8);
    let replication = arg_usize(&args, "--replication", sites).max(2);
    let theta = arg_f64(&args, "--theta", 1.2);
    let iters = arg_usize(&args, "--iters", 5);
    let check = arg_flag(&args, "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_8.json".to_string());

    println!(
        "# skew-aware execution: TPCR scale {scale}, {sites} sites, \
         {replication}-way replication, Zipf theta {theta}, best of {iters}"
    );

    let zipf = run_workload(scale, sites, replication, theta, iters);
    let flat = run_workload(scale, sites, replication, 0.0, iters);

    let speedup = zipf.uniform.round_s / zipf.skewed.round_s;
    let flat_ratio = flat.uniform.round_s / flat.skewed.round_s;

    println!(
        "{:<26} {:>9} {:>12} {:>12} {:>8} {:>7} {:>9} {:>6}",
        "workload / path", "rows", "round_s", "wall_s", "splits", "offload", "imbal", "vs"
    );
    let row = |label: &str, rows: usize, m: &Measurement, vs: f64| {
        println!(
            "{:<26} {:>9} {:>12.4} {:>12.4} {:>8} {:>4}/{:<2} {:>9.2} {:>5.2}x",
            label,
            rows,
            m.round_s,
            m.wall_s,
            m.metrics.parts_split,
            m.metrics.offloads,
            m.metrics.offload_wins,
            m.metrics.skew_ratio,
            vs,
        );
    };
    row("zipf static uniform", zipf.rows, &zipf.uniform, 1.0);
    row("zipf skew-aware", zipf.rows, &zipf.skewed, speedup);
    row("flat static uniform", flat.rows, &flat.uniform, 1.0);
    row("flat skew-aware", flat.rows, &flat.skewed, flat_ratio);
    println!(
        "# zipf round-time speedup {speedup:.2}x (partition imbalance {:.2}x); \
         flat control {flat_ratio:.2}x",
        zipf.imbalance
    );

    let path_json = |m: &Measurement| {
        format!(
            concat!(
                "{{\n",
                "      \"round_s\": {:.6},\n",
                "      \"wall_s\": {:.6},\n",
                "      \"parts_split\": {},\n",
                "      \"offloads\": {},\n",
                "      \"offload_wins\": {},\n",
                "      \"skew_ratio\": {:.3},\n",
                "      \"skew_top_share\": {:.3}\n",
                "    }}"
            ),
            m.round_s,
            m.wall_s,
            m.metrics.parts_split,
            m.metrics.offloads,
            m.metrics.offload_wins,
            m.metrics.skew_ratio,
            m.metrics.skew_top_share,
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"skew_bench\",\n",
            "  \"generated_by\": \"cargo run --release -p skalla-bench --bin skew_bench\",\n",
            "  \"scale\": {},\n",
            "  \"sites\": {},\n",
            "  \"replication\": {},\n",
            "  \"theta\": {},\n",
            "  \"iters\": {},\n",
            "  \"zipf_rows\": {},\n",
            "  \"zipf_imbalance\": {:.3},\n",
            "  \"zipf_uniform\": {},\n",
            "  \"zipf_skew\": {},\n",
            "  \"flat_rows\": {},\n",
            "  \"flat_uniform\": {},\n",
            "  \"flat_skew\": {},\n",
            "  \"round_time_speedup\": {:.2},\n",
            "  \"flat_control_ratio\": {:.2},\n",
            "  \"exact_vs_centralized\": true\n",
            "}}\n"
        ),
        scale,
        sites,
        replication,
        theta,
        iters,
        zipf.rows,
        zipf.imbalance,
        path_json(&zipf.uniform),
        path_json(&zipf.skewed),
        flat.rows,
        path_json(&flat.uniform),
        path_json(&flat.skewed),
        speedup,
        flat_ratio,
    );
    std::fs::write(&out, &json).expect("write JSON");
    println!("# wrote {out}");

    if check {
        assert!(
            zipf.skewed.metrics.parts_split > 0,
            "skew-aware run split no partitions despite Zipf theta {theta} \
             (imbalance {:.2}x)",
            zipf.imbalance
        );
        assert!(
            speedup >= 1.3,
            "skew-aware round time speedup {speedup:.2}x is below the 1.3x floor \
             (uniform {:.4}s vs skewed {:.4}s)",
            zipf.uniform.round_s,
            zipf.skewed.round_s
        );
        assert!(
            flat_ratio >= 0.8,
            "skew-aware execution regressed the uniform workload: {flat_ratio:.2}x \
             (uniform {:.4}s vs skewed {:.4}s)",
            flat.uniform.round_s,
            flat.skewed.round_s
        );
        println!(
            "# check passed: {speedup:.2}x >= 1.3x on zipf, flat control \
             {flat_ratio:.2}x >= 0.8x, all runs exact vs centralized"
        );
    }
}
