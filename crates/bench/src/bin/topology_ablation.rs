//! Beyond-paper ablation: coordinator topology (flat vs. two-level tree,
//! the paper's §6 future work) and row blocking (§3.2), measured on the
//! correlated TPCR query.
//!
//! Usage: `topology_ablation [--scale S] [--sites N]`

use skalla_bench::harness::{arg_f64, arg_usize};
use skalla_bench::{correlated_query, ExperimentSetup};
use skalla_core::{DistPlan, TieredWarehouse};
use skalla_net::CostModel;
use skalla_tpcr::{CUSTNAME_COL, EXTENDEDPRICE_COL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 0.4);
    let sites = arg_usize(&args, "--sites", 8);

    let setup = ExperimentSetup::new(scale, sites).expect("setup");
    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).expect("query");
    let plan = DistPlan::unoptimized(expr);

    println!("# Topology & row-blocking ablation ({sites} sites, scale {scale})");
    println!(
        "{:<24} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "configuration", "root_rows_up", "bytes_up", "messages", "modeled_s", "wall_s"
    );

    // Flat topology, whole results and several block sizes.
    let wh = setup.launch().expect("launch");
    let mut reference = None;
    for block in [None, Some(256usize), Some(64), Some(16)] {
        let p = match block {
            None => plan.clone(),
            Some(b) => plan.clone().with_block_rows(b),
        };
        let (result, m) = wh.execute(&p).expect("execute");
        let label = match block {
            None => "flat".to_string(),
            Some(b) => format!("flat + block {b}"),
        };
        println!(
            "{:<24} {:>12} {:>12} {:>10} {:>10.4} {:>10.4}",
            label,
            m.total_rows_up(),
            m.total_bytes_up(),
            m.total_messages(),
            m.modeled_time_s(),
            m.wall_s
        );
        match &reference {
            None => reference = Some(result.sorted()),
            Some(r) => assert_eq!(*r, result.sorted(), "{label} changed the result"),
        }
    }
    wh.shutdown().expect("shutdown");

    // Tree topologies.
    for fanout in [2usize, 4] {
        let tw = TieredWarehouse::launch(setup.catalogs(), fanout, CostModel::lan_2002())
            .expect("tree launch");
        let (result, m) = tw.execute(&plan).expect("tree execute");
        println!(
            "{:<24} {:>12} {:>12} {:>10} {:>10.4} {:>10.4}",
            format!("tree fanout {fanout} ({} mids)", tw.num_mid_tiers()),
            m.total_rows_up(),
            m.total_bytes_up(),
            m.total_messages(),
            m.modeled_time_s(),
            m.wall_s
        );
        assert_eq!(
            reference.as_ref().unwrap(),
            &result.sorted(),
            "tree fanout {fanout} changed the result"
        );
        tw.shutdown().expect("tree shutdown");
    }
    println!("# all configurations produced identical results");
}
