//! Figure 2 — the group reduction query.
//!
//! Reproduces both panels of the paper's Fig. 2: query evaluation time
//! (left) and bytes transferred (right) versus the number of sites, for the
//! non-group-reduced and group-reduced variants of a correlated two-GMDJ
//! query grouped on a partition attribute.
//!
//! Expected shapes (paper §5.2):
//! * without reduction: quadratic in the number of sites;
//! * with distribution-independent (site-side) reduction: "still quadratic,
//!   but to a lesser degree" — sites return a linear amount of data but the
//!   coordinator still ships a quadratic amount down;
//! * adding distribution-aware (coordinator-side) reduction makes the
//!   curves linear.
//!
//! Also verifies the paper's traffic formula: the ratio of groups
//! transferred with site-side reduction vs. without is
//! `(2c + 2n + 1) / (4n + 1)`.
//!
//! Usage: `fig2_group_reduction [--scale S] [--sites N] [--verify]`
//! (`--scale` is the per-site data scale; default 0.05).

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_bench::{correlated_query, run_variant, ExperimentSetup, RunRecord};
use skalla_core::OptFlags;
use skalla_tpcr::{CUSTNAME_COL, EXTENDEDPRICE_COL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let per_site_scale = arg_f64(&args, "--scale", 0.05);
    let max_sites = arg_usize(&args, "--sites", 8);
    let verify = arg_flag(&args, "--verify");
    let csv = arg_flag(&args, "--csv");

    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).expect("query builds");

    println!("# Figure 2: group reduction query (grouping on custname, a partition attribute)");
    println!("# per-site scale {per_site_scale}, sites 1..={max_sites}");
    println!(
        "{}",
        if csv {
            RunRecord::csv_header()
        } else {
            RunRecord::header()
        }
    );

    let site_flags = OptFlags {
        site_group_reduction: true,
        ..OptFlags::none()
    };
    let both_flags = OptFlags {
        site_group_reduction: true,
        coord_group_reduction: true,
        ..OptFlags::none()
    };

    for n in 1..=max_sites {
        // Fixed-size partitions: total data grows with the site count, as
        // in the paper's speed-up setup (eight equal partitions, n of them
        // participating).
        let setup = ExperimentSetup::new(per_site_scale * n as f64, n).expect("setup");

        let (r_none, rec_none) = run_variant(
            &setup,
            &expr,
            OptFlags::none(),
            CUSTNAME_COL,
            "no-reduction",
        )
        .expect("run");
        println!(
            "{}",
            if csv {
                rec_none.csv_row()
            } else {
                rec_none.row()
            }
        );
        let (r_site, rec_site) =
            run_variant(&setup, &expr, site_flags, CUSTNAME_COL, "site-reduction").expect("run");
        println!(
            "{}",
            if csv {
                rec_site.csv_row()
            } else {
                rec_site.row()
            }
        );
        let (r_both, rec_both) = run_variant(
            &setup,
            &expr,
            both_flags,
            CUSTNAME_COL,
            "site+coord-reduction",
        )
        .expect("run");
        println!(
            "{}",
            if csv {
                rec_both.csv_row()
            } else {
                rec_both.row()
            }
        );

        assert_eq!(
            r_none.sorted(),
            r_site.sorted(),
            "site reduction changed the result"
        );
        assert_eq!(
            r_none.sorted(),
            r_both.sorted(),
            "coord reduction changed the result"
        );

        if verify {
            let cent = skalla_gmdj::eval_expr_centralized(&expr, &setup.full_catalog())
                .expect("centralized");
            assert_eq!(r_none.sorted(), cent.sorted(), "distributed != centralized");
        }

        // Paper's formula check (§5.2): the proportion of groups
        // transferred with site-side reduction vs. without is
        // (2c + 2n + 1)/(4n + 1). `c` normalizes the per-round upstream
        // volume to the global group count ng: we estimate it from the
        // data as n times the average fraction of the global groups a
        // site holds (with a partition attribute, every site updates all
        // of its own groups, so c ≈ 1). The paper reports the formula
        // matching measurements within 5%.
        if n > 1 {
            let total_groups = r_none.len() as f64;
            let g_avg = setup
                .partitioning
                .parts
                .iter()
                .map(|p| p.distinct_project(&[CUSTNAME_COL]).expect("project").len() as f64)
                .sum::<f64>()
                / n as f64;
            let c = n as f64 * g_avg / total_groups;
            let nf = n as f64;
            let formula = (2.0 * c + 2.0 * nf + 1.0) / (4.0 * nf + 1.0);
            let rows = |r: &RunRecord| (r.rows_down + r.rows_up) as f64;
            let measured = rows(&rec_site) / rows(&rec_none);
            let err = (measured - formula).abs() / formula * 100.0;
            println!(
                "#   n={n}: group-transfer ratio measured {measured:.3}, formula (2c+2n+1)/(4n+1) = {formula:.3} (c={c:.2}, err {err:.1}%)"
            );
            assert!(err < 5.0, "formula deviates more than the paper's 5%");
        }
    }
}
