//! Figure 4 — the synchronization reduction query.
//!
//! Reproduces both panels of the paper's Fig. 4: evaluation time of a
//! *correlated* (non-coalescible) two-GMDJ query with and without
//! synchronization reduction, for high-cardinality (`custname`) and
//! low-cardinality (`cityname`) grouping attributes. Both attributes are
//! functionally dependent on the partitioning, so Proposition 2 and
//! Corollary 1 apply: the reduced plan evaluates the whole query locally
//! with a single synchronization.
//!
//! Expected shapes (paper §5.2): without the reduction the high-cardinality
//! curve is quadratic in the number of sites; with it the query runs in a
//! single round and grows linearly (with the output size). The
//! low-cardinality gap is smaller and reflects only the synchronization
//! overhead.
//!
//! Usage: `fig4_sync_reduction [--scale S] [--sites N] [--verify]`

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_bench::{correlated_query, run_variant, ExperimentSetup, RunRecord};
use skalla_core::OptFlags;
use skalla_tpcr::{CITYNAME_COL, CUSTNAME_COL, EXTENDEDPRICE_COL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let per_site_scale = arg_f64(&args, "--scale", 0.05);
    let max_sites = arg_usize(&args, "--sites", 8);
    let verify = arg_flag(&args, "--verify");
    let csv = arg_flag(&args, "--csv");

    let sync_flags = OptFlags {
        sync_reduction: true,
        ..OptFlags::none()
    };

    for (panel, group_col) in [
        ("high-cardinality (custname)", CUSTNAME_COL),
        ("low-cardinality (cityname)", CITYNAME_COL),
    ] {
        println!("# Figure 4 ({panel}): synchronization reduction query");
        println!(
            "{}",
            if csv {
                RunRecord::csv_header()
            } else {
                RunRecord::header()
            }
        );
        let expr = correlated_query(group_col, EXTENDEDPRICE_COL).expect("query builds");

        for n in 1..=max_sites {
            let setup = ExperimentSetup::new(per_site_scale * n as f64, n).expect("setup");
            let (r_plain, rec_plain) = run_variant(
                &setup,
                &expr,
                OptFlags::none(),
                group_col,
                "no-sync-reduction",
            )
            .expect("run");
            println!(
                "{}",
                if csv {
                    rec_plain.csv_row()
                } else {
                    rec_plain.row()
                }
            );
            let (r_sync, rec_sync) =
                run_variant(&setup, &expr, sync_flags, group_col, "sync-reduction").expect("run");
            println!(
                "{}",
                if csv {
                    rec_sync.csv_row()
                } else {
                    rec_sync.row()
                }
            );

            assert_eq!(
                r_plain.sorted(),
                r_sync.sorted(),
                "sync reduction changed the result"
            );
            assert_eq!(
                rec_sync.syncs, 1,
                "reduced plan must use a single synchronization"
            );
            assert_eq!(
                rec_plain.syncs, 3,
                "unreduced plan uses three synchronizations"
            );

            if verify {
                let cent = skalla_gmdj::eval_expr_centralized(&expr, &setup.full_catalog())
                    .expect("centralized");
                assert_eq!(
                    r_plain.sorted(),
                    cent.sorted(),
                    "distributed != centralized"
                );
            }
        }
        println!();
    }
}
