//! Figure 3 — the coalescing query.
//!
//! Reproduces both panels of the paper's Fig. 3: evaluation time of a
//! coalescible two-GMDJ query with and without coalescing, for a
//! high-cardinality grouping attribute (left, `custname`) and a
//! low-cardinality one (right, `cityname`).
//!
//! Expected shapes (paper §5.2): without coalescing the high-cardinality
//! curve grows quadratically with the number of sites; coalesced evaluation
//! runs in a single round and grows linearly. On the low-cardinality query
//! the difference is smaller (~30%), coming mostly from the shared scan.
//!
//! Usage: `fig3_coalescing [--scale S] [--sites N] [--verify]`

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_bench::{coalescible_query, run_variant, ExperimentSetup, RunRecord};
use skalla_core::OptFlags;
use skalla_tpcr::{CITYNAME_COL, CUSTNAME_COL, EXTENDEDPRICE_COL, QUANTITY_COL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let per_site_scale = arg_f64(&args, "--scale", 0.05);
    let max_sites = arg_usize(&args, "--sites", 8);
    let verify = arg_flag(&args, "--verify");
    let csv = arg_flag(&args, "--csv");

    // The coalesced execution evaluates base + single GMDJ in one local
    // round (coalescing plus the Proposition 2 base elimination, exactly
    // the single-round evaluation the paper describes).
    let coalesced_flags = OptFlags {
        coalesce: true,
        sync_reduction: true,
        ..OptFlags::none()
    };

    for (panel, group_col) in [
        ("high-cardinality (custname)", CUSTNAME_COL),
        ("low-cardinality (cityname)", CITYNAME_COL),
    ] {
        println!("# Figure 3 ({panel}): coalescing query");
        println!(
            "{}",
            if csv {
                RunRecord::csv_header()
            } else {
                RunRecord::header()
            }
        );
        let expr = coalescible_query(group_col, EXTENDEDPRICE_COL, QUANTITY_COL, 30.0)
            .expect("query builds");

        for n in 1..=max_sites {
            let setup = ExperimentSetup::new(per_site_scale * n as f64, n).expect("setup");
            let (r_plain, rec_plain) =
                run_variant(&setup, &expr, OptFlags::none(), group_col, "non-coalesced")
                    .expect("run");
            println!(
                "{}",
                if csv {
                    rec_plain.csv_row()
                } else {
                    rec_plain.row()
                }
            );
            let (r_coal, rec_coal) =
                run_variant(&setup, &expr, coalesced_flags, group_col, "coalesced").expect("run");
            println!(
                "{}",
                if csv {
                    rec_coal.csv_row()
                } else {
                    rec_coal.row()
                }
            );

            assert_eq!(
                r_plain.sorted(),
                r_coal.sorted(),
                "coalescing changed the result"
            );
            assert!(
                rec_coal.syncs < rec_plain.syncs,
                "coalescing must cut synchronizations"
            );

            if verify {
                let cent = skalla_gmdj::eval_expr_centralized(&expr, &setup.full_catalog())
                    .expect("centralized");
                assert_eq!(
                    r_plain.sorted(),
                    cent.sorted(),
                    "distributed != centralized"
                );
            }
        }
        println!();
    }
}
