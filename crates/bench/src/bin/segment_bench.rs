//! Out-of-core segment scan benchmark with zone-map pruning (PR 9).
//!
//! PR 9 moves site storage out of core: each partition lives on disk as a
//! sequence of fixed-row-count compressed columnar segments whose footers
//! carry per-column zone maps (min/max/null-count). A GMDJ round decodes
//! one segment at a time — peak memory is a single segment plus the
//! aggregate states — and, when a block's condition bounds a detail
//! column, consults the zone maps first and skips every segment the
//! footer proves irrelevant, saving both the read and the decode.
//!
//! This bench generates a time-ordered TPCR table *straight to disk*
//! (`generate_to_dir` streams rows into per-site segment writers; the
//! full table is never materialized on the data path), launches a
//! warehouse whose site catalogs are segment-backed, and runs a selective
//! date-range GMDJ query twice: zone-map pruning off (every segment is
//! decoded) and on. Time-ordered generation gives each segment a narrow
//! `orderdate` window, so a "last N days" predicate lets the footers
//! refute the bulk of the file — the natural shape of an append-mostly
//! fact table queried on recent history.
//!
//! Every run is compared bit-for-bit against the centralized in-memory
//! evaluation of the same query over the identical table (`generate`
//! and `generate_to_dir` share one seeded row stream, so the on-disk
//! bytes decode to exactly the in-memory rows). Chunked segment scans
//! thread one running accumulator through the fold, so even float
//! aggregates agree to the last bit — pruning is exercised as a pure
//! optimization with no licence to change answers.
//!
//! The headline metric is **round time**: Σ over rounds of the maximum
//! per-site compute seconds — the parallel critical path a barrier
//! execution waits on. Sites report thread-CPU seconds, so the
//! comparison holds even when the host has fewer cores than sites.
//!
//! Usage: `segment_bench [--scale F] [--sites N] [--segment-rows N]
//! [--days N] [--iters N] [--out PATH] [--check]`.
//!
//! `--check` exits nonzero unless all of:
//!   1. every run (pruned and unpruned) is bit-exact vs the centralized
//!      in-memory evaluation;
//!   2. the zone maps pruned more than half of the eligible segment
//!      visits;
//!   3. the pruned scan's round time is ≥ 1.3× faster than the unpruned
//!      out-of-core scan (the committed BENCH_9.json reports a larger
//!      ratio at the default shape; 1.3× leaves headroom for host noise).

use std::sync::Arc;
use std::time::Instant;

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_bench::queries::{date_range_query, TPCR_TABLE};
use skalla_core::{DistPlan, DistributedWarehouse, ExecMetrics};
use skalla_gmdj::eval_expr_centralized;
use skalla_net::CostModel;
use skalla_storage::{Catalog, SegmentFile};
use skalla_tpcr::{
    generate, generate_to_dir, TpcrConfig, NATIONKEY_COL, ORDERDATE_COL, QUANTITY_COL,
    TIMELINE_DAYS,
};
use skalla_types::{Relation, Value};

/// Bit-strict comparison of two (sorted) relations: `Value` equality
/// identifies `-0.0` with `0.0`; exactness here means the bits agree.
fn assert_bits_eq(a: &Relation, b: &Relation, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: row count");
    for (i, (ra, rb)) in a.rows().iter().zip(b.rows()).enumerate() {
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: row {i}: {va:?} vs {vb:?}")
                }
                _ => assert_eq!(va, vb, "{ctx}: row {i}"),
            }
        }
    }
}

struct Measurement {
    /// Round time: Σ per-round max site compute seconds (best of iters).
    round_s: f64,
    /// Measured wall seconds (best of iters).
    wall_s: f64,
    /// Metrics of the best pass, for the segment counters.
    metrics: ExecMetrics,
}

/// Run `plan` `iters` times on `wh`, assert exactness against `expected`
/// every pass, and keep the pass with the smallest round time.
fn measure(
    wh: &DistributedWarehouse,
    plan: &DistPlan,
    expected: &Relation,
    iters: usize,
    ctx: &str,
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let (rel, metrics) = wh.execute(plan).expect("execute");
        let wall_s = t0.elapsed().as_secs_f64();
        assert_bits_eq(&rel.sorted(), expected, ctx);
        let round_s = metrics.site_compute_s();
        if best.as_ref().is_none_or(|b| round_s < b.round_s) {
            best = Some(Measurement {
                round_s,
                wall_s,
                metrics,
            });
        }
    }
    best.expect("at least one iteration")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 2.0);
    let sites = arg_usize(&args, "--sites", 4).max(1);
    let segment_rows = arg_usize(&args, "--segment-rows", 2048).max(1);
    let days = arg_usize(&args, "--days", 150) as i64;
    let iters = arg_usize(&args, "--iters", 5);
    let check = arg_flag(&args, "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_9.json".to_string());

    let lo = (TIMELINE_DAYS - days).max(0);
    println!(
        "# out-of-core zone-map pruning: TPCR scale {scale} (time-ordered), {sites} sites, \
         {segment_rows}-row segments, last {days} days of {TIMELINE_DAYS}, best of {iters}"
    );

    // Stream the table to per-site segment files — the full table is never
    // materialized on this path.
    let cfg = TpcrConfig::scale(scale).with_time_ordered(true);
    let dir = std::env::temp_dir().join(format!("skalla-segment-bench-{}", std::process::id()));
    let paths = generate_to_dir(&cfg, sites, segment_rows, &dir).expect("generate to dir");

    let mut catalogs = Vec::with_capacity(sites);
    let mut total_segments = 0usize;
    let mut total_rows = 0usize;
    for p in &paths {
        let file = SegmentFile::open(p).expect("open segments");
        total_segments += file.num_segments();
        total_rows += file.total_rows();
        let mut c = Catalog::new();
        c.register_segments(TPCR_TABLE, Arc::new(file));
        catalogs.push(c);
    }

    // Centralized in-memory reference over the identical row stream.
    let expr = date_range_query(
        NATIONKEY_COL,
        QUANTITY_COL,
        ORDERDATE_COL,
        lo,
        TIMELINE_DAYS,
    )
    .expect("query");
    let mut full = Catalog::new();
    full.register(TPCR_TABLE, generate(&cfg));
    let expected = eval_expr_centralized(&expr, &full)
        .expect("centralized eval")
        .sorted();

    let wh = DistributedWarehouse::launch(catalogs, CostModel::lan_2002()).expect("launch");
    let pruned_plan = DistPlan::unoptimized(expr.clone());
    let unpruned_plan = DistPlan::unoptimized(expr).with_segment_prune(false);

    // Warmup: prime the page cache and JIT both paths once.
    let (warm, _) = wh.execute(&unpruned_plan).expect("warmup");
    assert_bits_eq(&warm.sorted(), &expected, "warmup");

    let unpruned = measure(&wh, &unpruned_plan, &expected, iters, "prune off");
    let pruned = measure(&wh, &pruned_plan, &expected, iters, "prune on");
    wh.shutdown().expect("shutdown");
    std::fs::remove_dir_all(&dir).ok();

    let (p_sc, p_pr) = (
        pruned.metrics.total_segments_scanned(),
        pruned.metrics.total_segments_pruned(),
    );
    let visits = p_sc + p_pr;
    let pruned_frac = if visits > 0 {
        p_pr as f64 / visits as f64
    } else {
        0.0
    };
    let speedup = unpruned.round_s / pruned.round_s;

    println!(
        "{:<14} {:>9} {:>9} {:>12} {:>12} {:>9} {:>9} {:>6}",
        "path", "rows", "segments", "round_s", "wall_s", "scanned", "pruned", "vs"
    );
    let row = |label: &str, m: &Measurement, vs: f64| {
        println!(
            "{:<14} {:>9} {:>9} {:>12.4} {:>12.4} {:>9} {:>9} {:>5.2}x",
            label,
            total_rows,
            total_segments,
            m.round_s,
            m.wall_s,
            m.metrics.total_segments_scanned(),
            m.metrics.total_segments_pruned(),
            vs,
        );
    };
    row("prune off", &unpruned, 1.0);
    row("prune on", &pruned, speedup);
    println!(
        "# zone maps pruned {p_pr}/{visits} eligible segment visits ({:.0}%); \
         round-time speedup {speedup:.2}x",
        pruned_frac * 100.0
    );

    let path_json = |m: &Measurement| {
        format!(
            concat!(
                "{{\n",
                "    \"round_s\": {:.6},\n",
                "    \"wall_s\": {:.6},\n",
                "    \"segments_scanned\": {},\n",
                "    \"segments_pruned\": {}\n",
                "  }}"
            ),
            m.round_s,
            m.wall_s,
            m.metrics.total_segments_scanned(),
            m.metrics.total_segments_pruned(),
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"segment_bench\",\n",
            "  \"generated_by\": \"cargo run --release -p skalla-bench --bin segment_bench\",\n",
            "  \"scale\": {},\n",
            "  \"sites\": {},\n",
            "  \"segment_rows\": {},\n",
            "  \"days\": {},\n",
            "  \"iters\": {},\n",
            "  \"rows\": {},\n",
            "  \"segments\": {},\n",
            "  \"prune_off\": {},\n",
            "  \"prune_on\": {},\n",
            "  \"pruned_fraction\": {:.3},\n",
            "  \"round_time_speedup\": {:.2},\n",
            "  \"exact_vs_centralized\": true\n",
            "}}\n"
        ),
        scale,
        sites,
        segment_rows,
        days,
        iters,
        total_rows,
        total_segments,
        path_json(&unpruned),
        path_json(&pruned),
        pruned_frac,
        speedup,
    );
    std::fs::write(&out, &json).expect("write JSON");
    println!("# wrote {out}");

    if check {
        assert!(
            pruned_frac > 0.5,
            "zone maps pruned only {p_pr}/{visits} segment visits \
             ({:.0}% <= 50%) on the last-{days}-days predicate",
            pruned_frac * 100.0
        );
        assert!(
            speedup >= 1.3,
            "pruned round time speedup {speedup:.2}x is below the 1.3x floor \
             (unpruned {:.4}s vs pruned {:.4}s)",
            unpruned.round_s,
            pruned.round_s
        );
        println!(
            "# check passed: {:.0}% pruned > 50%, {speedup:.2}x >= 1.3x, \
             all runs bit-exact vs centralized",
            pruned_frac * 100.0
        );
    }
}
