//! Closed-loop serving benchmark: many concurrent TCP clients against
//! one in-process [`skalla_serve::Server`].
//!
//! Each client thread runs a fixed number of queries drawn round-robin
//! from a small pool of distinct GMDJ queries (different `nationkey`
//! thresholds, so different plans *and* different answers), retrying
//! `Busy` backpressure with backoff. The pool is deliberately smaller
//! than the total query count — a dashboard workload — so the
//! plan-fingerprint cache converts the bulk of the storm into hits.
//!
//! Reports sustained throughput (queries/s over the storm's wall time)
//! and client-observed latency percentiles, and writes a JSON summary
//! (default `BENCH_6.json`). With `--check`, every reply is compared
//! against a serial baseline captured before the storm, and the run
//! fails unless results match bit-for-bit and the cache saw hits.
//!
//! ```sh
//! cargo run --release -p skalla-bench --bin serve_loop -- --clients 100 --check
//! ```

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use skalla_bench::harness::{arg_f64, arg_flag, arg_usize};
use skalla_serve::{QueryOutcome, ServeClient, ServeConfig, Server};
use skalla_types::Relation;

/// The query pool: per-nation order counts and revenue, restricted to
/// nations with `nationkey >= k`. Every `k` is a distinct plan
/// fingerprint and a distinct (prefix-shrinking) result.
fn pool_query(k: usize) -> String {
    format!(
        "BASE DISTINCT nationname FROM tpcr;
         MD COUNT(*) AS orders, SUM(extendedprice) AS rev
            WHERE b.nationname = r.nationname AND r.nationkey >= {k};"
    )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ClientReport {
    latencies_s: Vec<f64>,
    busy_retries: u64,
    mismatches: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients = arg_usize(&args, "--clients", 100);
    let per_client = arg_usize(&args, "--queries", 20);
    let distinct = arg_usize(&args, "--distinct", 8).max(1);
    let scale = arg_f64(&args, "--scale", 0.05);
    let sites = arg_usize(&args, "--sites", 4);
    let queue_depth = arg_usize(&args, "--queue-depth", 64);
    let max_interleave = arg_usize(&args, "--interleave", 4);
    let cache_entries = arg_usize(&args, "--cache", 128);
    let check = arg_flag(&args, "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_6.json".to_string());

    let server = Server::start(ServeConfig {
        scale,
        sites,
        queue_depth,
        max_interleave,
        cache_entries,
        ..ServeConfig::default()
    })
    .expect("server start");
    let addr = server.local_addr();
    println!(
        "# serve_loop: {clients} clients x {per_client} queries over a pool of {distinct} \
         (TPCR scale {scale}, {sites} sites, queue {queue_depth}, interleave {max_interleave}, \
         cache {cache_entries})"
    );

    // Serial baseline, one query at a time on a single session. Also
    // warms nothing: the cache is invalidated before the storm so the
    // measured hit rate belongs to the storm alone.
    let baseline: Arc<Vec<Relation>> = {
        let mut c = ServeClient::connect(addr).expect("baseline connect");
        let rels = (0..distinct)
            .map(|k| match c.query(&pool_query(k)).expect("baseline query") {
                QueryOutcome::Done(reply) => reply.rows.sorted(),
                QueryOutcome::Busy => panic!("idle server answered Busy"),
            })
            .collect();
        c.invalidate().expect("invalidate after baseline");
        Arc::new(rels)
    };

    // The storm: closed-loop clients, each blocking on its own replies.
    let storm_start = Instant::now();
    let handles: Vec<thread::JoinHandle<ClientReport>> = (0..clients)
        .map(|cid| {
            let baseline = baseline.clone();
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connect");
                let mut report = ClientReport {
                    latencies_s: Vec::with_capacity(per_client),
                    busy_retries: 0,
                    mismatches: 0,
                };
                for i in 0..per_client {
                    let k = (cid + i) % baseline.len();
                    let t0 = Instant::now();
                    let (reply, busy) = client
                        .query_with_retry(&pool_query(k), 1000)
                        .expect("storm query");
                    report.latencies_s.push(t0.elapsed().as_secs_f64());
                    report.busy_retries += u64::from(busy);
                    if reply.rows.sorted() != baseline[k] {
                        report.mismatches += 1;
                    }
                }
                report
            })
        })
        .collect();

    let mut latencies_s: Vec<f64> = Vec::with_capacity(clients * per_client);
    let mut busy_retries = 0u64;
    let mut mismatches = 0u64;
    for h in handles {
        let r = h.join().expect("client thread");
        latencies_s.extend(r.latencies_s);
        busy_retries += r.busy_retries;
        mismatches += r.mismatches;
    }
    let wall_s = storm_start.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown().expect("server shutdown");

    latencies_s.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let completed = latencies_s.len();
    let qps = completed as f64 / wall_s;
    let (p50, p90, p99, max) = (
        percentile(&latencies_s, 50.0) * 1e3,
        percentile(&latencies_s, 90.0) * 1e3,
        percentile(&latencies_s, 99.0) * 1e3,
        latencies_s.last().copied().unwrap_or(0.0) * 1e3,
    );
    // Storm-only cache counters: the baseline contributed `distinct`
    // misses before the invalidation, and the post-baseline invalidation
    // emptied the cache, so hits measured now all come from the storm.
    let hit_rate = if stats.cache.hits + stats.cache.misses > 0 {
        stats.cache.hits as f64 / (stats.cache.hits + stats.cache.misses) as f64
    } else {
        0.0
    };

    println!(
        "{completed} queries in {wall_s:.3}s = {qps:.0} qps | latency ms p50 {p50:.2} p90 {p90:.2} \
         p99 {p99:.2} max {max:.2} | {busy_retries} busy retries | cache {} hit(s) / {} miss(es) \
         ({:.0}% hit rate)",
        stats.cache.hits,
        stats.cache.misses,
        hit_rate * 100.0
    );

    let json = format!(
        r#"{{
  "bench": "serve_loop",
  "generated_by": "cargo run --release -p skalla-bench --bin serve_loop -- --clients {clients} --queries {per_client} --distinct {distinct} --scale {scale} --sites {sites}",
  "clients": {clients},
  "queries_per_client": {per_client},
  "distinct_queries": {distinct},
  "scale": {scale},
  "sites": {sites},
  "queue_depth": {queue_depth},
  "max_interleave": {max_interleave},
  "cache_entries": {cache_entries},
  "completed": {completed},
  "wall_s": {wall_s:.6},
  "qps": {qps:.1},
  "latency_ms": {{ "p50": {p50:.3}, "p90": {p90:.3}, "p99": {p99:.3}, "max": {max:.3} }},
  "busy_retries": {busy_retries},
  "cache": {{ "hits": {}, "misses": {}, "hit_rate": {hit_rate:.4} }},
  "sched": {{ "submitted": {}, "rejected": {}, "completed": {}, "failed": {} }},
  "verified": {}
}}
"#,
        stats.cache.hits,
        stats.cache.misses,
        stats.sched.submitted,
        stats.sched.rejected,
        stats.sched.completed,
        stats.sched.failed,
        check && mismatches == 0,
    );
    std::fs::write(&out, &json).expect("write JSON");
    println!("wrote {out}");

    if check {
        assert_eq!(
            mismatches, 0,
            "concurrent replies diverged from the serial baseline"
        );
        assert!(
            stats.cache.hits > 0,
            "repeated-query storm produced no cache hits"
        );
        assert_eq!(stats.sched.failed, 0, "queries failed during the storm");
        println!("check passed: all {completed} replies match the serial baseline");
    }
}
