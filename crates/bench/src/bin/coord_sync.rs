//! Coordinator synchronization benchmark (PR 4 baseline, PR 7 scaling).
//!
//! Measures the coordinator-bound tail of Alg. GMDJDistribEval: merging
//! every site's sub-aggregate fragments into the synchronized `BaseResult`
//! and finalizing it (Theorem 1 super-aggregation). At many groups × many
//! sites this merge loop *is* the response time, so PR 4 replaced it with
//! the sharded pipeline of [`ShardedSync`] and PR 7 restructured that
//! pipeline around owned shard ranges: the router hashes and routes row
//! locators only (no `Value` moves), each worker exclusively owns a
//! contiguous shard range, merge kernels run over gathered lanes, and
//! finalize is a per-worker k-way render feeding a top-level merge tree.
//!
//! The workload is synthetic and site-shaped: `--sites` sites each ship a
//! fragment covering all `--groups` groups (COUNT, SUM, AVG, MAX states),
//! row-blocked into `--chunk-rows` chunks. The serial path replays
//! `BaseResult::merge_fragment` + `finalize`; the sharded path replays
//! `ShardedSync::merge_chunk` + `finish` at 1, 2, and `--workers` workers.
//! Both must produce identical relations, bit for bit, on every pass.
//!
//! Each sharded measurement reports the **measured** wall time and the
//! **modeled** critical-path time `max(route, max worker busy) + finalize`
//! from [`SyncStats::modeled_parallel_s`]. Wall time needs free cores to
//! drop; the modeled time exposes whether the *structure* scales — on a
//! host with fewer cores than workers (e.g. a 1-CPU container) the OS
//! serializes the workers and wall time cannot improve no matter how good
//! the partitioning is, so the scaling gate switches evidence accordingly
//! (see `--check` below).
//!
//! Usage: `coord_sync [--groups N] [--sites N] [--chunk-rows N]
//! [--workers N] [--iters N] [--out PATH] [--check]`.
//!
//! `--check` exits nonzero unless all of:
//!   1. the top-worker-count measured speedup over serial is ≥ 1.8×;
//!   2. measured speedup is monotonic-ish in workers: the top worker
//!      count is no more than 10% slower than 1 worker (anti-scaling
//!      guard, applies on every host);
//!   3. speedup(top workers) ≥ 1.5 × speedup(1 worker) — judged on
//!      **measured** wall time when the host has more cores than the top
//!      worker count, and on the **modeled** critical path otherwise.

use std::time::Instant;

use skalla_bench::harness::{arg_flag, arg_usize};
use skalla_core::{BaseResult, ShardedSync, SyncOptions, SyncOutput, SyncSpec, SyncStats};
use skalla_expr::Expr;
use skalla_gmdj::AggSpec;
use skalla_types::{DataType, Field, Relation, Schema, Value};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn unit_float(x: u64) -> f64 {
    (splitmix(x) >> 11) as f64 / (1u64 << 53) as f64
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star("cnt"),
        AggSpec::sum(Expr::detail(1), "total").expect("sum"),
        AggSpec::avg(Expr::detail(1), "mean").expect("avg"),
        AggSpec::max(Expr::detail(1), "peak").expect("max"),
    ]
}

fn output_fields() -> Vec<Field> {
    vec![
        Field::new("cnt", DataType::Int64),
        Field::new("total", DataType::Float64),
        Field::new("mean", DataType::Float64),
        Field::new("peak", DataType::Float64),
    ]
}

fn state_types() -> Vec<DataType> {
    vec![
        DataType::Int64,   // cnt
        DataType::Float64, // total
        DataType::Float64, // mean__sum
        DataType::Int64,   // mean__count
        DataType::Float64, // peak
    ]
}

fn base(groups: usize) -> Relation {
    let schema = Schema::from_pairs([("k", DataType::Int64)])
        .expect("base schema")
        .into_arc();
    Relation::from_rows_unchecked(
        schema,
        (0..groups).map(|i| vec![Value::Int(i as i64)]).collect(),
    )
}

/// Every site's reply, row-blocked: each chunk holds ≤ `chunk_rows` rows
/// of [k, cnt, total, mean__sum, mean__count, peak] sub-aggregate state.
fn site_chunks(groups: usize, sites: usize, chunk_rows: usize) -> Vec<Relation> {
    let schema = Schema::from_pairs([
        ("k", DataType::Int64),
        ("cnt", DataType::Int64),
        ("total", DataType::Float64),
        ("mean__sum", DataType::Float64),
        ("mean__count", DataType::Int64),
        ("peak", DataType::Float64),
    ])
    .expect("fragment schema")
    .into_arc();
    let mut chunks = Vec::new();
    for site in 0..sites {
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(chunk_rows);
        for g in 0..groups {
            let seed = (site * groups + g) as u64;
            let n = 1 + (splitmix(seed) % 50) as i64;
            let sum = unit_float(seed ^ 0xA5A5) * n as f64 * 100.0;
            rows.push(vec![
                Value::Int(g as i64),
                Value::Int(n),
                Value::Float(sum),
                Value::Float(sum),
                Value::Int(n),
                Value::Float(unit_float(seed ^ 0x5A5A) * 100.0),
            ]);
            if rows.len() == chunk_rows {
                chunks.push(Relation::from_rows_unchecked(
                    schema.clone(),
                    std::mem::take(&mut rows),
                ));
            }
        }
        if !rows.is_empty() {
            chunks.push(Relation::from_rows_unchecked(schema.clone(), rows));
        }
    }
    chunks
}

/// One serial-baseline pass: `BaseResult` merge + finalize. Like the
/// sharded pass, this consumes its staged chunk copies inside the timed
/// region — the production coordinator owns each fragment off the wire
/// and frees it after merging, so chunk teardown is part of the
/// synchronization tail on both paths.
fn serial_once(b: &Relation, chunks: &[Relation]) -> (f64, Relation) {
    let staged: Vec<Relation> = chunks.to_vec();
    let t0 = Instant::now();
    let mut x = BaseResult::from_base(b, &[0], specs(), output_fields()).expect("seed BaseResult");
    for c in staged {
        x.merge_fragment(&c, false).expect("serial merge");
    }
    let rel = x.finalize().expect("serial finalize");
    (t0.elapsed().as_secs_f64(), rel)
}

/// One sharded-pipeline pass at `workers` workers. The chunk clones are
/// staged outside the timed region — in production the chunks arrive
/// owned off the wire.
fn sharded_once(
    b: &Relation,
    chunks: &[Relation],
    spec: &SyncSpec,
    workers: usize,
) -> (f64, Relation, SyncStats) {
    let opts = SyncOptions::for_workers(workers);
    let staged: Vec<Relation> = chunks.to_vec();
    let t0 = Instant::now();
    let mut x = ShardedSync::new(spec.clone(), Some(b), opts).expect("ShardedSync");
    for c in staged {
        x.merge_chunk(c).expect("sharded merge");
    }
    let (rel, stats) = x.finish().expect("sharded finish");
    (t0.elapsed().as_secs_f64(), rel, stats)
}

struct Measurement {
    workers: usize,
    sync_s: f64,
    stats: SyncStats,
}

impl Measurement {
    /// Critical-path time assuming every worker had its own core:
    /// `max(route, max worker busy) + finalize`.
    fn modeled_s(&self) -> f64 {
        self.stats.modeled_parallel_s()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let groups = arg_usize(&args, "--groups", 50_000);
    let sites = arg_usize(&args, "--sites", 16);
    let chunk_rows = arg_usize(&args, "--chunk-rows", 4096);
    let max_workers = arg_usize(&args, "--workers", 4).max(1);
    let iters = arg_usize(&args, "--iters", 8);
    let check = arg_flag(&args, "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_7.json".to_string());

    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let b = base(groups);
    let chunks = site_chunks(groups, sites, chunk_rows);
    let fragment_rows: usize = chunks.iter().map(Relation::len).sum();
    println!(
        "# coordinator synchronization: {groups} groups x {sites} sites \
         ({fragment_rows} fragment rows, {} chunks of <= {chunk_rows}, best of {iters}, \
         host parallelism {host_parallelism})",
        chunks.len()
    );
    println!(
        "{:<22} {:>9} {:>12} {:>9} {:>7} {:>10} {:>8}",
        "path", "workers", "sync_s", "rows/s", "speedup", "modeled_s", "modeled"
    );

    let spec = SyncSpec {
        base_schema: b.schema().clone(),
        key_cols: vec![0],
        specs: specs(),
        state_types: state_types(),
        output: SyncOutput::Finalized(output_fields()),
        allow_new: false,
    };
    let worker_counts: Vec<usize> = [1usize, 2, max_workers]
        .into_iter()
        .filter(|&w| w <= max_workers)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    // Interleave serial and sharded passes round-robin so ambient machine
    // drift (noisy neighbours, thermal throttling) hits every path alike
    // instead of biasing whichever ran last; keep the best pass per path.
    let mut serial_s = f64::INFINITY;
    let mut expected: Option<Relation> = None;
    let mut measurements: Vec<Measurement> = worker_counts
        .iter()
        .map(|&w| Measurement {
            workers: w,
            sync_s: f64::INFINITY,
            stats: SyncStats::default(),
        })
        .collect();
    for _ in 0..iters.max(1) {
        let (t, rel) = serial_once(&b, &chunks);
        serial_s = serial_s.min(t);
        match &expected {
            Some(prev) => assert_eq!(*prev, rel, "serial synchronization is nondeterministic"),
            None => expected = Some(rel),
        }
        let expected = expected.as_ref().expect("serial relation");
        for m in &mut measurements {
            let (t, rel, stats) = sharded_once(&b, &chunks, &spec, m.workers);
            assert_eq!(
                &rel, expected,
                "sharded ({} workers) and serial synchronization disagree",
                m.workers
            );
            if t < m.sync_s {
                m.sync_s = t;
                m.stats = stats;
            }
        }
    }

    println!(
        "{:<22} {:>9} {:>12.4} {:>9.0} {:>6.2}x {:>10} {:>8}",
        "serial BaseResult",
        "-",
        serial_s,
        fragment_rows as f64 / serial_s,
        1.0,
        "-",
        "-"
    );
    for m in &measurements {
        println!(
            "{:<22} {:>9} {:>12.4} {:>9.0} {:>6.2}x {:>10.4} {:>6.2}x   \
             (route {:.4}s, busy max {:.4}s, finalize {:.4}s, {:.0}% busy, {:.2}x imbalance)",
            "sharded pipeline",
            m.workers,
            m.sync_s,
            fragment_rows as f64 / m.sync_s,
            serial_s / m.sync_s,
            m.modeled_s(),
            serial_s / m.modeled_s(),
            m.stats.partition_s,
            m.stats.max_worker_busy_s(),
            m.stats.finalize_s,
            m.stats.utilization() * 100.0,
            m.stats.imbalance(),
        );
    }

    let one = measurements
        .first()
        .expect("at least one worker count measured");
    let top = measurements.last().expect("at least one worker count");
    let top_speedup = serial_s / top.sync_s;
    let measured_ratio = one.sync_s / top.sync_s;
    let modeled_ratio = one.modeled_s() / top.modeled_s();
    // Wall time can only drop when the OS actually has cores to run the
    // workers on; otherwise the modeled critical path carries the scaling
    // evidence (and the anti-scaling guard still applies to wall time).
    let gate_measured = host_parallelism > top.workers;
    println!(
        "# top config: {} workers x {} shards, {:.0}% worker busy, {:.2}x vs serial",
        top.stats.workers,
        top.stats.shards,
        top.stats.utilization() * 100.0,
        top_speedup
    );
    println!(
        "# scaling 1 -> {} workers: measured {:.2}x, modeled {:.2}x (gate on {})",
        top.workers,
        measured_ratio,
        modeled_ratio,
        if gate_measured { "measured" } else { "modeled" }
    );

    let rows_json: Vec<String> = measurements
        .iter()
        .map(|m| {
            let busy: Vec<String> = m
                .stats
                .worker_busy_s
                .iter()
                .map(|s| format!("{s:.6}"))
                .collect();
            format!(
                concat!(
                    "    {{\n",
                    "      \"workers\": {},\n",
                    "      \"shards\": {},\n",
                    "      \"sync_s\": {:.6},\n",
                    "      \"rows_per_s\": {:.0},\n",
                    "      \"speedup\": {:.2},\n",
                    "      \"modeled_s\": {:.6},\n",
                    "      \"modeled_speedup\": {:.2},\n",
                    "      \"route_s\": {:.6},\n",
                    "      \"finalize_s\": {:.6},\n",
                    "      \"utilization\": {:.3},\n",
                    "      \"imbalance\": {:.3},\n",
                    "      \"worker_busy_s\": [{}]\n",
                    "    }}"
                ),
                m.workers,
                m.stats.shards,
                m.sync_s,
                fragment_rows as f64 / m.sync_s,
                serial_s / m.sync_s,
                m.modeled_s(),
                serial_s / m.modeled_s(),
                m.stats.partition_s,
                m.stats.finalize_s,
                m.stats.utilization(),
                m.stats.imbalance(),
                busy.join(", "),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"coord_sync\",\n",
            "  \"generated_by\": \"cargo run --release -p skalla-bench --bin coord_sync\",\n",
            "  \"groups\": {},\n",
            "  \"sites\": {},\n",
            "  \"chunk_rows\": {},\n",
            "  \"iters\": {},\n",
            "  \"fragment_rows\": {},\n",
            "  \"host_parallelism\": {},\n",
            "  \"serial_s\": {:.6},\n",
            "  \"serial_rows_per_s\": {:.0},\n",
            "  \"sharded\": [\n{}\n  ],\n",
            "  \"top_speedup\": {:.2},\n",
            "  \"scaling\": {{\n",
            "    \"from_workers\": {},\n",
            "    \"to_workers\": {},\n",
            "    \"measured_ratio\": {:.2},\n",
            "    \"modeled_ratio\": {:.2},\n",
            "    \"gate\": \"{}\"\n",
            "  }}\n",
            "}}\n"
        ),
        groups,
        sites,
        chunk_rows,
        iters,
        fragment_rows,
        host_parallelism,
        serial_s,
        fragment_rows as f64 / serial_s,
        rows_json.join(",\n"),
        top_speedup,
        one.workers,
        top.workers,
        measured_ratio,
        modeled_ratio,
        if gate_measured { "measured" } else { "modeled" },
    );
    std::fs::write(&out, &json).expect("write JSON");
    println!("# wrote {out}");

    if check {
        // Regression floor vs the serial baseline. Observed top speedup on a
        // single-core container is ~2.0-2.2x (the owned-shard rewrite alone is
        // worth ~1.9x at one worker); 1.8 leaves ~10% headroom for host noise
        // while still failing loudly on any real regression (the pre-rewrite
        // pipeline measured ~1.3x on the same workload).
        assert!(
            top_speedup >= 1.8,
            "coordinator sync speedup {top_speedup:.2}x at {} workers is below the 1.8x floor",
            top.workers
        );
        assert!(
            measured_ratio >= 0.9,
            "adding workers made sync slower: {} workers ran at {:.2}x the 1-worker wall time",
            top.workers,
            measured_ratio
        );
        let (ratio, kind) = if gate_measured {
            (measured_ratio, "measured")
        } else {
            (modeled_ratio, "modeled critical-path")
        };
        assert!(
            ratio >= 1.5,
            "{kind} speedup ratio 1 -> {} workers is {ratio:.2}x, below the 1.5x floor \
             (host parallelism {host_parallelism})",
            top.workers
        );
        println!(
            "# check passed: {:.2}x vs serial at {} workers; 1 -> {} workers {kind} ratio \
             {ratio:.2}x >= 1.5x",
            top_speedup, top.workers, top.workers
        );
    }
}
