//! Centralized reference evaluation of GMDJ expressions.
//!
//! Evaluates a whole [`GmdjExpr`] on a single site holding the entire detail
//! relation — the behaviour a conventional (non-distributed) OLAP engine
//! would produce. The distributed executor in `skalla-core` is validated
//! against this evaluator (paper Theorem 3: Alg. GMDJDistribEval computes
//! the same result).

use skalla_storage::Catalog;
use skalla_types::{Relation, Result, SkallaError};

use crate::eval::{eval_gmdj_full, EvalOptions};
use crate::op::{BaseSpec, GmdjExpr};

/// Evaluate `expr` against the tables in `catalog` (each detail name binds
/// to the full relation).
pub fn eval_expr_centralized(expr: &GmdjExpr, catalog: &Catalog) -> Result<Relation> {
    eval_expr_centralized_opts(expr, catalog, &EvalOptions::default())
}

/// [`eval_expr_centralized`] with explicit evaluation options.
pub fn eval_expr_centralized_opts(
    expr: &GmdjExpr,
    catalog: &Catalog,
    opts: &EvalOptions,
) -> Result<Relation> {
    let default_detail = catalog.get(&expr.detail_name)?;

    let mut current: Relation = match &expr.base {
        BaseSpec::DistinctProject { cols } => default_detail.distinct_project(cols)?,
        BaseSpec::Relation(r) => r.clone(),
    };

    for (k, op) in expr.ops.iter().enumerate() {
        let detail = catalog.get(expr.detail_for_op(k))?;
        let (next, _) = eval_gmdj_full(&current, &*detail, detail.schema(), op, opts)?;
        current = next;
    }

    // Sanity: the result has exactly as many tuples as the base-values
    // relation (a defining property of the GMDJ, paper §2.2).
    let expected = current.len();
    if expr.ops.is_empty() && expected == 0 {
        return Err(SkallaError::exec("empty GMDJ expression"));
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::op::{GmdjBlock, GmdjOp};
    use skalla_expr::Expr;
    use skalla_storage::Table;
    use skalla_types::{DataType, Schema, Value};

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        let flow = Table::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(1), Value::Int(10), Value::Int(300)],
                vec![Value::Int(2), Value::Int(20), Value::Int(50)],
                vec![Value::Int(1), Value::Int(20), Value::Int(75)],
            ],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("flow", flow);
        c
    }

    /// Paper Example 1: total flows and flows with NB ≥ average, per
    /// (SAS, DAS).
    fn example1() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::sum(Expr::detail(2), "sum1").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1)))
                .and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2)))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn example1_end_to_end() {
        let out = eval_expr_centralized(&example1(), &catalog())
            .unwrap()
            .sorted();
        assert_eq!(
            out.schema().names(),
            vec!["sas", "das", "cnt1", "sum1", "cnt2"]
        );
        assert_eq!(
            out.row(0),
            &vec![
                Value::Int(1),
                Value::Int(10),
                Value::Int(2),
                Value::Int(400),
                Value::Int(1)
            ]
        );
        assert_eq!(
            out.row(1),
            &vec![
                Value::Int(1),
                Value::Int(20),
                Value::Int(1),
                Value::Int(75),
                Value::Int(1)
            ]
        );
        assert_eq!(
            out.row(2),
            &vec![
                Value::Int(2),
                Value::Int(20),
                Value::Int(1),
                Value::Int(50),
                Value::Int(1)
            ]
        );
    }

    #[test]
    fn result_has_one_row_per_base_tuple() {
        let c = catalog();
        let e = example1();
        let base_size = c
            .get("flow")
            .unwrap()
            .distinct_project(&[0, 1])
            .unwrap()
            .len();
        let out = eval_expr_centralized(&e, &c).unwrap();
        assert_eq!(out.len(), base_size);
    }

    #[test]
    fn explicit_base_relation_is_respected() {
        let c = catalog();
        let base_schema = Schema::from_pairs([("sas", DataType::Int64)])
            .unwrap()
            .into_arc();
        let base =
            Relation::new(base_schema, vec![vec![Value::Int(1)], vec![Value::Int(42)]]).unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let e = GmdjExpr::new(BaseSpec::Relation(base), "flow", vec![op], vec![0]).unwrap();
        let out = eval_expr_centralized(&e, &c).unwrap().sorted();
        assert_eq!(out.row(0), &vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(out.row(1), &vec![Value::Int(42), Value::Int(0)]);
    }

    #[test]
    fn missing_table_is_reported() {
        let e = example1();
        let empty = Catalog::new();
        assert!(eval_expr_centralized(&e, &empty).is_err());
    }
}
