//! The GMDJ operator and chained GMDJ expressions.

use std::fmt;
use std::sync::Arc;

use skalla_expr::Expr;
use skalla_types::{DataType, Field, Relation, Result, Schema, SkallaError};

use crate::agg::AggSpec;

/// Name of the piggybacked `COUNT(*) WHERE θ₁ ∨ … ∨ θₘ` column used for
/// distribution-independent group reduction (paper Proposition 1): a site
/// ships only base tuples whose match count is positive.
pub const MATCH_COUNT_COL: &str = "__rng_count";

/// One `(lᵢ, θᵢ)` pair of a GMDJ: a list of aggregates all guarded by the
/// same condition.
#[derive(Debug, Clone, PartialEq)]
pub struct GmdjBlock {
    /// The aggregates `lᵢ = (fᵢ₁, …, fᵢₙ)`.
    pub aggs: Vec<AggSpec>,
    /// The condition `θᵢ(b, r)`.
    pub theta: Expr,
}

impl GmdjBlock {
    /// Construct a block.
    pub fn new(aggs: Vec<AggSpec>, theta: Expr) -> GmdjBlock {
        GmdjBlock { aggs, theta }
    }
}

/// One `MD(B, R, (l₁, …, lₘ), (θ₁, …, θₘ))` application (paper
/// Definition 1). The base `B` and detail `R` are supplied at evaluation
/// time; the operator is the list of blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct GmdjOp {
    /// The blocks `(lᵢ, θᵢ)`.
    pub blocks: Vec<GmdjBlock>,
    /// Detail-table override for this operator. `None` uses the expression's
    /// default detail relation (the common case; the paper notes the detail
    /// relation *may* change between rounds).
    pub detail_name: Option<String>,
}

impl GmdjOp {
    /// An operator with the expression's default detail relation.
    pub fn new(blocks: Vec<GmdjBlock>) -> GmdjOp {
        GmdjOp {
            blocks,
            detail_name: None,
        }
    }

    /// An operator reading a specific detail table.
    pub fn with_detail(blocks: Vec<GmdjBlock>, detail: impl Into<String>) -> GmdjOp {
        GmdjOp {
            blocks,
            detail_name: Some(detail.into()),
        }
    }

    /// All conditions `θ₁, …, θₘ`.
    pub fn thetas(&self) -> Vec<&Expr> {
        self.blocks.iter().map(|b| &b.theta).collect()
    }

    /// All aggregate specs, in block order.
    pub fn all_aggs(&self) -> impl Iterator<Item = &AggSpec> {
        self.blocks.iter().flat_map(|b| b.aggs.iter())
    }

    /// Total number of aggregates.
    pub fn num_aggs(&self) -> usize {
        self.blocks.iter().map(|b| b.aggs.len()).sum()
    }

    /// The finalized output fields appended to the base schema by this
    /// operator.
    pub fn output_fields(&self, detail: &Schema) -> Result<Vec<Field>> {
        self.all_aggs().map(|a| a.output_field(detail)).collect()
    }

    /// The sub-aggregate state fields shipped during distributed rounds.
    pub fn state_fields(&self, detail: &Schema) -> Result<Vec<Field>> {
        let mut out = Vec::new();
        for a in self.all_aggs() {
            out.extend(a.state_fields(detail)?);
        }
        Ok(out)
    }

    /// Total state width (columns) across all aggregates.
    pub fn state_width(&self) -> usize {
        self.all_aggs().map(|a| a.state_width()).sum()
    }
}

impl fmt::Display for GmdjOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MD[")?;
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            for (j, a) in b.aggs.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, " WHERE {}", b.theta)?;
        }
        write!(f, "]")
    }
}

/// How the initial base-values relation `B₀` is obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseSpec {
    /// `B₀ = π_cols(R)` (distinct projection of the detail relation) — the
    /// shape of the paper's Example 1 and the precondition of
    /// Proposition 2's base-synchronization elimination.
    DistinctProject {
        /// Column indices of the detail relation to project.
        cols: Vec<usize>,
    },
    /// An explicit base-values relation supplied by the client (e.g. a
    /// dimension table held at the coordinator).
    Relation(Relation),
}

/// A chained GMDJ expression
/// `MDₙ(⋯ MD₁(B₀, R, l̄₁, θ̄₁) ⋯, R, l̄ₙ, θ̄ₙ)` over a named detail
/// relation, with declared key attributes `K ⊆ B₀`.
#[derive(Debug, Clone, PartialEq)]
pub struct GmdjExpr {
    /// How to compute `B₀`.
    pub base: BaseSpec,
    /// Default detail relation name (each site binds it to its local
    /// partition).
    pub detail_name: String,
    /// The chained operators `MD₁, …, MDₙ` (at least one).
    pub ops: Vec<GmdjOp>,
    /// Key column indices of `B₀` (uniquely determining a base tuple; used
    /// for synchronization, paper Theorem 1).
    pub key: Vec<usize>,
}

impl GmdjExpr {
    /// Construct and sanity-check an expression.
    pub fn new(
        base: BaseSpec,
        detail_name: impl Into<String>,
        ops: Vec<GmdjOp>,
        key: Vec<usize>,
    ) -> Result<GmdjExpr> {
        if ops.is_empty() {
            return Err(SkallaError::plan(
                "GMDJ expression needs at least one operator",
            ));
        }
        let base_width = match &base {
            BaseSpec::DistinctProject { cols } => cols.len(),
            BaseSpec::Relation(r) => r.schema().len(),
        };
        if key.iter().any(|&k| k >= base_width) {
            return Err(SkallaError::plan("key column out of base-relation range"));
        }
        Ok(GmdjExpr {
            base,
            detail_name: detail_name.into(),
            ops,
            key,
        })
    }

    /// Schema of `B₀` given the detail schema.
    pub fn base_schema(&self, detail: &Schema) -> Result<Schema> {
        match &self.base {
            BaseSpec::DistinctProject { cols } => detail.project(cols),
            BaseSpec::Relation(r) => Ok((**r.schema()).clone()),
        }
    }

    /// Schema of `B_k` — the base relation after applying the first `k`
    /// operators (finalized outputs appended). `k = 0` gives `B₀`.
    pub fn base_schema_after(&self, detail: &Schema, k: usize) -> Result<Schema> {
        let mut schema = self.base_schema(detail)?;
        for op in &self.ops[..k] {
            schema = schema.extended(&op.output_fields(detail)?)?;
        }
        Ok(schema)
    }

    /// Schema of the final result.
    pub fn output_schema(&self, detail: &Schema) -> Result<Schema> {
        self.base_schema_after(detail, self.ops.len())
    }

    /// Validate the whole expression against a detail schema: every θ and
    /// aggregate argument must typecheck against the base schema at its
    /// round.
    pub fn validate(&self, detail: &Schema) -> Result<()> {
        for (k, op) in self.ops.iter().enumerate() {
            let base_k = self.base_schema_after(detail, k)?;
            for block in &op.blocks {
                let t = skalla_expr::typecheck::infer_type(&block.theta, &base_k, detail)?;
                if t != DataType::Bool {
                    return Err(SkallaError::type_error(format!(
                        "condition `{}` has type {t}, expected BOOL",
                        block.theta
                    )));
                }
                for a in &block.aggs {
                    a.output_type(detail)?;
                }
            }
        }
        // Output names must be unique overall.
        let out = self.output_schema(detail)?;
        let _ = out;
        Ok(())
    }

    /// Number of GMDJ operators (`m` in the paper; evaluation uses `m + 1`
    /// rounds without optimizations).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The detail table name used by operator `k`.
    pub fn detail_for_op(&self, k: usize) -> &str {
        self.ops[k]
            .detail_name
            .as_deref()
            .unwrap_or(&self.detail_name)
    }

    /// Convenience: the `Arc`'d output schema.
    pub fn output_schema_arc(&self, detail: &Schema) -> Result<Arc<Schema>> {
        Ok(Arc::new(self.output_schema(detail)?))
    }
}

impl fmt::Display for GmdjExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.base {
            BaseSpec::DistinctProject { cols } => {
                write!(f, "B0 = distinct π{cols:?}({})", self.detail_name)?
            }
            BaseSpec::Relation(r) => write!(f, "B0 = <relation, {} rows>", r.len())?,
        }
        for (i, op) in self.ops.iter().enumerate() {
            write!(f, " |> MD{}{}", i + 1, op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use skalla_types::DataType;

    fn detail() -> Schema {
        Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
    }

    /// The paper's Example 1 expression.
    fn example1() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::sum(Expr::detail(2), "sum1").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        // θ₂ references sum1/cnt1 (base cols 2, 3 after MD₁).
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1)))
                .and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2)))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn schema_evolution_example1() {
        let e = example1();
        let d = detail();
        assert_eq!(e.base_schema(&d).unwrap().names(), vec!["sas", "das"]);
        assert_eq!(
            e.base_schema_after(&d, 1).unwrap().names(),
            vec!["sas", "das", "cnt1", "sum1"]
        );
        assert_eq!(
            e.output_schema(&d).unwrap().names(),
            vec!["sas", "das", "cnt1", "sum1", "cnt2"]
        );
        e.validate(&d).unwrap();
        assert_eq!(e.num_ops(), 2);
    }

    #[test]
    fn validation_catches_type_errors() {
        let d = detail();
        // θ references sum1 before it exists (base col 2 in round 1 of a
        // 2-column base).
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(2).gt(Expr::lit(0)),
        )]);
        let e = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1],
            vec![0],
        )
        .unwrap();
        assert!(e.validate(&d).is_err());

        // Non-boolean θ.
        let md = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::detail(2).add(Expr::lit(1)),
        )]);
        let e = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "flow",
            vec![md],
            vec![0],
        )
        .unwrap();
        assert!(e.validate(&d).is_err());
    }

    #[test]
    fn construction_guards() {
        assert!(GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "flow",
            vec![],
            vec![0]
        )
        .is_err());
        assert!(GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "flow",
            vec![GmdjOp::new(vec![])],
            vec![5]
        )
        .is_err());
    }

    #[test]
    fn op_accessors() {
        let e = example1();
        let d = detail();
        let op = &e.ops[0];
        assert_eq!(op.num_aggs(), 2);
        assert_eq!(op.state_width(), 2); // count + sum, both width 1
        assert_eq!(op.thetas().len(), 1);
        assert_eq!(op.output_fields(&d).unwrap().len(), 2);
        assert_eq!(op.state_fields(&d).unwrap().len(), 2);
        assert_eq!(e.detail_for_op(0), "flow");

        let avg_op = GmdjOp::with_detail(
            vec![GmdjBlock::new(
                vec![AggSpec::new(AggFunc::Avg, Expr::detail(2), "a").unwrap()],
                Expr::lit(true),
            )],
            "other",
        );
        assert_eq!(avg_op.state_width(), 2);
        let e2 = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "flow",
            vec![avg_op],
            vec![0],
        )
        .unwrap();
        assert_eq!(e2.detail_for_op(0), "other");
    }

    #[test]
    fn explicit_base_relation() {
        let rel_schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rel = Relation::empty(rel_schema);
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let e = GmdjExpr::new(BaseSpec::Relation(rel), "flow", vec![op], vec![0]).unwrap();
        let d = detail();
        assert_eq!(e.base_schema(&d).unwrap().names(), vec!["k"]);
        e.validate(&d).unwrap();
    }

    #[test]
    fn display_mentions_structure() {
        let e = example1();
        let s = e.to_string();
        assert!(s.contains("B0 = distinct"));
        assert!(s.contains("MD1"));
        assert!(s.contains("MD2"));
        assert!(s.contains("COUNT(*) AS cnt1"));
    }
}
