//! Typed per-group aggregate state for the coordinator's merge path.
//!
//! [`crate::agg::AggSpec::merge`] (the Theorem 1 super-aggregate) operates
//! on boxed [`Value`] slices — fine for the reference path, but on the
//! coordinator's synchronization hot loop it pays an enum match, a clone,
//! and an allocation per state column per row. [`AggSlot`] is the columnar
//! sibling of the site-side accumulators in `compiled`: one typed column
//! (plus a null mask where the identity is `NULL`) per state column, with
//! groups addressed by dense index.
//!
//! Every operation is **bit-for-bit equivalent** to the `AggSpec`
//! reference semantics, including the deliberate quirks the differential
//! tests pin down:
//!
//! * `COUNT` merges with an unchecked add (like `AggSpec::merge`), while
//!   `SUM`/`AVG` integer sums use `checked_add` and fail with the same
//!   "SUM overflow" error;
//! * float sums preserve `-0.0` (the first non-null incoming state is
//!   *copied*, not added to `0.0`) and accumulate in arrival order;
//! * `MIN`/`MAX` replace only on *strict* comparison under the same total
//!   order as [`Value`]'s `Ord` (`total_cmp_f64` for floats);
//! * `AVG` adds the incoming count even when the incoming sum is `NULL`
//!   (mirroring `AggSpec::merge`), and finalizes to `NULL` when the count
//!   is zero or the sum is `NULL`.
//!
//! Aggregates whose declared state type is neither `Int64` nor `Float64`
//! (e.g. `MIN` over strings) fall back to a plain `Value` column with the
//! reference comparison — still allocation-free on the lookup path.

use skalla_expr::{gather_f64_rows, gather_i64_rows, Lanes};
use skalla_types::{total_cmp_f64, DataType, Result, SkallaError, Value};

use crate::agg::{AggFunc, AggSpec};

/// Reusable typed lanes for [`AggSlot::merge_rows`] and the streaming
/// [`AggSlot::gather_into`] / [`AggSlot::merge_gathered`] pair: one
/// scratch set per slot per merge worker, cleared and refilled per batch
/// so the hot loop never allocates.
#[derive(Debug, Default)]
pub struct MergeScratch {
    /// Float state column lanes.
    f: Lanes<f64>,
    /// Integer state column lanes.
    i: Lanes<i64>,
    /// Second integer column for two-column states (`AVG` counts).
    i2: Lanes<i64>,
    /// Untyped fallback column ([`AggSlot::MinMaxV`]).
    v: Vec<Value>,
}

impl MergeScratch {
    /// Empty every lane; call once per batch before a
    /// [`AggSlot::gather_into`] loop.
    pub fn clear(&mut self) {
        self.f.vals.clear();
        self.f.nulls.clear();
        self.f.errs.clear();
        self.i.vals.clear();
        self.i.nulls.clear();
        self.i.errs.clear();
        self.i2.vals.clear();
        self.i2.nulls.clear();
        self.i2.errs.clear();
        self.v.clear();
    }
}

/// Append one value to a float lane set, mirroring
/// `skalla_expr::gather_f64_rows` exactly (matching variant → value,
/// `NULL` → null mask, anything else → error mask).
#[inline]
fn push_f64(l: &mut Lanes<f64>, v: &Value) {
    match v {
        Value::Float(x) => {
            l.vals.push(*x);
            l.nulls.push(false);
            l.errs.push(false);
        }
        Value::Null => {
            l.vals.push(0.0);
            l.nulls.push(true);
            l.errs.push(false);
        }
        _ => {
            l.vals.push(0.0);
            l.nulls.push(false);
            l.errs.push(true);
        }
    }
}

/// Append one value to an integer lane set, mirroring
/// `skalla_expr::gather_i64_rows` exactly.
#[inline]
fn push_i64(l: &mut Lanes<i64>, v: &Value) {
    match v {
        Value::Int(x) => {
            l.vals.push(*x);
            l.nulls.push(false);
            l.errs.push(false);
        }
        Value::Null => {
            l.vals.push(0);
            l.nulls.push(true);
            l.errs.push(false);
        }
        _ => {
            l.vals.push(0);
            l.nulls.push(false);
            l.errs.push(true);
        }
    }
}

/// Typed per-group state for one aggregate; groups are dense indices
/// assigned by the caller (`push_identity` appends group `len()`).
#[derive(Debug, Clone)]
pub enum AggSlot {
    /// `COUNT(*)` / `COUNT(e)`: a never-null `i64` per group.
    Count {
        /// Per-group row/value count.
        counts: Vec<i64>,
    },
    /// `SUM` over an `Int64` state column.
    SumI {
        /// Per-group sum (valid only where `!null`).
        vals: Vec<i64>,
        /// `true` while the group is still at the `NULL` identity.
        null: Vec<bool>,
    },
    /// `SUM` over a `Float64` state column. Stored as raw bits via `f64`,
    /// so `-0.0` and NaN payloads survive exactly.
    SumF {
        /// Per-group sum (valid only where `!null`).
        vals: Vec<f64>,
        /// `true` while the group is still at the `NULL` identity.
        null: Vec<bool>,
    },
    /// `AVG` with an `Int64` sum component.
    AvgI {
        /// Per-group sum component (valid only where `!snull`).
        sums: Vec<i64>,
        /// `true` while the sum component is `NULL`.
        snull: Vec<bool>,
        /// Per-group count component (never null).
        counts: Vec<i64>,
    },
    /// `AVG` with a `Float64` sum component.
    AvgF {
        /// Per-group sum component (valid only where `!snull`).
        sums: Vec<f64>,
        /// `true` while the sum component is `NULL`.
        snull: Vec<bool>,
        /// Per-group count component (never null).
        counts: Vec<i64>,
    },
    /// `MIN`/`MAX` over an `Int64` state column.
    MinMaxI {
        /// Per-group extreme (valid only where `!null`).
        vals: Vec<i64>,
        /// `true` while the group is still at the `NULL` identity.
        null: Vec<bool>,
        /// `true` for `MIN`, `false` for `MAX`.
        is_min: bool,
    },
    /// `MIN`/`MAX` over a `Float64` state column (compared with
    /// [`total_cmp_f64`], exactly like `Value`'s `Ord`).
    MinMaxF {
        /// Per-group extreme (valid only where `!null`).
        vals: Vec<f64>,
        /// `true` while the group is still at the `NULL` identity.
        null: Vec<bool>,
        /// `true` for `MIN`, `false` for `MAX`.
        is_min: bool,
    },
    /// `MIN`/`MAX` over any other state type (strings, booleans): a plain
    /// `Value` column compared with the reference `Ord`.
    MinMaxV {
        /// Per-group extreme (`Value::Null` is the identity).
        vals: Vec<Value>,
        /// `true` for `MIN`, `false` for `MAX`.
        is_min: bool,
    },
}

impl AggSlot {
    /// Build the slot for `spec`, given the aggregate's *declared* state
    /// types (`spec.state_fields(detail)` dtypes — 1 entry, or 2 for
    /// `AVG`). `SUM`/`AVG` require a numeric sum type (guaranteed by plan
    /// validation); anything else is rejected here rather than silently
    /// mis-merged.
    pub fn for_spec(spec: &AggSpec, state_types: &[DataType]) -> Result<AggSlot> {
        if state_types.len() != spec.state_width() {
            return Err(SkallaError::exec(format!(
                "aggregate {spec} declares {} state columns, got {}",
                spec.state_width(),
                state_types.len()
            )));
        }
        let is_min = spec.func == AggFunc::Min;
        Ok(match (spec.func, state_types[0]) {
            (AggFunc::Count, _) => AggSlot::Count { counts: Vec::new() },
            (AggFunc::Sum, DataType::Int64) => AggSlot::SumI {
                vals: Vec::new(),
                null: Vec::new(),
            },
            (AggFunc::Sum, DataType::Float64) => AggSlot::SumF {
                vals: Vec::new(),
                null: Vec::new(),
            },
            (AggFunc::Avg, DataType::Int64) => AggSlot::AvgI {
                sums: Vec::new(),
                snull: Vec::new(),
                counts: Vec::new(),
            },
            (AggFunc::Avg, DataType::Float64) => AggSlot::AvgF {
                sums: Vec::new(),
                snull: Vec::new(),
                counts: Vec::new(),
            },
            (AggFunc::Min | AggFunc::Max, DataType::Int64) => AggSlot::MinMaxI {
                vals: Vec::new(),
                null: Vec::new(),
                is_min,
            },
            (AggFunc::Min | AggFunc::Max, DataType::Float64) => AggSlot::MinMaxF {
                vals: Vec::new(),
                null: Vec::new(),
                is_min,
            },
            (AggFunc::Min | AggFunc::Max, _) => AggSlot::MinMaxV {
                vals: Vec::new(),
                is_min,
            },
            (AggFunc::Sum | AggFunc::Avg, t) => {
                return Err(SkallaError::type_error(format!(
                    "{} state declared as non-numeric {t}",
                    spec.func
                )))
            }
        })
    }

    /// Number of state columns this slot consumes from a fragment row.
    pub fn state_width(&self) -> usize {
        match self {
            AggSlot::AvgI { .. } | AggSlot::AvgF { .. } => 2,
            _ => 1,
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        match self {
            AggSlot::Count { counts } => counts.len(),
            AggSlot::SumI { vals, .. } | AggSlot::MinMaxI { vals, .. } => vals.len(),
            AggSlot::SumF { vals, .. } | AggSlot::MinMaxF { vals, .. } => vals.len(),
            AggSlot::AvgI { counts, .. } | AggSlot::AvgF { counts, .. } => counts.len(),
            AggSlot::MinMaxV { vals, .. } => vals.len(),
        }
    }

    /// `true` if no groups exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one group at the identity state (`AggSpec::init_state`).
    pub fn push_identity(&mut self) {
        match self {
            AggSlot::Count { counts } => counts.push(0),
            AggSlot::SumI { vals, null } | AggSlot::MinMaxI { vals, null, .. } => {
                vals.push(0);
                null.push(true);
            }
            AggSlot::SumF { vals, null } | AggSlot::MinMaxF { vals, null, .. } => {
                vals.push(0.0);
                null.push(true);
            }
            AggSlot::AvgI {
                sums,
                snull,
                counts,
            } => {
                sums.push(0);
                snull.push(true);
                counts.push(0);
            }
            AggSlot::AvgF {
                sums,
                snull,
                counts,
            } => {
                sums.push(0.0);
                snull.push(true);
                counts.push(0);
            }
            AggSlot::MinMaxV { vals, .. } => vals.push(Value::Null),
        }
    }

    /// Check that an incoming state slice (one fragment row's columns for
    /// this aggregate) is type-compatible, *without* mutating anything —
    /// the all-or-nothing validation pass runs this over a whole fragment
    /// before any merge starts.
    pub fn validate_incoming(&self, incoming: &[Value]) -> Result<()> {
        let want = self.state_width();
        if incoming.len() != want {
            return Err(SkallaError::exec(format!(
                "aggregate state slice has {} columns, expected {want}",
                incoming.len()
            )));
        }
        let bad = |what: &str, v: &Value| {
            Err(SkallaError::type_error(format!(
                "fragment state column: expected {what}, got {v}"
            )))
        };
        match self {
            AggSlot::Count { .. } => match &incoming[0] {
                Value::Int(_) => Ok(()),
                v => bad("Int count", v),
            },
            AggSlot::SumI { .. } | AggSlot::MinMaxI { .. } => match &incoming[0] {
                Value::Null | Value::Int(_) => Ok(()),
                v => bad("Int or NULL", v),
            },
            AggSlot::SumF { .. } | AggSlot::MinMaxF { .. } => match &incoming[0] {
                Value::Null | Value::Float(_) => Ok(()),
                v => bad("Float or NULL", v),
            },
            AggSlot::AvgI { .. } => match (&incoming[0], &incoming[1]) {
                (Value::Null | Value::Int(_), Value::Int(_)) => Ok(()),
                (Value::Null | Value::Int(_), c) => bad("Int count", c),
                (s, _) => bad("Int or NULL sum", s),
            },
            AggSlot::AvgF { .. } => match (&incoming[0], &incoming[1]) {
                (Value::Null | Value::Float(_), Value::Int(_)) => Ok(()),
                (Value::Null | Value::Float(_), c) => bad("Int count", c),
                (s, _) => bad("Float or NULL sum", s),
            },
            // The reference merge accepts (and totally orders) any Value
            // kind, so the fallback column does too.
            AggSlot::MinMaxV { .. } => Ok(()),
        }
    }

    /// Merge one incoming state slice into group `g` (Theorem 1
    /// super-aggregation). The slice must have passed
    /// [`AggSlot::validate_incoming`]; the only residual failure is
    /// integer `SUM` overflow, reported with the reference error.
    pub fn merge_into(&mut self, g: usize, incoming: &[Value]) -> Result<()> {
        match self {
            AggSlot::Count { counts } => {
                // Reference COUNT merge is an unchecked add.
                counts[g] += int_of(&incoming[0]);
            }
            AggSlot::SumI { vals, null } => {
                if let Value::Int(y) = incoming[0] {
                    if null[g] {
                        vals[g] = y;
                        null[g] = false;
                    } else {
                        vals[g] = vals[g]
                            .checked_add(y)
                            .ok_or_else(|| SkallaError::arithmetic("SUM overflow"))?;
                    }
                }
            }
            AggSlot::SumF { vals, null } => {
                if let Value::Float(y) = incoming[0] {
                    if null[g] {
                        vals[g] = y; // copy, preserving -0.0 and NaN bits
                        null[g] = false;
                    } else {
                        vals[g] += y;
                    }
                }
            }
            AggSlot::AvgI {
                sums,
                snull,
                counts,
            } => {
                if let Value::Int(y) = incoming[0] {
                    if snull[g] {
                        sums[g] = y;
                        snull[g] = false;
                    } else {
                        sums[g] = sums[g]
                            .checked_add(y)
                            .ok_or_else(|| SkallaError::arithmetic("SUM overflow"))?;
                    }
                }
                // Reference AVG adds the count even for a NULL sum.
                counts[g] += int_of(&incoming[1]);
            }
            AggSlot::AvgF {
                sums,
                snull,
                counts,
            } => {
                if let Value::Float(y) = incoming[0] {
                    if snull[g] {
                        sums[g] = y;
                        snull[g] = false;
                    } else {
                        sums[g] += y;
                    }
                }
                counts[g] += int_of(&incoming[1]);
            }
            AggSlot::MinMaxI { vals, null, is_min } => {
                if let Value::Int(y) = incoming[0] {
                    if null[g] || (*is_min && y < vals[g]) || (!*is_min && y > vals[g]) {
                        vals[g] = y;
                        null[g] = false;
                    }
                }
            }
            AggSlot::MinMaxF { vals, null, is_min } => {
                if let Value::Float(y) = incoming[0] {
                    let better = || {
                        let ord = total_cmp_f64(y, vals[g]);
                        if *is_min {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        }
                    };
                    if null[g] || better() {
                        vals[g] = y;
                        null[g] = false;
                    }
                }
            }
            AggSlot::MinMaxV { vals, is_min } => {
                let v = &incoming[0];
                if !v.is_null()
                    && (vals[g].is_null()
                        || (*is_min && *v < vals[g])
                        || (!*is_min && *v > vals[g]))
                {
                    vals[g] = v.clone();
                }
            }
        }
        Ok(())
    }

    /// Merge a batch of incoming state rows into their resolved groups,
    /// lane-style: the relevant state columns are first gathered into
    /// typed [`Lanes`] (one pass over the `Value` rows), then accumulated
    /// with tight typed loops — the same shape as the compiled site
    /// kernels in `skalla-expr::compile`.
    ///
    /// `gids[k]` is the group for row `rows[k]`; `off` is this slot's
    /// first state column within each row. Rows must have passed
    /// [`AggSlot::validate_incoming`]. Semantics are bit-for-bit
    /// identical to calling [`AggSlot::merge_into`] once per row in
    /// order, including −0.0/NaN copy behavior and the integer `SUM`
    /// overflow error.
    pub fn merge_rows(
        &mut self,
        gids: &[u32],
        rows: &[&[Value]],
        off: usize,
        scratch: &mut MergeScratch,
    ) -> Result<()> {
        debug_assert_eq!(gids.len(), rows.len());
        match self {
            AggSlot::Count { .. } | AggSlot::SumI { .. } | AggSlot::MinMaxI { .. } => {
                gather_i64_rows(rows, off, &mut scratch.i);
            }
            AggSlot::SumF { .. } | AggSlot::MinMaxF { .. } => {
                gather_f64_rows(rows, off, &mut scratch.f);
            }
            AggSlot::AvgI { .. } => {
                gather_i64_rows(rows, off, &mut scratch.i);
                gather_i64_rows(rows, off + 1, &mut scratch.i2);
            }
            AggSlot::AvgF { .. } => {
                gather_f64_rows(rows, off, &mut scratch.f);
                gather_i64_rows(rows, off + 1, &mut scratch.i);
            }
            AggSlot::MinMaxV { .. } => {
                scratch.v.clear();
                scratch.v.extend(rows.iter().map(|r| r[off].clone()));
            }
        }
        self.merge_gathered(gids, scratch)
    }

    /// Streaming half of the lane path: append `row`'s state columns for
    /// this slot (starting at `off`) to `scratch`'s typed lanes. One call
    /// per row, while the (possibly scattered) row is hot from the group
    /// probe; [`AggSlot::merge_gathered`] then accumulates the whole
    /// batch over contiguous lanes. Callers must
    /// [`MergeScratch::clear`] the scratch before each batch.
    #[inline]
    pub fn gather_into(&self, row: &[Value], off: usize, scratch: &mut MergeScratch) {
        match self {
            AggSlot::Count { .. } | AggSlot::SumI { .. } | AggSlot::MinMaxI { .. } => {
                push_i64(&mut scratch.i, &row[off]);
            }
            AggSlot::SumF { .. } | AggSlot::MinMaxF { .. } => {
                push_f64(&mut scratch.f, &row[off]);
            }
            AggSlot::AvgI { .. } => {
                push_i64(&mut scratch.i, &row[off]);
                push_i64(&mut scratch.i2, &row[off + 1]);
            }
            AggSlot::AvgF { .. } => {
                push_f64(&mut scratch.f, &row[off]);
                push_i64(&mut scratch.i, &row[off + 1]);
            }
            AggSlot::MinMaxV { .. } => scratch.v.push(row[off].clone()),
        }
    }

    /// Accumulate a gathered batch into its resolved groups with tight
    /// typed loops. `gids[k]` is the group for lane `k` of `scratch`
    /// (filled by [`AggSlot::gather_into`] row by row, or by
    /// [`AggSlot::merge_rows`] columnar-style). Semantics are bit-for-bit
    /// identical to calling [`AggSlot::merge_into`] once per row in
    /// order, including −0.0/NaN copy behavior and the integer `SUM`
    /// overflow error.
    pub fn merge_gathered(&mut self, gids: &[u32], scratch: &MergeScratch) -> Result<()> {
        match self {
            AggSlot::Count { counts } => {
                debug_assert_eq!(gids.len(), scratch.i.vals.len());
                for (k, &g) in gids.iter().enumerate() {
                    if !scratch.i.ok(k) {
                        unreachable!("validated as Int");
                    }
                    // Reference COUNT merge is an unchecked add.
                    counts[g as usize] += scratch.i.vals[k];
                }
            }
            AggSlot::SumI { vals, null } => {
                debug_assert_eq!(gids.len(), scratch.i.vals.len());
                for (k, &g) in gids.iter().enumerate() {
                    if scratch.i.ok(k) {
                        let g = g as usize;
                        let y = scratch.i.vals[k];
                        if null[g] {
                            vals[g] = y;
                            null[g] = false;
                        } else {
                            vals[g] = vals[g]
                                .checked_add(y)
                                .ok_or_else(|| SkallaError::arithmetic("SUM overflow"))?;
                        }
                    }
                }
            }
            AggSlot::SumF { vals, null } => {
                debug_assert_eq!(gids.len(), scratch.f.vals.len());
                for (k, &g) in gids.iter().enumerate() {
                    if scratch.f.ok(k) {
                        let g = g as usize;
                        let y = scratch.f.vals[k];
                        if null[g] {
                            vals[g] = y; // copy, preserving -0.0 and NaN bits
                            null[g] = false;
                        } else {
                            vals[g] += y;
                        }
                    }
                }
            }
            AggSlot::AvgI {
                sums,
                snull,
                counts,
            } => {
                debug_assert_eq!(gids.len(), scratch.i.vals.len());
                debug_assert_eq!(gids.len(), scratch.i2.vals.len());
                for (k, &g) in gids.iter().enumerate() {
                    let g = g as usize;
                    if scratch.i.ok(k) {
                        let y = scratch.i.vals[k];
                        if snull[g] {
                            sums[g] = y;
                            snull[g] = false;
                        } else {
                            sums[g] = sums[g]
                                .checked_add(y)
                                .ok_or_else(|| SkallaError::arithmetic("SUM overflow"))?;
                        }
                    }
                    if !scratch.i2.ok(k) {
                        unreachable!("validated as Int");
                    }
                    // Reference AVG adds the count even for a NULL sum.
                    counts[g] += scratch.i2.vals[k];
                }
            }
            AggSlot::AvgF {
                sums,
                snull,
                counts,
            } => {
                debug_assert_eq!(gids.len(), scratch.f.vals.len());
                debug_assert_eq!(gids.len(), scratch.i.vals.len());
                for (k, &g) in gids.iter().enumerate() {
                    let g = g as usize;
                    if scratch.f.ok(k) {
                        let y = scratch.f.vals[k];
                        if snull[g] {
                            sums[g] = y;
                            snull[g] = false;
                        } else {
                            sums[g] += y;
                        }
                    }
                    if !scratch.i.ok(k) {
                        unreachable!("validated as Int");
                    }
                    counts[g] += scratch.i.vals[k];
                }
            }
            AggSlot::MinMaxI { vals, null, is_min } => {
                debug_assert_eq!(gids.len(), scratch.i.vals.len());
                for (k, &g) in gids.iter().enumerate() {
                    if scratch.i.ok(k) {
                        let g = g as usize;
                        let y = scratch.i.vals[k];
                        if null[g] || (*is_min && y < vals[g]) || (!*is_min && y > vals[g]) {
                            vals[g] = y;
                            null[g] = false;
                        }
                    }
                }
            }
            AggSlot::MinMaxF { vals, null, is_min } => {
                debug_assert_eq!(gids.len(), scratch.f.vals.len());
                for (k, &g) in gids.iter().enumerate() {
                    if scratch.f.ok(k) {
                        let g = g as usize;
                        let y = scratch.f.vals[k];
                        let better = || {
                            let ord = total_cmp_f64(y, vals[g]);
                            if *is_min {
                                ord.is_lt()
                            } else {
                                ord.is_gt()
                            }
                        };
                        if null[g] || better() {
                            vals[g] = y;
                            null[g] = false;
                        }
                    }
                }
            }
            AggSlot::MinMaxV { vals, is_min } => {
                debug_assert_eq!(gids.len(), scratch.v.len());
                for (k, &g) in gids.iter().enumerate() {
                    let g = g as usize;
                    let v = &scratch.v[k];
                    if !v.is_null()
                        && (vals[g].is_null()
                            || (*is_min && *v < vals[g])
                            || (!*is_min && *v > vals[g]))
                    {
                        vals[g] = v.clone();
                    }
                }
            }
        }
        Ok(())
    }

    /// Append group `g`'s raw state columns to `out` (the mid-tier ship
    /// format — what `AggSpec::merge` would hold in its `Value` slice).
    pub fn write_state(&self, g: usize, out: &mut Vec<Value>) {
        match self {
            AggSlot::Count { counts } => out.push(Value::Int(counts[g])),
            AggSlot::SumI { vals, null } | AggSlot::MinMaxI { vals, null, .. } => {
                out.push(masked_int(vals[g], null[g]));
            }
            AggSlot::SumF { vals, null } | AggSlot::MinMaxF { vals, null, .. } => {
                out.push(masked_float(vals[g], null[g]));
            }
            AggSlot::AvgI {
                sums,
                snull,
                counts,
            } => {
                out.push(masked_int(sums[g], snull[g]));
                out.push(Value::Int(counts[g]));
            }
            AggSlot::AvgF {
                sums,
                snull,
                counts,
            } => {
                out.push(masked_float(sums[g], snull[g]));
                out.push(Value::Int(counts[g]));
            }
            AggSlot::MinMaxV { vals, .. } => out.push(vals[g].clone()),
        }
    }

    /// Group `g`'s finalized output value (`AggSpec::finalize`). Infallible
    /// on typed columns: the reference failure modes (non-numeric AVG
    /// state) are unrepresentable here.
    pub fn finalize_value(&self, g: usize) -> Value {
        match self {
            AggSlot::Count { counts } => Value::Int(counts[g]),
            AggSlot::SumI { vals, null } | AggSlot::MinMaxI { vals, null, .. } => {
                masked_int(vals[g], null[g])
            }
            AggSlot::SumF { vals, null } | AggSlot::MinMaxF { vals, null, .. } => {
                masked_float(vals[g], null[g])
            }
            AggSlot::AvgI {
                sums,
                snull,
                counts,
            } => {
                if counts[g] == 0 || snull[g] {
                    Value::Null
                } else {
                    Value::Float(sums[g] as f64 / counts[g] as f64)
                }
            }
            AggSlot::AvgF {
                sums,
                snull,
                counts,
            } => {
                if counts[g] == 0 || snull[g] {
                    Value::Null
                } else {
                    Value::Float(sums[g] / counts[g] as f64)
                }
            }
            AggSlot::MinMaxV { vals, .. } => vals[g].clone(),
        }
    }
}

/// Build one slot per spec from the flattened declared state types
/// (`state_types.len()` must equal the summed state widths).
pub fn slots_for_specs(specs: &[AggSpec], state_types: &[DataType]) -> Result<Vec<AggSlot>> {
    let want: usize = specs.iter().map(AggSpec::state_width).sum();
    if state_types.len() != want {
        return Err(SkallaError::exec(format!(
            "{} declared state types for state width {want}",
            state_types.len()
        )));
    }
    let mut out = Vec::with_capacity(specs.len());
    let mut off = 0;
    for spec in specs {
        let w = spec.state_width();
        out.push(AggSlot::for_spec(spec, &state_types[off..off + w])?);
        off += w;
    }
    Ok(out)
}

fn int_of(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        _ => unreachable!("validated as Int"),
    }
}

fn masked_int(v: i64, null: bool) -> Value {
    if null {
        Value::Null
    } else {
        Value::Int(v)
    }
}

fn masked_float(v: f64, null: bool) -> Value {
    if null {
        Value::Null
    } else {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_expr::Expr;

    /// The reference semantics a slot must reproduce bit-for-bit.
    fn reference_merge(spec: &AggSpec, states: &[Vec<Value>]) -> (Vec<Value>, Value) {
        let mut st = spec.init_state();
        for s in states {
            spec.merge(&mut st, s).unwrap();
        }
        let fin = spec.finalize(&st).unwrap();
        (st, fin)
    }

    fn slot_merge(
        spec: &AggSpec,
        types: &[DataType],
        states: &[Vec<Value>],
    ) -> (Vec<Value>, Value) {
        let mut slot = AggSlot::for_spec(spec, types).unwrap();
        slot.push_identity();
        for s in states {
            slot.validate_incoming(s).unwrap();
            slot.merge_into(0, s).unwrap();
        }
        let mut raw = Vec::new();
        slot.write_state(0, &mut raw);
        (raw, slot.finalize_value(0))
    }

    /// Bitwise value equality: `Value`'s PartialEq identifies -0.0 with
    /// 0.0 (and with Int(0)), which is too weak for these tests.
    fn bits_eq(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b && std::mem::discriminant(a) == std::mem::discriminant(b),
        }
    }

    fn assert_matches_reference(spec: &AggSpec, types: &[DataType], states: &[Vec<Value>]) {
        let (ref_state, ref_fin) = reference_merge(spec, states);
        let (slot_state, slot_fin) = slot_merge(spec, types, states);
        assert_eq!(ref_state.len(), slot_state.len(), "{spec}");
        for (a, b) in ref_state.iter().zip(&slot_state) {
            assert!(bits_eq(a, b), "{spec}: state {a:?} != {b:?}");
        }
        assert!(
            bits_eq(&ref_fin, &slot_fin),
            "{spec}: {ref_fin:?} != {slot_fin:?}"
        );
    }

    #[test]
    fn count_matches_reference() {
        let spec = AggSpec::count_star("c");
        assert_matches_reference(
            &spec,
            &[DataType::Int64],
            &[
                vec![Value::Int(3)],
                vec![Value::Int(0)],
                vec![Value::Int(7)],
            ],
        );
    }

    #[test]
    fn int_sum_matches_reference_including_overflow() {
        let spec = AggSpec::sum(Expr::detail(0), "s").unwrap();
        let t = [DataType::Int64];
        assert_matches_reference(
            &spec,
            &t,
            &[
                vec![Value::Null],
                vec![Value::Int(-4)],
                vec![Value::Int(10)],
            ],
        );
        // Empty stays NULL.
        assert_matches_reference(&spec, &t, &[vec![Value::Null], vec![Value::Null]]);
        // Overflow errors identically.
        let mut slot = AggSlot::for_spec(&spec, &t).unwrap();
        slot.push_identity();
        slot.merge_into(0, &[Value::Int(i64::MAX)]).unwrap();
        let err = slot.merge_into(0, &[Value::Int(1)]).unwrap_err();
        assert!(err.to_string().contains("SUM overflow"));
    }

    #[test]
    fn float_sum_preserves_negative_zero_and_order() {
        let spec = AggSpec::sum(Expr::detail(0), "s").unwrap();
        let t = [DataType::Float64];
        // A lone -0.0 must survive as -0.0 (copied, not added to +0.0).
        assert_matches_reference(&spec, &t, &[vec![Value::Float(-0.0)]]);
        assert_matches_reference(
            &spec,
            &t,
            &[
                vec![Value::Float(0.1)],
                vec![Value::Null],
                vec![Value::Float(0.2)],
                vec![Value::Float(0.3)],
            ],
        );
    }

    #[test]
    fn avg_matches_reference_including_null_sum_quirk() {
        let spec = AggSpec::avg(Expr::detail(0), "a").unwrap();
        for t in [
            [DataType::Int64, DataType::Int64],
            [DataType::Float64, DataType::Int64],
        ] {
            let v = |x: i64| match t[0] {
                DataType::Int64 => Value::Int(x),
                _ => Value::Float(x as f64),
            };
            assert_matches_reference(
                &spec,
                &t,
                &[
                    vec![v(10), Value::Int(2)],
                    // NULL sum with a non-zero count: the reference adds the
                    // count anyway.
                    vec![Value::Null, Value::Int(3)],
                    vec![v(5), Value::Int(1)],
                ],
            );
            // All-null: finalizes to NULL.
            assert_matches_reference(&spec, &t, &[vec![Value::Null, Value::Int(0)]]);
        }
    }

    type MkSpec = fn(Expr, &str) -> Result<AggSpec>;

    #[test]
    fn min_max_match_reference_across_types() {
        let cases: [(MkSpec, &str); 2] = [
            (|e, n| AggSpec::min(e, n), "mn"),
            (|e, n| AggSpec::max(e, n), "mx"),
        ];
        for (mk, name) in cases {
            let spec = mk(Expr::detail(0), name).unwrap();
            assert_matches_reference(
                &spec,
                &[DataType::Int64],
                &[vec![Value::Int(3)], vec![Value::Null], vec![Value::Int(-2)]],
            );
            assert_matches_reference(
                &spec,
                &[DataType::Float64],
                &[
                    vec![Value::Float(-0.0)],
                    vec![Value::Float(0.0)],
                    vec![Value::Float(f64::NAN)],
                    vec![Value::Float(-1.5)],
                ],
            );
            assert_matches_reference(
                &spec,
                &[DataType::Utf8],
                &[
                    vec![Value::str("b")],
                    vec![Value::Null],
                    vec![Value::str("a")],
                ],
            );
        }
    }

    #[test]
    fn validation_rejects_mismatched_state() {
        let spec = AggSpec::sum(Expr::detail(0), "s").unwrap();
        let slot = AggSlot::for_spec(&spec, &[DataType::Int64]).unwrap();
        assert!(slot.validate_incoming(&[Value::Int(1)]).is_ok());
        assert!(slot.validate_incoming(&[Value::Null]).is_ok());
        assert!(slot.validate_incoming(&[Value::Float(1.0)]).is_err());
        assert!(slot.validate_incoming(&[Value::str("x")]).is_err());
        assert!(slot.validate_incoming(&[]).is_err());

        let avg = AggSpec::avg(Expr::detail(0), "a").unwrap();
        let slot = AggSlot::for_spec(&avg, &[DataType::Float64, DataType::Int64]).unwrap();
        assert!(slot
            .validate_incoming(&[Value::Float(1.0), Value::Int(1)])
            .is_ok());
        assert!(slot
            .validate_incoming(&[Value::Float(1.0), Value::Null])
            .is_err());
        assert!(slot
            .validate_incoming(&[Value::Int(1), Value::Int(1)])
            .is_err());
    }

    #[test]
    fn for_spec_rejects_bad_declarations() {
        let spec = AggSpec::sum(Expr::detail(0), "s").unwrap();
        assert!(AggSlot::for_spec(&spec, &[DataType::Utf8]).is_err());
        assert!(AggSlot::for_spec(&spec, &[]).is_err());
        let avg = AggSpec::avg(Expr::detail(0), "a").unwrap();
        assert!(AggSlot::for_spec(&avg, &[DataType::Int64]).is_err());
        assert!(slots_for_specs(&[spec], &[DataType::Int64, DataType::Int64]).is_err());
    }

    #[test]
    fn slots_for_specs_splits_flattened_types() {
        let specs = vec![
            AggSpec::count_star("c"),
            AggSpec::avg(Expr::detail(0), "a").unwrap(),
            AggSpec::min(Expr::detail(1), "m").unwrap(),
        ];
        let types = [
            DataType::Int64,   // count
            DataType::Float64, // avg sum
            DataType::Int64,   // avg count
            DataType::Utf8,    // min
        ];
        let slots = slots_for_specs(&specs, &types).unwrap();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots.iter().map(AggSlot::state_width).sum::<usize>(), 4);
        assert!(matches!(slots[1], AggSlot::AvgF { .. }));
        assert!(matches!(slots[2], AggSlot::MinMaxV { .. }));
        assert!(slots[2].is_empty());
    }

    /// `merge_rows` over a multi-group batch must be bit-for-bit the same
    /// as `merge_into` row by row — including −0.0/NaN copies, NULL
    /// skips, and the untyped fallback column.
    #[test]
    fn merge_rows_matches_merge_into() {
        let cases: Vec<(AggSpec, Vec<DataType>, Vec<Vec<Value>>)> = vec![
            (
                AggSpec::count_star("c"),
                vec![DataType::Int64],
                vec![
                    vec![Value::Int(3)],
                    vec![Value::Int(0)],
                    vec![Value::Int(7)],
                ],
            ),
            (
                AggSpec::sum(Expr::detail(0), "s").unwrap(),
                vec![DataType::Int64],
                vec![vec![Value::Int(4)], vec![Value::Null], vec![Value::Int(-9)]],
            ),
            (
                AggSpec::sum(Expr::detail(0), "s").unwrap(),
                vec![DataType::Float64],
                vec![
                    vec![Value::Float(-0.0)],
                    vec![Value::Null],
                    vec![Value::Float(f64::NAN)],
                    vec![Value::Float(1.5)],
                ],
            ),
            (
                AggSpec::avg(Expr::detail(0), "a").unwrap(),
                vec![DataType::Int64, DataType::Int64],
                vec![
                    vec![Value::Null, Value::Int(2)],
                    vec![Value::Int(10), Value::Int(3)],
                ],
            ),
            (
                AggSpec::avg(Expr::detail(0), "a").unwrap(),
                vec![DataType::Float64, DataType::Int64],
                vec![
                    vec![Value::Float(-0.0), Value::Int(1)],
                    vec![Value::Float(2.5), Value::Int(4)],
                ],
            ),
            (
                AggSpec::min(Expr::detail(0), "m").unwrap(),
                vec![DataType::Int64],
                vec![vec![Value::Int(5)], vec![Value::Int(-5)], vec![Value::Null]],
            ),
            (
                AggSpec::max(Expr::detail(0), "m").unwrap(),
                vec![DataType::Float64],
                vec![
                    vec![Value::Float(f64::NAN)],
                    vec![Value::Float(3.0)],
                    vec![Value::Float(-0.0)],
                ],
            ),
            (
                AggSpec::min(Expr::detail(0), "m").unwrap(),
                vec![DataType::Utf8],
                vec![
                    vec![Value::str("pear")],
                    vec![Value::Null],
                    vec![Value::str("apple")],
                ],
            ),
        ];
        for (spec, types, states) in &cases {
            // Two groups; rows alternate between them so gather order and
            // group resolution are both exercised.
            let mut reference = AggSlot::for_spec(spec, types).unwrap();
            reference.push_identity();
            reference.push_identity();
            let mut batched = AggSlot::for_spec(spec, types).unwrap();
            batched.push_identity();
            batched.push_identity();
            let gids: Vec<u32> = (0..states.len() as u32).map(|k| k % 2).collect();
            for (k, s) in states.iter().enumerate() {
                reference.merge_into(gids[k] as usize, s).unwrap();
            }
            let rows: Vec<&[Value]> = states.iter().map(Vec::as_slice).collect();
            let mut scratch = MergeScratch::default();
            batched.merge_rows(&gids, &rows, 0, &mut scratch).unwrap();
            // Streaming form: per-row gather_into, then one merge_gathered.
            let mut streamed = AggSlot::for_spec(spec, types).unwrap();
            streamed.push_identity();
            streamed.push_identity();
            scratch.clear();
            for s in states {
                streamed.gather_into(s, 0, &mut scratch);
            }
            streamed.merge_gathered(&gids, &scratch).unwrap();
            for g in 0..2 {
                let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
                reference.write_state(g, &mut a);
                batched.write_state(g, &mut b);
                streamed.write_state(g, &mut c);
                for (x, y) in a.iter().zip(&b) {
                    assert!(bits_eq(x, y), "{spec} g{g}: {x:?} != {y:?}");
                }
                for (x, y) in a.iter().zip(&c) {
                    assert!(bits_eq(x, y), "{spec} g{g} streamed: {x:?} != {y:?}");
                }
                assert!(bits_eq(
                    &reference.finalize_value(g),
                    &batched.finalize_value(g)
                ));
                assert!(bits_eq(
                    &reference.finalize_value(g),
                    &streamed.finalize_value(g)
                ));
            }
        }
    }

    #[test]
    fn merge_rows_reports_overflow() {
        let spec = AggSpec::sum(Expr::detail(0), "s").unwrap();
        let mut slot = AggSlot::for_spec(&spec, &[DataType::Int64]).unwrap();
        slot.push_identity();
        let states = [vec![Value::Int(i64::MAX)], vec![Value::Int(1)]];
        let rows: Vec<&[Value]> = states.iter().map(Vec::as_slice).collect();
        let mut scratch = MergeScratch::default();
        let err = slot
            .merge_rows(&[0, 0], &rows, 0, &mut scratch)
            .unwrap_err();
        assert!(err.to_string().contains("SUM overflow"));
    }
}
