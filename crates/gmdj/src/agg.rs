//! Aggregate functions with sub-/super-aggregate decomposition.
//!
//! Theorem 1 of the paper decomposes each aggregate `f` into a
//! *sub-aggregate* `f'` computed at the sites and a *super-aggregate* `f''`
//! computed at the coordinator (e.g. for `COUNT`, the coordinator sums the
//! per-site counts). We model this with per-aggregate **state**:
//!
//! * a site accumulates state with [`AggSpec::accumulate`] and ships the raw
//!   state columns (the sub-aggregate values),
//! * the coordinator merges incoming state with [`AggSpec::merge`] (the
//!   super-aggregate), and
//! * the final value is produced by [`AggSpec::finalize`].
//!
//! `COUNT`, `SUM`, `MIN`, `MAX` have one state column; `AVG` is *algebraic*
//! (Gray et al.'s classification) with `(sum, count)` state.
//!
//! Null semantics follow SQL: `COUNT(*)` counts rows, `COUNT(e)` counts
//! non-null values, `SUM`/`MIN`/`MAX`/`AVG` skip nulls and yield `NULL` over
//! an empty (or all-null) multiset.

use std::fmt;

use skalla_expr::{typecheck::infer_type, Expr};
use skalla_types::{DataType, Field, Result, Schema, SkallaError, Value};

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` (no argument) or `COUNT(e)` (non-null count).
    Count,
    /// `SUM(e)`.
    Sum,
    /// `AVG(e)` — algebraic, decomposed into `(SUM, COUNT)`.
    Avg,
    /// `MIN(e)`.
    Min,
    /// `MAX(e)`.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// One aggregate in a GMDJ block: function, optional (detail-only) argument
/// expression, and output column name.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression over the detail tuple; `None` only for
    /// `COUNT(*)`.
    pub arg: Option<Expr>,
    /// Output column name (must be unique within the query).
    pub name: String,
}

impl AggSpec {
    /// `COUNT(*) AS name`.
    pub fn count_star(name: impl Into<String>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            arg: None,
            name: name.into(),
        }
    }

    /// `func(arg) AS name`; `arg` must reference only detail columns.
    pub fn new(func: AggFunc, arg: Expr, name: impl Into<String>) -> Result<AggSpec> {
        if !arg.is_detail_only() {
            return Err(SkallaError::plan(format!(
                "aggregate argument `{arg}` must reference only the detail relation"
            )));
        }
        Ok(AggSpec {
            func,
            arg: Some(arg),
            name: name.into(),
        })
    }

    /// `SUM(arg) AS name`.
    pub fn sum(arg: Expr, name: impl Into<String>) -> Result<AggSpec> {
        AggSpec::new(AggFunc::Sum, arg, name)
    }

    /// `AVG(arg) AS name`.
    pub fn avg(arg: Expr, name: impl Into<String>) -> Result<AggSpec> {
        AggSpec::new(AggFunc::Avg, arg, name)
    }

    /// `MIN(arg) AS name`.
    pub fn min(arg: Expr, name: impl Into<String>) -> Result<AggSpec> {
        AggSpec::new(AggFunc::Min, arg, name)
    }

    /// `MAX(arg) AS name`.
    pub fn max(arg: Expr, name: impl Into<String>) -> Result<AggSpec> {
        AggSpec::new(AggFunc::Max, arg, name)
    }

    /// The type of the argument expression against `detail`, if any.
    fn arg_type(&self, detail: &Schema) -> Result<Option<DataType>> {
        match &self.arg {
            None => Ok(None),
            Some(e) => infer_type(e, &Schema::empty(), detail).map(Some),
        }
    }

    /// The finalized output type.
    pub fn output_type(&self, detail: &Schema) -> Result<DataType> {
        let at = self.arg_type(detail)?;
        match self.func {
            AggFunc::Count => Ok(DataType::Int64),
            AggFunc::Avg => {
                let t = at.ok_or_else(|| SkallaError::plan("AVG requires an argument"))?;
                if !t.is_numeric() {
                    return Err(SkallaError::type_error(format!("AVG over non-numeric {t}")));
                }
                Ok(DataType::Float64)
            }
            AggFunc::Sum => {
                let t = at.ok_or_else(|| SkallaError::plan("SUM requires an argument"))?;
                if !t.is_numeric() {
                    return Err(SkallaError::type_error(format!("SUM over non-numeric {t}")));
                }
                Ok(t)
            }
            AggFunc::Min | AggFunc::Max => {
                at.ok_or_else(|| SkallaError::plan(format!("{} requires an argument", self.func)))
            }
        }
    }

    /// The output field `name: output_type`.
    pub fn output_field(&self, detail: &Schema) -> Result<Field> {
        Ok(Field::new(self.name.clone(), self.output_type(detail)?))
    }

    /// The sub-aggregate *state* fields shipped between sites and
    /// coordinator: one field for distributive aggregates, `(sum, count)`
    /// for `AVG`.
    pub fn state_fields(&self, detail: &Schema) -> Result<Vec<Field>> {
        match self.func {
            AggFunc::Avg => {
                let t = self
                    .arg_type(detail)?
                    .ok_or_else(|| SkallaError::plan("AVG requires an argument"))?;
                if !t.is_numeric() {
                    return Err(SkallaError::type_error(format!("AVG over non-numeric {t}")));
                }
                Ok(vec![
                    Field::new(format!("{}__sum", self.name), t),
                    Field::new(format!("{}__count", self.name), DataType::Int64),
                ])
            }
            _ => Ok(vec![Field::new(
                self.name.clone(),
                self.output_type(detail)?,
            )]),
        }
    }

    /// Number of state columns (1, or 2 for `AVG`).
    pub fn state_width(&self) -> usize {
        match self.func {
            AggFunc::Avg => 2,
            _ => 1,
        }
    }

    /// The identity state (value over the empty multiset).
    pub fn init_state(&self) -> Vec<Value> {
        match self.func {
            AggFunc::Count => vec![Value::Int(0)],
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => vec![Value::Null],
            AggFunc::Avg => vec![Value::Null, Value::Int(0)],
        }
    }

    /// Fold one matched detail value into the state. `v` is the evaluated
    /// argument (ignored for `COUNT(*)`, where any value may be passed).
    pub fn accumulate(&self, state: &mut [Value], v: &Value) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                if self.arg.is_none() || !v.is_null() {
                    state[0] = Value::Int(state[0].as_int()? + 1);
                }
            }
            AggFunc::Sum => {
                if !v.is_null() {
                    state[0] = add_values(&state[0], v)?;
                }
            }
            AggFunc::Min => {
                if !v.is_null() && (state[0].is_null() || *v < state[0]) {
                    state[0] = v.clone();
                }
            }
            AggFunc::Max => {
                if !v.is_null() && (state[0].is_null() || *v > state[0]) {
                    state[0] = v.clone();
                }
            }
            AggFunc::Avg => {
                if !v.is_null() {
                    state[0] = add_values(&state[0], v)?;
                    state[1] = Value::Int(state[1].as_int()? + 1);
                }
            }
        }
        Ok(())
    }

    /// Check that `incoming` is a state [`AggSpec::merge`] accepts, without
    /// mutating anything. The coordinator validates every row of a fragment
    /// with this before merging any of them, making fragment synchronization
    /// all-or-nothing (arithmetic overflow during the merge itself is the
    /// one residual failure this cannot rule out).
    pub fn validate_incoming(&self, incoming: &[Value]) -> Result<()> {
        if incoming.len() != self.state_width() {
            return Err(SkallaError::exec(format!(
                "aggregate `{}` state has {} columns, expected {}",
                self.name,
                incoming.len(),
                self.state_width()
            )));
        }
        let numeric = |v: &Value| -> Result<()> {
            if !v.is_null() {
                v.as_f64()?;
            }
            Ok(())
        };
        match self.func {
            AggFunc::Count => {
                incoming[0].as_int()?;
            }
            AggFunc::Sum => numeric(&incoming[0])?,
            AggFunc::Min | AggFunc::Max => {}
            AggFunc::Avg => {
                numeric(&incoming[0])?;
                incoming[1].as_int()?;
            }
        }
        Ok(())
    }

    /// Merge another state (the super-aggregate of Theorem 1): `COUNT`s and
    /// `SUM`s add, `MIN`/`MAX` compare, `AVG` adds component-wise.
    pub fn merge(&self, state: &mut [Value], incoming: &[Value]) -> Result<()> {
        match self.func {
            AggFunc::Count => {
                state[0] = Value::Int(state[0].as_int()? + incoming[0].as_int()?);
            }
            AggFunc::Sum => {
                if !incoming[0].is_null() {
                    state[0] = add_values(&state[0], &incoming[0])?;
                }
            }
            AggFunc::Min => {
                if !incoming[0].is_null() && (state[0].is_null() || incoming[0] < state[0]) {
                    state[0] = incoming[0].clone();
                }
            }
            AggFunc::Max => {
                if !incoming[0].is_null() && (state[0].is_null() || incoming[0] > state[0]) {
                    state[0] = incoming[0].clone();
                }
            }
            AggFunc::Avg => {
                if !incoming[0].is_null() {
                    state[0] = add_values(&state[0], &incoming[0])?;
                }
                state[1] = Value::Int(state[1].as_int()? + incoming[1].as_int()?);
            }
        }
        Ok(())
    }

    /// Produce the final output value from state.
    pub fn finalize(&self, state: &[Value]) -> Result<Value> {
        match self.func {
            AggFunc::Count | AggFunc::Sum | AggFunc::Min | AggFunc::Max => Ok(state[0].clone()),
            AggFunc::Avg => {
                let count = state[1].as_int()?;
                if count == 0 || state[0].is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(state[0].as_f64()? / count as f64))
                }
            }
        }
    }
}

/// `a + b` treating `Null` as the additive identity for `a`.
fn add_values(a: &Value, b: &Value) -> Result<Value> {
    if a.is_null() {
        return Ok(b.clone());
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x
            .checked_add(*y)
            .map(Value::Int)
            .ok_or_else(|| SkallaError::arithmetic("SUM overflow")),
        _ => Ok(Value::Float(a.as_f64()? + b.as_f64()?)),
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*) AS {}", self.func, self.name),
            Some(a) => write!(f, "{}({a}) AS {}", self.func, self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detail() -> Schema {
        Schema::from_pairs([("nb", DataType::Int64), ("w", DataType::Float64)]).unwrap()
    }

    fn run(spec: &AggSpec, values: &[Value]) -> Value {
        let mut st = spec.init_state();
        for v in values {
            spec.accumulate(&mut st, v).unwrap();
        }
        spec.finalize(&st).unwrap()
    }

    /// Accumulating everything on one site must agree with accumulating on
    /// two sites and merging (Theorem 1 at the single-aggregate level).
    fn run_split(spec: &AggSpec, values: &[Value], split: usize) -> Value {
        let mut a = spec.init_state();
        for v in &values[..split] {
            spec.accumulate(&mut a, v).unwrap();
        }
        let mut b = spec.init_state();
        for v in &values[split..] {
            spec.accumulate(&mut b, v).unwrap();
        }
        spec.merge(&mut a, &b).unwrap();
        spec.finalize(&a).unwrap()
    }

    #[test]
    fn count_star_counts_rows_including_nulls() {
        let c = AggSpec::count_star("c");
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(&c, &vals), Value::Int(3));
    }

    #[test]
    fn count_expr_skips_nulls() {
        let c = AggSpec::new(AggFunc::Count, Expr::detail(0), "c").unwrap();
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(&c, &vals), Value::Int(2));
    }

    #[test]
    fn sum_skips_nulls_and_empty_is_null() {
        let s = AggSpec::sum(Expr::detail(0), "s").unwrap();
        assert_eq!(run(&s, &[]), Value::Null);
        assert_eq!(
            run(&s, &[Value::Int(1), Value::Null, Value::Int(4)]),
            Value::Int(5)
        );
        assert_eq!(
            run(&s, &[Value::Float(0.5), Value::Int(1)]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn min_max_track_extremes() {
        let mn = AggSpec::min(Expr::detail(0), "mn").unwrap();
        let mx = AggSpec::max(Expr::detail(0), "mx").unwrap();
        let vals = vec![Value::Int(3), Value::Int(-2), Value::Null, Value::Int(9)];
        assert_eq!(run(&mn, &vals), Value::Int(-2));
        assert_eq!(run(&mx, &vals), Value::Int(9));
        assert_eq!(run(&mn, &[Value::Null]), Value::Null);
        // Strings compare lexicographically.
        let mn = AggSpec::min(Expr::detail(0), "mn").unwrap();
        assert_eq!(
            run(&mn, &[Value::str("b"), Value::str("a")]),
            Value::str("a")
        );
    }

    #[test]
    fn avg_is_sum_over_count() {
        let a = AggSpec::avg(Expr::detail(0), "a").unwrap();
        assert_eq!(run(&a, &[]), Value::Null);
        assert_eq!(run(&a, &[Value::Null]), Value::Null);
        assert_eq!(
            run(&a, &[Value::Int(1), Value::Int(2), Value::Null]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn split_merge_equals_single_site_for_all_funcs() {
        let vals = vec![
            Value::Int(5),
            Value::Null,
            Value::Int(-1),
            Value::Int(8),
            Value::Int(2),
        ];
        let specs = vec![
            AggSpec::count_star("c"),
            AggSpec::new(AggFunc::Count, Expr::detail(0), "cn").unwrap(),
            AggSpec::sum(Expr::detail(0), "s").unwrap(),
            AggSpec::avg(Expr::detail(0), "a").unwrap(),
            AggSpec::min(Expr::detail(0), "mn").unwrap(),
            AggSpec::max(Expr::detail(0), "mx").unwrap(),
        ];
        for spec in &specs {
            for split in 0..=vals.len() {
                assert_eq!(
                    run(spec, &vals),
                    run_split(spec, &vals, split),
                    "{spec} split at {split}"
                );
            }
        }
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        let s = AggSpec::sum(Expr::detail(0), "s").unwrap();
        let mut st = s.init_state();
        s.accumulate(&mut st, &Value::Int(7)).unwrap();
        let empty = s.init_state();
        let mut merged = st.clone();
        s.merge(&mut merged, &empty).unwrap();
        assert_eq!(merged, st);
        let mut other = empty.clone();
        s.merge(&mut other, &st).unwrap();
        assert_eq!(other, st);
    }

    #[test]
    fn output_and_state_schemas() {
        let d = detail();
        let c = AggSpec::count_star("c");
        assert_eq!(c.output_type(&d).unwrap(), DataType::Int64);
        assert_eq!(c.state_fields(&d).unwrap().len(), 1);
        assert_eq!(c.state_width(), 1);

        let a = AggSpec::avg(Expr::detail(1), "a").unwrap();
        assert_eq!(a.output_type(&d).unwrap(), DataType::Float64);
        let sf = a.state_fields(&d).unwrap();
        assert_eq!(sf.len(), 2);
        assert_eq!(sf[0].name, "a__sum");
        assert_eq!(sf[0].dtype, DataType::Float64);
        assert_eq!(sf[1].name, "a__count");
        assert_eq!(a.state_width(), 2);

        let s = AggSpec::sum(Expr::detail(0), "s").unwrap();
        assert_eq!(s.output_type(&d).unwrap(), DataType::Int64);
        assert_eq!(s.output_field(&d).unwrap().name, "s");
    }

    #[test]
    fn non_numeric_sum_avg_rejected() {
        let d = Schema::from_pairs([("s", DataType::Utf8)]).unwrap();
        let spec = AggSpec::sum(Expr::detail(0), "x").unwrap();
        assert!(spec.output_type(&d).is_err());
        let spec = AggSpec::avg(Expr::detail(0), "x").unwrap();
        assert!(spec.output_type(&d).is_err());
        assert!(spec.state_fields(&d).is_err());
        // MIN over strings is fine.
        let spec = AggSpec::min(Expr::detail(0), "x").unwrap();
        assert_eq!(spec.output_type(&d).unwrap(), DataType::Utf8);
    }

    #[test]
    fn base_referencing_argument_rejected() {
        assert!(AggSpec::sum(Expr::base(0), "x").is_err());
        assert!(AggSpec::new(AggFunc::Min, Expr::base(0).add(Expr::detail(0)), "x").is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(AggSpec::count_star("c").to_string(), "COUNT(*) AS c");
        assert_eq!(
            AggSpec::sum(Expr::detail(2), "s").unwrap().to_string(),
            "SUM(r.2) AS s"
        );
    }

    #[test]
    fn sum_overflow_detected() {
        let s = AggSpec::sum(Expr::detail(0), "s").unwrap();
        let mut st = s.init_state();
        s.accumulate(&mut st, &Value::Int(i64::MAX)).unwrap();
        assert!(s.accumulate(&mut st, &Value::Int(1)).is_err());
    }
}
