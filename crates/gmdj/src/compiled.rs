//! Compiled batch accumulation for GMDJ blocks.
//!
//! When the detail source is (a contiguous window of) a columnar
//! [`Table`], a block whose condition and aggregate arguments fall inside
//! the compiled subset of [`skalla_expr::compile`] is evaluated batch-at-a
//! time: aggregate arguments are lowered to [`CompiledScalar`] programs
//! evaluated once per batch (they are detail-only, so the lanes are shared
//! across every base tuple), the condition either drives the existing hash
//! index (pure equi-join) or a [`CompiledPred`] selection bitmap (nested
//! loop), and matches fold into *typed* per-group accumulators instead of
//! `Value` state cells. The typed state converts back into the interpreter's
//! `Vec<Value>` representation at block end, so everything downstream
//! (merge, finalize, wire shipping) is unchanged.
//!
//! Deferred-error lanes are resolved by re-running the interpreter on just
//! the flagged rows, which keeps error behaviour (division by zero, SUM
//! overflow, …) identical to the row-at-a-time path.

use skalla_expr::compile::{CompiledPred, CompiledScalar, Lanes, ScalarLanes, BATCH_ROWS};
use skalla_expr::{analysis, eval_detail, eval_predicate, Expr};
use skalla_storage::{HashIndex, Table};
use skalla_types::{total_cmp_f64, DataType, Relation, Result, Row, Schema, SkallaError, Value};
use std::sync::Arc;

use crate::agg::{AggFunc, AggSpec};
use crate::eval::EvalStats;
use crate::op::GmdjBlock;

/// One GMDJ block lowered onto the batch path.
pub(crate) struct CompiledBlock {
    /// Per-aggregate compiled argument (`None` for `COUNT(*)`).
    args: Vec<Option<CompiledScalar>>,
    plan: Plan,
}

enum Plan {
    /// θ is exactly a conjunction of equi-join pairs: probe the base hash
    /// index with detail keys, no residual to evaluate.
    Hash { detail_key_cols: Vec<usize> },
    /// General θ: evaluate a compiled predicate per base tuple over each
    /// batch.
    Nested { pred: CompiledPred },
}

/// Typed per-group accumulator state for one aggregate. The variant is
/// picked from `(AggFunc, argument type)` at compile time; unsupported
/// combinations make the whole block fall back to the interpreter.
enum Acc {
    Count {
        counts: Vec<i64>,
        has_arg: bool,
    },
    SumI {
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    SumF {
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    AvgI {
        sums: Vec<i64>,
        counts: Vec<i64>,
    },
    AvgF {
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    MinMaxI {
        best: Vec<i64>,
        seen: Vec<bool>,
        is_min: bool,
    },
    MinMaxF {
        best: Vec<f64>,
        seen: Vec<bool>,
        is_min: bool,
    },
    MinMaxS {
        best: Vec<Option<Arc<str>>>,
        is_min: bool,
    },
}

impl Acc {
    fn new(spec: &AggSpec, arg_type: Option<DataType>, n_groups: usize) -> Option<Acc> {
        Some(match (spec.func, arg_type) {
            (AggFunc::Count, _) => Acc::Count {
                counts: vec![0; n_groups],
                has_arg: spec.arg.is_some(),
            },
            (AggFunc::Sum, Some(DataType::Int64)) => Acc::SumI {
                sums: vec![0; n_groups],
                seen: vec![false; n_groups],
            },
            (AggFunc::Sum, Some(DataType::Float64)) => Acc::SumF {
                sums: vec![0.0; n_groups],
                seen: vec![false; n_groups],
            },
            (AggFunc::Avg, Some(DataType::Int64)) => Acc::AvgI {
                sums: vec![0; n_groups],
                counts: vec![0; n_groups],
            },
            (AggFunc::Avg, Some(DataType::Float64)) => Acc::AvgF {
                sums: vec![0.0; n_groups],
                counts: vec![0; n_groups],
            },
            (AggFunc::Min | AggFunc::Max, Some(t)) => {
                let is_min = spec.func == AggFunc::Min;
                match t {
                    DataType::Int64 => Acc::MinMaxI {
                        best: vec![0; n_groups],
                        seen: vec![false; n_groups],
                        is_min,
                    },
                    DataType::Float64 => Acc::MinMaxF {
                        best: vec![0.0; n_groups],
                        seen: vec![false; n_groups],
                        is_min,
                    },
                    DataType::Utf8 => Acc::MinMaxS {
                        best: vec![None; n_groups],
                        is_min,
                    },
                    // MIN/MAX over booleans stays on the interpreter.
                    DataType::Bool => return None,
                }
            }
            _ => return None,
        })
    }

    /// Seed group `g`'s typed state from the interpreter `Value` cells at
    /// `state[off..]` — the exact inverse of [`Acc::write_state`] (NULL ⇔
    /// nothing folded yet). This lets a compiled run *resume* a fold begun
    /// by an earlier run over a previous chunk of the same detail scan, so
    /// chunked out-of-core scans reproduce the single-pass left-fold (and
    /// its float rounding) bit for bit.
    fn load_state(&mut self, g: usize, state: &[Value], off: usize) {
        match self {
            Acc::Count { counts, .. } => {
                if let Value::Int(c) = state[off] {
                    counts[g] = c;
                }
            }
            Acc::SumI { sums, seen } => {
                if let Value::Int(v) = state[off] {
                    sums[g] = v;
                    seen[g] = true;
                }
            }
            Acc::SumF { sums, seen } => {
                if let Value::Float(v) = state[off] {
                    sums[g] = v;
                    seen[g] = true;
                }
            }
            Acc::AvgI { sums, counts } => {
                if let (Value::Int(s), Value::Int(c)) = (&state[off], &state[off + 1]) {
                    sums[g] = *s;
                    counts[g] = *c;
                }
            }
            Acc::AvgF { sums, counts } => {
                if let (Value::Float(s), Value::Int(c)) = (&state[off], &state[off + 1]) {
                    sums[g] = *s;
                    counts[g] = *c;
                }
            }
            Acc::MinMaxI { best, seen, .. } => {
                if let Value::Int(v) = state[off] {
                    best[g] = v;
                    seen[g] = true;
                }
            }
            Acc::MinMaxF { best, seen, .. } => {
                if let Value::Float(v) = state[off] {
                    best[g] = v;
                    seen[g] = true;
                }
            }
            Acc::MinMaxS { best, .. } => {
                if let Value::Str(s) = &state[off] {
                    best[g] = Some(s.clone());
                }
            }
        }
    }

    /// Fold the matched lane `i` of this batch into group `g`. Lanes must
    /// have had their error flags resolved already.
    fn accumulate(&mut self, g: usize, lanes: Option<&ScalarLanes>, i: usize) -> Result<()> {
        match (self, lanes) {
            (Acc::Count { counts, has_arg }, l) => {
                let null_arg = match l {
                    Some(l) => l.is_null(i),
                    None => false,
                };
                if !*has_arg || !null_arg {
                    counts[g] += 1;
                }
            }
            (Acc::SumI { sums, seen }, Some(ScalarLanes::I64(l))) => {
                if !l.nulls[i] {
                    if seen[g] {
                        sums[g] = sums[g]
                            .checked_add(l.vals[i])
                            .ok_or_else(|| SkallaError::arithmetic("SUM overflow"))?;
                    } else {
                        sums[g] = l.vals[i];
                        seen[g] = true;
                    }
                }
            }
            (Acc::SumF { sums, seen }, Some(ScalarLanes::F64(l))) => {
                if !l.nulls[i] {
                    if seen[g] {
                        sums[g] += l.vals[i];
                    } else {
                        sums[g] = l.vals[i];
                        seen[g] = true;
                    }
                }
            }
            (Acc::AvgI { sums, counts }, Some(ScalarLanes::I64(l))) => {
                if !l.nulls[i] {
                    if counts[g] > 0 {
                        sums[g] = sums[g]
                            .checked_add(l.vals[i])
                            .ok_or_else(|| SkallaError::arithmetic("SUM overflow"))?;
                    } else {
                        sums[g] = l.vals[i];
                    }
                    counts[g] += 1;
                }
            }
            (Acc::AvgF { sums, counts }, Some(ScalarLanes::F64(l))) => {
                if !l.nulls[i] {
                    if counts[g] > 0 {
                        sums[g] += l.vals[i];
                    } else {
                        sums[g] = l.vals[i];
                    }
                    counts[g] += 1;
                }
            }
            (Acc::MinMaxI { best, seen, is_min }, Some(ScalarLanes::I64(l))) => {
                if !l.nulls[i] {
                    let v = l.vals[i];
                    if !seen[g] || (*is_min && v < best[g]) || (!*is_min && v > best[g]) {
                        best[g] = v;
                        seen[g] = true;
                    }
                }
            }
            (Acc::MinMaxF { best, seen, is_min }, Some(ScalarLanes::F64(l))) => {
                if !l.nulls[i] {
                    let v = l.vals[i];
                    let ord = total_cmp_f64(v, best[g]);
                    if !seen[g] || (*is_min && ord.is_lt()) || (!*is_min && ord.is_gt()) {
                        best[g] = v;
                        seen[g] = true;
                    }
                }
            }
            (Acc::MinMaxS { best, is_min }, Some(ScalarLanes::Str(l))) => {
                if !l.nulls[i] {
                    let v = &l.vals[i];
                    let better = match &best[g] {
                        None => true,
                        Some(b) => {
                            if *is_min {
                                v < b
                            } else {
                                v > b
                            }
                        }
                    };
                    if better {
                        best[g] = Some(v.clone());
                    }
                }
            }
            _ => return Err(SkallaError::exec("compiled accumulator/lane type mismatch")),
        }
        Ok(())
    }

    /// Convert group `g`'s typed state back into interpreter `Value` state
    /// cells at `state[off..]`.
    fn write_state(&self, g: usize, state: &mut [Value], off: usize) {
        match self {
            Acc::Count { counts, .. } => state[off] = Value::Int(counts[g]),
            Acc::SumI { sums, seen } => {
                state[off] = if seen[g] {
                    Value::Int(sums[g])
                } else {
                    Value::Null
                };
            }
            Acc::SumF { sums, seen } => {
                state[off] = if seen[g] {
                    Value::Float(sums[g])
                } else {
                    Value::Null
                };
            }
            Acc::AvgI { sums, counts } => {
                state[off] = if counts[g] > 0 {
                    Value::Int(sums[g])
                } else {
                    Value::Null
                };
                state[off + 1] = Value::Int(counts[g]);
            }
            Acc::AvgF { sums, counts } => {
                state[off] = if counts[g] > 0 {
                    Value::Float(sums[g])
                } else {
                    Value::Null
                };
                state[off + 1] = Value::Int(counts[g]);
            }
            Acc::MinMaxI { best, seen, .. } => {
                state[off] = if seen[g] {
                    Value::Int(best[g])
                } else {
                    Value::Null
                };
            }
            Acc::MinMaxF { best, seen, .. } => {
                state[off] = if seen[g] {
                    Value::Float(best[g])
                } else {
                    Value::Null
                };
            }
            Acc::MinMaxS { best, .. } => {
                state[off] = match &best[g] {
                    Some(s) => Value::Str(s.clone()),
                    None => Value::Null,
                };
            }
        }
    }
}

/// Try to lower `block` onto the batch path. Returns `None` (interpreter
/// fallback) when the condition or any aggregate falls outside the compiled
/// subset — including hash-strategy blocks with a non-trivial residual,
/// where the interpreter's index-probe path is already the right tool.
pub(crate) fn compile_block(
    block: &GmdjBlock,
    base_schema: &Schema,
    detail_schema: &Schema,
    use_hash: bool,
) -> Option<CompiledBlock> {
    let plan = if use_hash {
        let pairs = analysis::equality_pairs(&block.theta);
        let residual = analysis::residual_without_pairs(&block.theta, &pairs);
        if residual != Expr::lit(true) {
            return None;
        }
        Plan::Hash {
            detail_key_cols: pairs.iter().map(|p| p.detail_col).collect(),
        }
    } else {
        Plan::Nested {
            pred: CompiledPred::compile(&block.theta, base_schema, detail_schema)?,
        }
    };

    let mut args = Vec::with_capacity(block.aggs.len());
    for spec in &block.aggs {
        let compiled = match &spec.arg {
            None => None,
            Some(e) => {
                let c = CompiledScalar::compile(e, base_schema, detail_schema)?;
                // Probe accumulator support with a zero-group instance.
                Acc::new(spec, Some(c.data_type()), 0)?;
                Some(c)
            }
        };
        args.push(compiled);
    }
    Some(CompiledBlock { args, plan })
}

/// Run one compiled block over rows `t_start..t_start + t_len` of `table`,
/// folding matches into `states`/`match_counts` exactly as the interpreter
/// path would.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block(
    cb: &CompiledBlock,
    block: &GmdjBlock,
    block_off: usize,
    base: &Relation,
    table: &Table,
    t_start: usize,
    t_len: usize,
    states: &mut [Vec<Value>],
    match_counts: &mut [u64],
    stats: &mut EvalStats,
) -> Result<()> {
    let n_groups = base.len();
    let mut offsets = Vec::with_capacity(block.aggs.len());
    let mut off = block_off;
    for spec in &block.aggs {
        offsets.push(off);
        off += spec.state_width();
    }
    let mut accs: Vec<Acc> = Vec::with_capacity(block.aggs.len());
    for (spec, arg) in block.aggs.iter().zip(&cb.args) {
        let acc = Acc::new(spec, arg.as_ref().map(CompiledScalar::data_type), n_groups)
            .ok_or_else(|| SkallaError::exec("compiled block lost accumulator support"))?;
        accs.push(acc);
    }
    // Resume from whatever the caller already accumulated (identity on the
    // first chunk): out-of-core scans feed a segment at a time through the
    // same running state, which must continue the single-pass fold exactly.
    for (g, state) in states.iter().enumerate() {
        for (acc, &o) in accs.iter_mut().zip(&offsets) {
            acc.load_state(g, state, o);
        }
    }

    let index = match &cb.plan {
        Plan::Hash { .. } => {
            let pairs = analysis::equality_pairs(&block.theta);
            let base_key_cols: Vec<usize> = pairs.iter().map(|p| p.base_col).collect();
            Some(HashIndex::build_from_rows(
                base.rows().iter(),
                &base_key_cols,
            ))
        }
        Plan::Nested { .. } => None,
    };

    let empty_base: Row = Vec::new();
    let mut key: Row = Vec::new();
    let mut start = 0;
    while start < t_len {
        let len = BATCH_ROWS.min(t_len - start);
        let batch = table.batch(t_start + start, len);

        // Aggregate arguments are detail-only: one evaluation per batch,
        // shared across every base tuple. Error lanes resolve through the
        // interpreter so e.g. division-by-zero surfaces identically (the
        // row-at-a-time path evaluates arguments for *all* detail rows up
        // front, matched or not).
        let mut arg_lanes: Vec<Option<ScalarLanes>> = Vec::with_capacity(cb.args.len());
        for (spec, compiled) in block.aggs.iter().zip(&cb.args) {
            match compiled {
                None => arg_lanes.push(None),
                Some(c) => {
                    let mut lanes = c.eval_batch(&empty_base, &batch);
                    if lanes.has_errs() {
                        let e = spec.arg.as_ref().expect("compiled arg implies expr");
                        for i in 0..len {
                            if lanes.is_err(i) {
                                let v = eval_detail(e, &table.row(t_start + start + i))?;
                                lanes.set(i, &v)?;
                            }
                        }
                    }
                    arg_lanes.push(Some(lanes));
                }
            }
        }

        match &cb.plan {
            Plan::Hash { detail_key_cols } => {
                let index = index.as_ref().expect("hash plan has index");
                for i in 0..len {
                    // NULL keys never join (SQL equality semantics).
                    if detail_key_cols.iter().any(|&c| batch.cols[c].is_null(i)) {
                        continue;
                    }
                    key.clear();
                    key.extend(detail_key_cols.iter().map(|&c| batch.cols[c].value(i)));
                    for &bi in index.get(&key) {
                        let bi = bi as usize;
                        stats.matches += 1;
                        match_counts[bi] += 1;
                        for (acc, lanes) in accs.iter_mut().zip(&arg_lanes) {
                            acc.accumulate(bi, lanes.as_ref(), i)?;
                        }
                    }
                }
            }
            Plan::Nested { pred } => {
                for (bi, b) in base.rows().iter().enumerate() {
                    let mut sel: Lanes<bool> = pred.eval_batch(b, &batch);
                    // Resolve deferred errors with the interpreter, which
                    // also applies its short-circuit semantics exactly.
                    if sel.has_errs() {
                        for i in 0..len {
                            if sel.errs[i] {
                                let hit = eval_predicate(
                                    &block.theta,
                                    b,
                                    &table.row(t_start + start + i),
                                )?;
                                sel.vals[i] = hit;
                                sel.nulls[i] = false;
                                sel.errs[i] = false;
                            }
                        }
                    }
                    for i in 0..len {
                        if sel.ok(i) && sel.vals[i] {
                            stats.matches += 1;
                            match_counts[bi] += 1;
                            for (acc, lanes) in accs.iter_mut().zip(&arg_lanes) {
                                acc.accumulate(bi, lanes.as_ref(), i)?;
                            }
                        }
                    }
                }
            }
        }
        start += len;
    }

    // Convert typed state back into the interpreter's Value cells.
    for (g, state) in states.iter_mut().enumerate() {
        for (acc, &o) in accs.iter().zip(&offsets) {
            acc.write_state(g, state, o);
        }
    }
    Ok(())
}
