//! Local evaluation of one GMDJ operator.
//!
//! Conventional SQL group-by machinery does not apply to GMDJs because the
//! `RNG` sets of different base tuples may overlap (paper §2.2). The
//! evaluator here follows the centralized algorithms of [2, 7]:
//!
//! * **Hash strategy** — when `θᵢ` contains equi-join conjuncts
//!   `b.k = r.j`, index the base relation on those columns, probe with each
//!   detail tuple, and check the residual condition per candidate. This
//!   makes the common grouping conditions linear in `|R|`.
//! * **Nested-loop strategy** — the general fallback: every `(r, b)` pair is
//!   tested against `θᵢ`.
//!
//! Two output modes:
//!
//! * [`eval_gmdj_sub`] produces the *sub-aggregate* relation `Hᵢ` shipped to
//!   the coordinator during distributed rounds (state columns, optionally
//!   plus the `__rng_count` match counter of Proposition 1).
//! * [`eval_gmdj_full`] produces finalized output columns (used by the
//!   centralized reference evaluator and by local-only rounds under
//!   synchronization reduction).

use std::sync::Arc;

use skalla_expr::{analysis, eval_detail, eval_predicate, DetailBounds, Expr};
use skalla_storage::segment::{zone_may_contain_str, zone_may_overlap, SegmentFile};
use skalla_storage::{ColumnStats, HashIndex};
use skalla_types::{DataType, Field, Relation, Result, Row, Schema, Value};

use crate::op::{GmdjOp, MATCH_COUNT_COL};

/// Strategy selection for one GMDJ block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalStrategy {
    /// Hash when the condition has equi-join conjuncts, nested loop
    /// otherwise.
    #[default]
    Auto,
    /// Force the nested-loop strategy.
    NestedLoop,
    /// Force the hash strategy (error if no equi-join conjuncts exist — the
    /// caller should know).
    Hash,
}

/// Options for local evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Strategy selection.
    pub strategy: LocalStrategy,
    /// Piggyback a `__rng_count` column counting θ-matches per base tuple
    /// (distribution-independent group reduction, Proposition 1). Only
    /// meaningful in sub-aggregate mode.
    pub with_match_count: bool,
    /// Intra-site parallelism: split the detail scan across this many
    /// threads, each accumulating private sub-aggregate state, then merge
    /// (Theorem 1 applied *within* a site — state merging is associative).
    /// `0` or `1` evaluates serially.
    pub parallelism: usize,
    /// Use compiled batch kernels (`skalla_expr::compile`) when the detail
    /// source is columnar and the block's condition and aggregate arguments
    /// fall inside the compiled subset; blocks outside it fall back to the
    /// row-at-a-time interpreter automatically. On by default.
    pub compiled: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            strategy: LocalStrategy::default(),
            with_match_count: false,
            parallelism: 0,
            compiled: true,
        }
    }
}

/// Below this many detail rows the thread fan-out costs more than it saves.
const PARALLEL_MIN_ROWS: usize = 4096;

/// Counters describing one local evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Detail rows scanned (per block).
    pub detail_rows_scanned: u64,
    /// `(b, r)` pairs that satisfied a θ.
    pub matches: u64,
    /// Blocks evaluated with the hash strategy.
    pub blocks_hashed: u32,
    /// Blocks evaluated with the nested-loop strategy.
    pub blocks_nested: u32,
    /// Blocks evaluated through compiled batch kernels (a subset of the
    /// hashed/nested counts, which record the join strategy regardless of
    /// execution mode).
    pub blocks_compiled: u32,
}

/// The detail side of local evaluation: either a columnar table or a
/// row-oriented relation (the coordinator re-aggregates shipped `H`
/// fragments, which are relations). `Sync` so evaluation can fan a scan out
/// across threads.
pub trait DetailSource: Sync {
    /// Number of rows.
    fn num_rows(&self) -> usize;
    /// Materialize row `i`.
    fn get_row(&self, i: usize) -> Row;
    /// The columnar window `(table, start, len)` backing this source, if
    /// any — the compiled batch path needs zero-copy column slices. `None`
    /// (the default) keeps evaluation on the row-at-a-time interpreter.
    fn table_slice(&self) -> Option<(&skalla_storage::Table, usize, usize)> {
        None
    }
}

impl DetailSource for skalla_storage::Table {
    fn num_rows(&self) -> usize {
        self.len()
    }
    fn get_row(&self, i: usize) -> Row {
        self.row(i)
    }
    fn table_slice(&self) -> Option<(&skalla_storage::Table, usize, usize)> {
        Some((self, 0, self.len()))
    }
}

impl DetailSource for Relation {
    fn num_rows(&self) -> usize {
        self.len()
    }
    fn get_row(&self, i: usize) -> Row {
        self.row(i).clone()
    }
}

/// Evaluate `op` over (`base`, `detail`) producing **sub-aggregate state**
/// columns: schema = base fields ++ state fields (++ `__rng_count`).
pub fn eval_gmdj_sub<D: DetailSource>(
    base: &Relation,
    detail: &D,
    detail_schema: &Schema,
    op: &GmdjOp,
    opts: &EvalOptions,
) -> Result<(Relation, EvalStats)> {
    let (states, match_counts, stats) = accumulate(base, detail, op, opts)?;
    let rel = shape_sub(base, detail_schema, op, opts, &states, &match_counts)?;
    Ok((rel, stats))
}

/// Shape accumulated states as the sub-aggregate relation `Hᵢ`:
/// base fields ++ state fields (++ `__rng_count`).
fn shape_sub(
    base: &Relation,
    detail_schema: &Schema,
    op: &GmdjOp,
    opts: &EvalOptions,
    states: &[Vec<Value>],
    match_counts: &[u64],
) -> Result<Relation> {
    let mut fields = base.schema().fields().to_vec();
    fields.extend(op.state_fields(detail_schema)?);
    if opts.with_match_count {
        fields.push(Field::new(MATCH_COUNT_COL, DataType::Int64));
    }
    let schema = Arc::new(Schema::new(fields)?);

    let mut rows = Vec::with_capacity(base.len());
    for (i, b) in base.rows().iter().enumerate() {
        let mut row = b.clone();
        row.extend(states[i].iter().cloned());
        if opts.with_match_count {
            row.push(Value::Int(match_counts[i] as i64));
        }
        rows.push(row);
    }
    Ok(Relation::from_rows_unchecked(schema, rows))
}

/// Shape accumulated states as the finalized relation:
/// base fields ++ output fields.
fn shape_full(
    base: &Relation,
    detail_schema: &Schema,
    op: &GmdjOp,
    states: &[Vec<Value>],
) -> Result<Relation> {
    let mut fields = base.schema().fields().to_vec();
    fields.extend(op.output_fields(detail_schema)?);
    let schema = Arc::new(Schema::new(fields)?);

    let mut rows = Vec::with_capacity(base.len());
    for (i, b) in base.rows().iter().enumerate() {
        let mut row = b.clone();
        let mut offset = 0;
        for spec in op.all_aggs() {
            let w = spec.state_width();
            row.push(spec.finalize(&states[i][offset..offset + w])?);
            offset += w;
        }
        rows.push(row);
    }
    Ok(Relation::from_rows_unchecked(schema, rows))
}

/// Evaluate `op` over (`base`, `detail`) producing **finalized** output
/// columns: schema = base fields ++ output fields.
pub fn eval_gmdj_full<D: DetailSource>(
    base: &Relation,
    detail: &D,
    detail_schema: &Schema,
    op: &GmdjOp,
    opts: &EvalOptions,
) -> Result<(Relation, EvalStats)> {
    let (states, _, stats) = accumulate(base, detail, op, opts)?;
    let rel = shape_full(base, detail_schema, op, &states)?;
    Ok((rel, stats))
}

/// Result of [`eval_gmdj_dual`]: both views of one accumulation pass.
#[derive(Debug, Clone)]
pub struct DualResult {
    /// Finalized relation (base fields ++ output fields) — the base for the
    /// next operator in a local-only run.
    pub full: Relation,
    /// Raw per-base-row aggregate state (concatenated across aggregates) —
    /// the sub-aggregates to ship to the coordinator.
    pub states: Vec<Vec<Value>>,
    /// θ-match count per base row (`|RNG| > 0` detection, Proposition 1).
    pub match_counts: Vec<u64>,
    /// Evaluation counters.
    pub stats: EvalStats,
}

/// Evaluate `op` once and return both the finalized relation and the raw
/// sub-aggregate state. Used by sites executing a synchronization-reduced
/// local run (paper §4.3): the finalized view feeds the next operator
/// locally while the state columns are what ultimately gets shipped.
pub fn eval_gmdj_dual<D: DetailSource>(
    base: &Relation,
    detail: &D,
    detail_schema: &Schema,
    op: &GmdjOp,
    opts: &EvalOptions,
) -> Result<DualResult> {
    let (states, match_counts, stats) = accumulate(base, detail, op, opts)?;
    let full = shape_full(base, detail_schema, op, &states)?;
    Ok(DualResult {
        full,
        states,
        match_counts,
        stats,
    })
}

/// Per-base-row aggregate state, the θ-match counts, and scan counters —
/// the raw product of one accumulation pass.
type Accumulated = (Vec<Vec<Value>>, Vec<u64>, EvalStats);

/// A window over a detail source, used to hand each worker thread a
/// contiguous slice of the scan.
struct RangeView<'a, D: DetailSource> {
    inner: &'a D,
    start: usize,
    len: usize,
}

impl<D: DetailSource> DetailSource for RangeView<'_, D> {
    fn num_rows(&self) -> usize {
        self.len
    }
    fn get_row(&self, i: usize) -> Row {
        debug_assert!(i < self.len);
        self.inner.get_row(self.start + i)
    }
    fn table_slice(&self) -> Option<(&skalla_storage::Table, usize, usize)> {
        self.inner
            .table_slice()
            .map(|(t, s, _)| (t, s + self.start, self.len))
    }
}

/// Core accumulation: per-base-row aggregate state plus match counts.
/// Dispatches to the parallel scan when the options ask for it and the
/// detail relation is large enough to amortize the fan-out.
fn accumulate<D: DetailSource>(
    base: &Relation,
    detail: &D,
    op: &GmdjOp,
    opts: &EvalOptions,
) -> Result<Accumulated> {
    let par = opts.parallelism.max(1);
    let n = detail.num_rows();
    if par == 1 || n < PARALLEL_MIN_ROWS.max(2 * par) {
        return accumulate_serial(base, detail, op, opts);
    }

    // Fan the scan out: each worker accumulates private state over a
    // contiguous row range (building its own base index — O(|B|) per
    // worker, dwarfed by the scan at these sizes), then the partial states
    // merge associatively.
    let chunk = n.div_ceil(par);
    let workers: Vec<RangeView<'_, D>> = (0..par)
        .map(|w| {
            let start = w * chunk;
            RangeView {
                inner: detail,
                start: start.min(n),
                len: chunk.min(n.saturating_sub(start.min(n))),
            }
        })
        .filter(|v| v.len > 0)
        .collect();

    let partials: Vec<Result<Accumulated>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .iter()
            .map(|view| scope.spawn(move || accumulate_serial(base, view, op, opts)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(skalla_types::SkallaError::exec("worker panicked")))
            })
            .collect()
    });

    let mut iter = partials.into_iter();
    let (mut states, mut match_counts, mut stats) = iter.next().expect("at least one worker")?;
    for partial in iter {
        let (pstates, pcounts, pstats) = partial?;
        merge_partial_states(op, &mut states, &mut match_counts, pstates, &pcounts)?;
        stats.detail_rows_scanned += pstats.detail_rows_scanned;
        stats.matches += pstats.matches;
    }
    Ok((states, match_counts, stats))
}

/// Merge a partial accumulation into `states`/`match_counts` (Theorem 1:
/// sub-aggregate state merging is associative, so partials from worker
/// threads or disk segments combine in any grouping).
fn merge_partial_states(
    op: &GmdjOp,
    states: &mut [Vec<Value>],
    match_counts: &mut [u64],
    pstates: Vec<Vec<Value>>,
    pcounts: &[u64],
) -> Result<()> {
    for (i, pstate) in pstates.into_iter().enumerate() {
        let state = &mut states[i];
        let mut off = 0;
        for spec in op.all_aggs() {
            let w = spec.state_width();
            spec.merge(&mut state[off..off + w], &pstate[off..off + w])?;
            off += w;
        }
        match_counts[i] += pcounts[i];
    }
    Ok(())
}

/// Fresh per-base-row aggregate states (every aggregate at its identity).
fn init_states(base: &Relation, op: &GmdjOp) -> Vec<Vec<Value>> {
    let total_width = op.state_width();
    (0..base.len())
        .map(|_| {
            let mut s = Vec::with_capacity(total_width);
            for spec in op.all_aggs() {
                s.extend(spec.init_state());
            }
            s
        })
        .collect()
}

/// Single-threaded accumulation over one detail source.
fn accumulate_serial<D: DetailSource>(
    base: &Relation,
    detail: &D,
    op: &GmdjOp,
    opts: &EvalOptions,
) -> Result<Accumulated> {
    let mut acc = (
        init_states(base, op),
        vec![0u64; base.len()],
        EvalStats::default(),
    );
    accumulate_serial_into(base, detail, op, opts, &mut acc)?;
    Ok(acc)
}

/// Single-threaded accumulation continuing from existing state. Feeding a
/// detail scan through this in consecutive chunks is *bit-identical* to one
/// [`accumulate_serial`] call over the concatenation — every row updates
/// the same running state in the same order, so even non-associative float
/// rounding agrees. The out-of-core segment scan depends on this.
fn accumulate_serial_into<D: DetailSource>(
    base: &Relation,
    detail: &D,
    op: &GmdjOp,
    opts: &EvalOptions,
    acc: &mut Accumulated,
) -> Result<()> {
    let (states, match_counts, stats) = acc;

    // State-column offset of each block's first aggregate.
    let mut block_offsets = Vec::with_capacity(op.blocks.len());
    let mut off = 0;
    for block in &op.blocks {
        block_offsets.push(off);
        off += block.aggs.iter().map(|a| a.state_width()).sum::<usize>();
    }

    let n_detail = detail.num_rows();

    for (block, &block_off) in op.blocks.iter().zip(&block_offsets) {
        let pairs = analysis::equality_pairs(&block.theta);
        let use_hash = match opts.strategy {
            LocalStrategy::Auto => !pairs.is_empty(),
            LocalStrategy::Hash => !pairs.is_empty(),
            LocalStrategy::NestedLoop => false,
        };

        // Compiled batch path: when the detail source is columnar and the
        // block lowers onto typed kernels, skip the interpreter entirely.
        if opts.compiled {
            if let Some((table, t_start, t_len)) = detail.table_slice() {
                debug_assert_eq!(t_len, n_detail);
                if let Some(cb) =
                    crate::compiled::compile_block(block, base.schema(), table.schema(), use_hash)
                {
                    stats.detail_rows_scanned += n_detail as u64;
                    if use_hash {
                        stats.blocks_hashed += 1;
                    } else {
                        stats.blocks_nested += 1;
                    }
                    stats.blocks_compiled += 1;
                    crate::compiled::run_block(
                        &cb,
                        block,
                        block_off,
                        base,
                        table,
                        t_start,
                        t_len,
                        states,
                        match_counts,
                        stats,
                    )?;
                    continue;
                }
            }
        }

        // Precompute per-detail-row argument values for each aggregate in
        // the block (arguments are detail-only, so this is shared across all
        // matching base tuples).
        let mut arg_vals: Vec<Option<Vec<Value>>> = Vec::with_capacity(block.aggs.len());
        for spec in &block.aggs {
            match &spec.arg {
                None => arg_vals.push(None),
                Some(e) => {
                    let mut vals = Vec::with_capacity(n_detail);
                    for i in 0..n_detail {
                        vals.push(eval_detail(e, &detail.get_row(i))?);
                    }
                    arg_vals.push(Some(vals));
                }
            }
        }

        stats.detail_rows_scanned += n_detail as u64;

        if use_hash {
            stats.blocks_hashed += 1;
            let base_key_cols: Vec<usize> = pairs.iter().map(|p| p.base_col).collect();
            let detail_key_cols: Vec<usize> = pairs.iter().map(|p| p.detail_col).collect();
            let residual = analysis::residual_without_pairs(&block.theta, &pairs);
            let skip_residual = residual == Expr::lit(true);
            let index = HashIndex::build_from_rows(base.rows().iter(), &base_key_cols);

            let mut key: Row = Vec::with_capacity(detail_key_cols.len());
            for i in 0..n_detail {
                let r = detail.get_row(i);
                key.clear();
                // NULL keys never join (SQL equality semantics).
                if detail_key_cols.iter().any(|&c| r[c].is_null()) {
                    continue;
                }
                key.extend(detail_key_cols.iter().map(|&c| r[c].clone()));
                for &bi in index.get(&key) {
                    let bi = bi as usize;
                    let b = &base.rows()[bi];
                    if skip_residual || eval_predicate(&residual, b, &r)? {
                        stats.matches += 1;
                        match_counts[bi] += 1;
                        accumulate_row(block, block_off, &mut states[bi], &arg_vals, i)?;
                    }
                }
            }
        } else {
            stats.blocks_nested += 1;
            for i in 0..n_detail {
                let r = detail.get_row(i);
                for (bi, b) in base.rows().iter().enumerate() {
                    if eval_predicate(&block.theta, b, &r)? {
                        stats.matches += 1;
                        match_counts[bi] += 1;
                        accumulate_row(block, block_off, &mut states[bi], &arg_vals, i)?;
                    }
                }
            }
        }
    }

    Ok(())
}

// ---------------------------------------------------------------------------
// Out-of-core segmented scans with zone-map pruning.

/// Segment-level counters from one out-of-core scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegScanStats {
    /// Segments decoded and evaluated.
    pub scanned: u64,
    /// Segments skipped because their zone maps refuted every block's θ.
    pub pruned: u64,
    /// Column chunks whose CRC32C was verified during decode (one per
    /// column of each scanned segment).
    pub blocks_verified: u64,
}

/// `true` when the zone maps prove no row of the segment can satisfy the
/// bounds (every bound is a *necessary* condition on matching rows, so one
/// refuted bound refutes the whole conjunction).
fn zones_refute(zones: &[ColumnStats], bounds: &DetailBounds) -> bool {
    bounds
        .num
        .iter()
        .any(|(c, iv)| zones.get(*c).is_some_and(|z| !zone_may_overlap(z, iv)))
        || bounds
            .str_eq
            .iter()
            .any(|(c, s)| zones.get(*c).is_some_and(|z| !zone_may_contain_str(z, s)))
}

/// Accumulate `op` over the segments of `file`, decoding one segment at a
/// time (peak memory: one segment + the aggregate states) and skipping any
/// segment whose zone maps refute every block's condition. `range` limits
/// the scan to a global row window (fragment addressing for skew splits and
/// failover); segments outside it are not visited and partially-covered
/// segments are trimmed after decode.
///
/// Bit-for-bit with the in-memory scan: the window is cut into the same
/// worker ranges [`accumulate`] would use (one range when the options are
/// serial), each range's rows feed one *running* state via
/// [`accumulate_serial_into`] in row order, and ranges merge in the same
/// order the parallel dispatcher merges its workers. Non-associative float
/// rounding therefore agrees exactly; pruned segments contribute identity,
/// which is rounding-neutral.
fn accumulate_segments(
    base: &Relation,
    file: &SegmentFile,
    op: &GmdjOp,
    opts: &EvalOptions,
    prune: bool,
    range: Option<(usize, usize)>,
) -> Result<(Accumulated, SegScanStats)> {
    let bounds: Vec<DetailBounds> = op
        .blocks
        .iter()
        .map(|b| analysis::detail_bounds(&b.theta))
        .collect();
    let can_prune = prune && !bounds.is_empty();
    let (lo, hi) = range.unwrap_or((0, file.total_rows()));
    let n = hi.saturating_sub(lo);

    // The same range boundaries accumulate() hands its workers.
    let par = opts.parallelism.max(1);
    let chunk = if par == 1 || n < PARALLEL_MIN_ROWS.max(2 * par) {
        n.max(1)
    } else {
        n.div_ceil(par)
    };
    let mut accs: Vec<Option<Accumulated>> = std::iter::repeat_with(|| None)
        .take(n.div_ceil(chunk.max(1)).max(1))
        .collect();
    let mut seg = SegScanStats::default();

    for i in 0..file.num_segments() {
        let meta = file.meta(i);
        let start = file.segment_row_start(i);
        let end = start + meta.rows;
        let (wlo, whi) = (lo.max(start), hi.min(end));
        if wlo >= whi {
            continue; // outside the fragment window: not part of this scan
        }
        if can_prune && bounds.iter().all(|b| zones_refute(&meta.zones, b)) {
            seg.pruned += 1;
            continue;
        }
        seg.scanned += 1;
        let table = file.read_segment(i)?;
        // Every decoded column chunk passed its CRC check to get here.
        seg.blocks_verified += file.schema().len() as u64;
        // Feed each worker-range this segment intersects, in row order.
        let mut pos = wlo;
        while pos < whi {
            let ci = (pos - lo) / chunk;
            let piece_end = whi.min(lo + (ci + 1) * chunk);
            let piece = table.row_range(pos - start, piece_end - start)?;
            let acc = accs[ci].get_or_insert_with(|| {
                (
                    init_states(base, op),
                    vec![0u64; base.len()],
                    EvalStats::default(),
                )
            });
            accumulate_serial_into(base, &piece, op, opts, acc)?;
            pos = piece_end;
        }
    }

    // Merge the ranges in worker order, exactly as accumulate() does. All
    // segments pruned (or none in range): identity states, zero matches.
    let mut iter = accs.into_iter().flatten();
    let acc = match iter.next() {
        None => (
            init_states(base, op),
            vec![0u64; base.len()],
            EvalStats::default(),
        ),
        Some(mut a) => {
            for (pstates, pcounts, pstats) in iter {
                merge_partial_states(op, &mut a.0, &mut a.1, pstates, &pcounts)?;
                a.2.detail_rows_scanned += pstats.detail_rows_scanned;
                a.2.matches += pstats.matches;
                a.2.blocks_hashed += pstats.blocks_hashed;
                a.2.blocks_nested += pstats.blocks_nested;
                a.2.blocks_compiled += pstats.blocks_compiled;
            }
            a
        }
    };
    Ok((acc, seg))
}

/// Segment-backed [`eval_gmdj_sub`]: sub-aggregate state columns computed
/// out-of-core, with zone-map pruning when `prune` is set. Pruned segments
/// contribute no matches, so `__rng_count` semantics are unchanged.
pub fn eval_gmdj_sub_segments(
    base: &Relation,
    file: &SegmentFile,
    op: &GmdjOp,
    opts: &EvalOptions,
    prune: bool,
    range: Option<(usize, usize)>,
) -> Result<(Relation, EvalStats, SegScanStats)> {
    let ((states, match_counts, stats), seg) =
        accumulate_segments(base, file, op, opts, prune, range)?;
    let rel = shape_sub(base, file.schema(), op, opts, &states, &match_counts)?;
    Ok((rel, stats, seg))
}

/// Segment-backed [`eval_gmdj_full`]: finalized output columns computed
/// out-of-core.
pub fn eval_gmdj_full_segments(
    base: &Relation,
    file: &SegmentFile,
    op: &GmdjOp,
    opts: &EvalOptions,
    prune: bool,
    range: Option<(usize, usize)>,
) -> Result<(Relation, EvalStats, SegScanStats)> {
    let ((states, _, stats), seg) = accumulate_segments(base, file, op, opts, prune, range)?;
    let rel = shape_full(base, file.schema(), op, &states)?;
    Ok((rel, stats, seg))
}

/// Segment-backed [`eval_gmdj_dual`]: both views of one out-of-core pass,
/// for synchronization-reduced local runs over disk-resident partitions.
pub fn eval_gmdj_dual_segments(
    base: &Relation,
    file: &SegmentFile,
    op: &GmdjOp,
    opts: &EvalOptions,
    prune: bool,
    range: Option<(usize, usize)>,
) -> Result<(DualResult, SegScanStats)> {
    let ((states, match_counts, stats), seg) =
        accumulate_segments(base, file, op, opts, prune, range)?;
    let full = shape_full(base, file.schema(), op, &states)?;
    Ok((
        DualResult {
            full,
            states,
            match_counts,
            stats,
        },
        seg,
    ))
}

fn accumulate_row(
    block: &crate::op::GmdjBlock,
    block_off: usize,
    state: &mut [Value],
    arg_vals: &[Option<Vec<Value>>],
    detail_row: usize,
) -> Result<()> {
    let mut off = block_off;
    for (spec, vals) in block.aggs.iter().zip(arg_vals) {
        let w = spec.state_width();
        let v = match vals {
            None => &Value::Null, // COUNT(*): value unused
            Some(vs) => &vs[detail_row],
        };
        spec.accumulate(&mut state[off..off + w], v)?;
        off += w;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::op::GmdjBlock;
    use skalla_storage::Table;

    fn detail_schema() -> Arc<Schema> {
        Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc()
    }

    fn flow() -> Table {
        Table::from_rows(
            detail_schema(),
            &[
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(1), Value::Int(10), Value::Int(300)],
                vec![Value::Int(2), Value::Int(20), Value::Int(50)],
                vec![Value::Int(1), Value::Int(20), Value::Int(75)],
            ],
        )
        .unwrap()
    }

    fn base() -> Relation {
        flow().distinct_project(&[0, 1]).unwrap()
    }

    fn count_sum_op() -> GmdjOp {
        GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt"),
                AggSpec::sum(Expr::detail(2), "sum").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )])
    }

    #[test]
    fn full_eval_groups_correctly() {
        let (out, stats) = eval_gmdj_full(
            &base(),
            &flow(),
            &detail_schema(),
            &count_sum_op(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().names(), vec!["sas", "das", "cnt", "sum"]);
        let sorted = out.sorted();
        // (1,10): cnt 2, sum 400; (1,20): cnt 1, sum 75; (2,20): cnt 1, sum 50.
        assert_eq!(
            sorted.row(0),
            &vec![
                Value::Int(1),
                Value::Int(10),
                Value::Int(2),
                Value::Int(400)
            ]
        );
        assert_eq!(
            sorted.row(1),
            &vec![Value::Int(1), Value::Int(20), Value::Int(1), Value::Int(75)]
        );
        assert_eq!(
            sorted.row(2),
            &vec![Value::Int(2), Value::Int(20), Value::Int(1), Value::Int(50)]
        );
        assert_eq!(stats.blocks_hashed, 1);
        assert_eq!(stats.blocks_nested, 0);
        assert_eq!(stats.matches, 4);
    }

    #[test]
    fn nested_loop_agrees_with_hash() {
        let opts_nl = EvalOptions {
            strategy: LocalStrategy::NestedLoop,
            ..Default::default()
        };
        let (a, sa) = eval_gmdj_full(
            &base(),
            &flow(),
            &detail_schema(),
            &count_sum_op(),
            &EvalOptions::default(),
        )
        .unwrap();
        let (b, sb) = eval_gmdj_full(
            &base(),
            &flow(),
            &detail_schema(),
            &count_sum_op(),
            &opts_nl,
        )
        .unwrap();
        assert_eq!(a.sorted(), b.sorted());
        assert_eq!(sa.matches, sb.matches);
        assert_eq!(sb.blocks_nested, 1);
    }

    #[test]
    fn sub_eval_ships_state_and_match_count() {
        let opts = EvalOptions {
            with_match_count: true,
            ..Default::default()
        };
        let (out, _) =
            eval_gmdj_sub(&base(), &flow(), &detail_schema(), &count_sum_op(), &opts).unwrap();
        assert_eq!(
            out.schema().names(),
            vec!["sas", "das", "cnt", "sum", MATCH_COUNT_COL]
        );
        // Every group matched at least once here.
        for r in out.rows() {
            assert!(r[4].as_int().unwrap() > 0);
        }
    }

    #[test]
    fn unmatched_groups_have_zero_match_count() {
        // Base has a group that the (empty-ish) detail can't match.
        let extra_base = {
            let mut b = base();
            b.push(vec![Value::Int(99), Value::Int(99)]).unwrap();
            b
        };
        let opts = EvalOptions {
            with_match_count: true,
            ..Default::default()
        };
        let (out, _) = eval_gmdj_sub(
            &extra_base,
            &flow(),
            &detail_schema(),
            &count_sum_op(),
            &opts,
        )
        .unwrap();
        let unmatched: Vec<_> = out
            .rows()
            .iter()
            .filter(|r| r[0] == Value::Int(99))
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][4], Value::Int(0)); // __rng_count
        assert_eq!(unmatched[0][2], Value::Int(0)); // COUNT over empty = 0
        assert_eq!(unmatched[0][3], Value::Null); // SUM over empty = NULL
    }

    #[test]
    fn correlated_condition_uses_prior_aggregates() {
        // Base already carries cnt/sum; θ₂: nb >= sum/cnt (Example 1 round 2).
        let (b1, _) = eval_gmdj_full(
            &base(),
            &flow(),
            &detail_schema(),
            &count_sum_op(),
            &EvalOptions::default(),
        )
        .unwrap();
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1)))
                .and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2)))),
        )]);
        let (out, _) = eval_gmdj_full(
            &b1,
            &flow(),
            &detail_schema(),
            &md2,
            &EvalOptions::default(),
        )
        .unwrap();
        let sorted = out.sorted();
        // (1,10): avg 200 → nb ∈ {100,300}, only 300 ≥ 200 → cnt2 = 1.
        assert_eq!(sorted.row(0)[4], Value::Int(1));
        // (1,20): avg 75 → 75 ≥ 75 → 1. (2,20): avg 50 → 1.
        assert_eq!(sorted.row(1)[4], Value::Int(1));
        assert_eq!(sorted.row(2)[4], Value::Int(1));
    }

    #[test]
    fn multi_block_op_accumulates_separately() {
        let op = GmdjOp::new(vec![
            GmdjBlock::new(
                vec![AggSpec::count_star("all_cnt")],
                Expr::base(0).eq(Expr::detail(0)),
            ),
            GmdjBlock::new(
                vec![AggSpec::count_star("big_cnt")],
                Expr::base(0)
                    .eq(Expr::detail(0))
                    .and(Expr::detail(2).gt(Expr::lit(90))),
            ),
        ]);
        let b = flow().distinct_project(&[0]).unwrap();
        let (out, _) =
            eval_gmdj_full(&b, &flow(), &detail_schema(), &op, &EvalOptions::default()).unwrap();
        let sorted = out.sorted();
        // sas=1: 3 rows, 2 with nb>90; sas=2: 1 row, 0 with nb>90.
        assert_eq!(
            sorted.row(0),
            &vec![Value::Int(1), Value::Int(3), Value::Int(2)]
        );
        assert_eq!(
            sorted.row(1),
            &vec![Value::Int(2), Value::Int(1), Value::Int(0)]
        );
    }

    #[test]
    fn null_join_keys_never_match() {
        let schema = detail_schema();
        let t = Table::from_rows(
            schema.clone(),
            &[
                vec![Value::Int(1), Value::Int(10), Value::Int(5)],
                vec![Value::Null, Value::Int(10), Value::Int(7)],
            ],
        )
        .unwrap();
        let b = Relation::new(
            Arc::new(schema.project(&[0]).unwrap()),
            vec![vec![Value::Int(1)], vec![Value::Null]],
        )
        .unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        // Hash and nested loop must agree: NULL = NULL is not TRUE.
        for strat in [LocalStrategy::Auto, LocalStrategy::NestedLoop] {
            let opts = EvalOptions {
                strategy: strat,
                ..Default::default()
            };
            let (out, _) = eval_gmdj_full(&b, &t, &schema, &op, &opts).unwrap();
            let sorted = out.sorted();
            assert_eq!(sorted.row(0), &vec![Value::Null, Value::Int(0)]);
            assert_eq!(sorted.row(1), &vec![Value::Int(1), Value::Int(1)]);
        }
    }

    #[test]
    fn relation_as_detail_source() {
        // The coordinator re-aggregates H fragments, which are Relations.
        let rel = flow().to_relation();
        let (out, _) = eval_gmdj_full(
            &base(),
            &rel,
            &detail_schema(),
            &count_sum_op(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        // Large enough to cross PARALLEL_MIN_ROWS, with float AVG state to
        // exercise partial-state merging.
        let schema = detail_schema();
        let rows: Vec<Vec<Value>> = (0..10_000)
            .map(|i| {
                vec![
                    Value::Int(i % 13),
                    Value::Int(i % 7),
                    Value::Int((i * 31) % 997),
                ]
            })
            .collect();
        let t = Table::from_rows(schema.clone(), &rows).unwrap();
        let b = t.distinct_project(&[0, 1]).unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c"),
                AggSpec::sum(Expr::detail(2), "s").unwrap(),
                AggSpec::min(Expr::detail(2), "mn").unwrap(),
                AggSpec::max(Expr::detail(2), "mx").unwrap(),
                AggSpec::avg(Expr::detail(2), "av").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        let serial = eval_gmdj_full(&b, &t, &schema, &op, &EvalOptions::default()).unwrap();
        for par in [2usize, 3, 8] {
            let opts = EvalOptions {
                parallelism: par,
                ..Default::default()
            };
            let (out, stats) = eval_gmdj_full(&b, &t, &schema, &op, &opts).unwrap();
            assert_eq!(out.sorted(), serial.0.sorted(), "parallelism {par}");
            assert_eq!(stats.matches, serial.1.matches);
            assert_eq!(stats.detail_rows_scanned, serial.1.detail_rows_scanned);
        }
        // Match counts survive parallel merging too.
        let opts = EvalOptions {
            parallelism: 4,
            with_match_count: true,
            ..Default::default()
        };
        let (sub_par, _) = eval_gmdj_sub(&b, &t, &schema, &op, &opts).unwrap();
        let opts_serial = EvalOptions {
            with_match_count: true,
            ..Default::default()
        };
        let (sub_ser, _) = eval_gmdj_sub(&b, &t, &schema, &op, &opts_serial).unwrap();
        assert_eq!(sub_par.sorted(), sub_ser.sorted());
    }

    #[test]
    fn small_inputs_stay_serial() {
        // Below the threshold the parallel request falls back to the serial
        // path (observable only through identical results — this pins the
        // no-crash behaviour for tiny inputs and parallelism > rows).
        let opts = EvalOptions {
            parallelism: 64,
            ..Default::default()
        };
        let (out, _) =
            eval_gmdj_full(&base(), &flow(), &detail_schema(), &count_sum_op(), &opts).unwrap();
        let (reference, _) = eval_gmdj_full(
            &base(),
            &flow(),
            &detail_schema(),
            &count_sum_op(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(out.sorted(), reference.sorted());
    }

    /// The default options route supported blocks through compiled kernels;
    /// disabling compilation must give identical results and identical
    /// strategy counters.
    #[test]
    fn compiled_path_agrees_with_interpreter() {
        let op = GmdjOp::new(vec![
            GmdjBlock::new(
                vec![
                    AggSpec::count_star("c"),
                    AggSpec::sum(Expr::detail(2), "s").unwrap(),
                    AggSpec::min(Expr::detail(2), "mn").unwrap(),
                    AggSpec::max(Expr::detail(2), "mx").unwrap(),
                    AggSpec::avg(Expr::detail(2), "av").unwrap(),
                ],
                Expr::base(0)
                    .eq(Expr::detail(0))
                    .and(Expr::base(1).eq(Expr::detail(1))),
            ),
            GmdjBlock::new(
                vec![AggSpec::count_star("big")],
                Expr::base(0)
                    .eq(Expr::detail(0))
                    .and(Expr::detail(2).gt(Expr::lit(60))),
            ),
        ]);
        let compiled_opts = EvalOptions::default();
        assert!(compiled_opts.compiled);
        let interp_opts = EvalOptions {
            compiled: false,
            ..Default::default()
        };
        let (a, sa) =
            eval_gmdj_full(&base(), &flow(), &detail_schema(), &op, &compiled_opts).unwrap();
        let (b, sb) =
            eval_gmdj_full(&base(), &flow(), &detail_schema(), &op, &interp_opts).unwrap();
        assert_eq!(a.sorted(), b.sorted());
        assert_eq!(sa.matches, sb.matches);
        assert_eq!(sa.blocks_hashed, sb.blocks_hashed);
        // Block 1 is a pure equi-join (compiles); block 2 carries a hash
        // residual, which stays on the interpreter's index-probe path.
        assert_eq!(sa.blocks_compiled, 1);
        assert_eq!(sb.blocks_compiled, 0);
    }

    /// A nested-loop block with an inequality-only θ compiles to a
    /// predicate-bitmap scan.
    #[test]
    fn compiled_nested_loop_predicate() {
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("lt_cnt")],
            Expr::detail(2).lt(Expr::base(2)),
        )]);
        let b = Relation::new(
            Arc::new(
                Schema::from_pairs([
                    ("sas", DataType::Int64),
                    ("das", DataType::Int64),
                    ("cap", DataType::Int64),
                ])
                .unwrap(),
            ),
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(80)],
                vec![Value::Int(2), Value::Int(20), Value::Int(500)],
            ],
        )
        .unwrap();
        let (out, stats) =
            eval_gmdj_full(&b, &flow(), &detail_schema(), &op, &EvalOptions::default()).unwrap();
        assert_eq!(stats.blocks_compiled, 1);
        assert_eq!(stats.blocks_nested, 1);
        let sorted = out.sorted();
        // nb values: 100, 300, 50, 75 → (<80): 2 rows; (<500): 4 rows.
        assert_eq!(sorted.row(0)[3], Value::Int(2));
        assert_eq!(sorted.row(1)[3], Value::Int(4));
        // Interpreter agrees.
        let (out2, s2) = eval_gmdj_full(
            &b,
            &flow(),
            &detail_schema(),
            &op,
            &EvalOptions {
                compiled: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.sorted(), out2.sorted());
        assert_eq!(s2.blocks_compiled, 0);
    }

    /// Row-oriented detail sources have no columnar window, so they stay on
    /// the interpreter even with compilation enabled.
    #[test]
    fn relation_detail_never_compiles() {
        let rel = flow().to_relation();
        let (_, stats) = eval_gmdj_full(
            &base(),
            &rel,
            &detail_schema(),
            &count_sum_op(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(stats.blocks_compiled, 0);
        assert_eq!(stats.blocks_hashed, 1);
    }

    /// Parallel fan-out hands each worker a table window; the compiled path
    /// must count once per worker-block and still merge correctly.
    #[test]
    fn parallel_compiled_matches_serial() {
        let schema = detail_schema();
        let rows: Vec<Vec<Value>> = (0..8_192)
            .map(|i| {
                vec![
                    Value::Int(i % 5),
                    Value::Int(i % 3),
                    Value::Int((i * 37) % 211),
                ]
            })
            .collect();
        let t = Table::from_rows(schema.clone(), &rows).unwrap();
        let b = t.distinct_project(&[0, 1]).unwrap();
        let op = count_sum_op();
        let serial = eval_gmdj_full(&b, &t, &schema, &op, &EvalOptions::default()).unwrap();
        assert_eq!(serial.1.blocks_compiled, 1);
        let opts = EvalOptions {
            parallelism: 4,
            ..Default::default()
        };
        let (out, stats) = eval_gmdj_full(&b, &t, &schema, &op, &opts).unwrap();
        assert_eq!(out.sorted(), serial.0.sorted());
        assert!(stats.blocks_compiled >= 1);
    }

    /// NULL detail values flow through compiled kernels: null join keys
    /// never match, and null aggregate arguments are skipped by SUM.
    #[test]
    fn compiled_handles_null_keys_and_args() {
        let schema = detail_schema();
        let t = Table::from_rows(
            schema.clone(),
            &[
                vec![Value::Int(1), Value::Int(10), Value::Int(5)],
                vec![Value::Null, Value::Int(10), Value::Int(7)],
                vec![Value::Int(1), Value::Int(10), Value::Null],
            ],
        )
        .unwrap();
        let b = Relation::new(
            Arc::new(schema.project(&[0]).unwrap()),
            vec![vec![Value::Int(1)], vec![Value::Null]],
        )
        .unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c"),
                AggSpec::sum(Expr::detail(2), "s").unwrap(),
            ],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let (out, stats) = eval_gmdj_full(&b, &t, &schema, &op, &EvalOptions::default()).unwrap();
        assert_eq!(stats.blocks_compiled, 1);
        let sorted = out.sorted();
        // NULL base key matches nothing; group 1 sees rows {5, NULL}.
        assert_eq!(
            sorted.row(0),
            &vec![Value::Null, Value::Int(0), Value::Null]
        );
        assert_eq!(
            sorted.row(1),
            &vec![Value::Int(1), Value::Int(2), Value::Int(5)]
        );
    }

    fn write_flow_segments(name: &str, t: &Table, seg_rows: usize) -> SegmentFile {
        let dir =
            std::env::temp_dir().join(format!("skalla-gmdj-seg-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.seg");
        skalla_storage::write_segments(&path, t, seg_rows).unwrap();
        SegmentFile::open(&path).unwrap()
    }

    #[test]
    fn segmented_eval_matches_in_memory() {
        let schema = detail_schema();
        let rows: Vec<Vec<Value>> = (0..5_000)
            .map(|i| {
                vec![
                    Value::Int(i % 13),
                    Value::Int(i % 7),
                    Value::Int(i), // monotone → prunable under range θ
                ]
            })
            .collect();
        let t = Table::from_rows(schema.clone(), &rows).unwrap();
        let b = t.distinct_project(&[0, 1]).unwrap();
        let file = write_flow_segments("match", &t, 512);
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c"),
                AggSpec::sum(Expr::detail(2), "s").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1)))
                .and(Expr::detail(2).lt(Expr::lit(1000))),
        )]);
        let opts = EvalOptions {
            with_match_count: true,
            ..Default::default()
        };
        let (mem, _) = eval_gmdj_sub(&b, &t, &schema, &op, &opts).unwrap();
        let (seg, _, sc) = eval_gmdj_sub_segments(&b, &file, &op, &opts, true, None).unwrap();
        assert_eq!(seg.sorted(), mem.sorted());
        // nb < 1000 covers segments 0..2 (rows 0..1024): 2 scanned, 8 pruned.
        assert_eq!(sc.scanned, 2);
        assert_eq!(sc.pruned, 8);
        // Pruning off scans everything and still agrees.
        let (seg2, _, sc2) = eval_gmdj_sub_segments(&b, &file, &op, &opts, false, None).unwrap();
        assert_eq!(seg2.sorted(), mem.sorted());
        assert_eq!(sc2.scanned, 10);
        assert_eq!(sc2.pruned, 0);
    }

    #[test]
    fn segmented_range_matches_row_range() {
        let schema = detail_schema();
        let rows: Vec<Vec<Value>> = (0..3_000)
            .map(|i| {
                vec![
                    Value::Int(i % 5),
                    Value::Int(i % 3),
                    Value::Int(i * 7 % 999),
                ]
            })
            .collect();
        let t = Table::from_rows(schema.clone(), &rows).unwrap();
        let b = t.distinct_project(&[0]).unwrap();
        let file = write_flow_segments("range", &t, 256);
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::sum(Expr::detail(2), "s").unwrap()],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let opts = EvalOptions::default();
        // A window cutting through segment interiors (300..2050).
        let window = t.row_range(300, 2050).unwrap();
        let (mem, _) = eval_gmdj_full(&b, &window, &schema, &op, &opts).unwrap();
        let (seg, _, sc) =
            eval_gmdj_full_segments(&b, &file, &op, &opts, true, Some((300, 2050))).unwrap();
        assert_eq!(seg.sorted(), mem.sorted());
        // Rows 300..2050 touch segments 1..=8 of 12.
        assert_eq!(sc.scanned + sc.pruned, 8);
        // Dual agrees too.
        let dual_mem = eval_gmdj_dual(&b, &window, &schema, &op, &opts).unwrap();
        let (dual_seg, _) =
            eval_gmdj_dual_segments(&b, &file, &op, &opts, true, Some((300, 2050))).unwrap();
        assert_eq!(dual_seg.full.sorted(), dual_mem.full.sorted());
        assert_eq!(dual_seg.states, dual_mem.states);
        assert_eq!(dual_seg.match_counts, dual_mem.match_counts);
    }

    #[test]
    fn segmented_pruning_never_drops_matches() {
        // NaN/-0.0 payloads + a predicate riding the run boundary: the zone
        // check must keep every segment that holds a matching row.
        let schema = Schema::from_pairs([("g", DataType::Int64), ("x", DataType::Float64)])
            .unwrap()
            .into_arc();
        let rows: Vec<Vec<Value>> = (0..2_000)
            .map(|i| {
                vec![
                    Value::Int(i % 4),
                    if i % 41 == 0 {
                        Value::Float(f64::NAN)
                    } else if i % 29 == 0 {
                        Value::Float(-0.0)
                    } else if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Float((i as f64) - 1000.0)
                    },
                ]
            })
            .collect();
        let t = Table::from_rows(schema.clone(), &rows).unwrap();
        let b = t.distinct_project(&[0]).unwrap();
        let file = write_flow_segments("nan", &t, 128);
        for theta_extra in [
            Expr::detail(1).ge(Expr::lit(0.0)),
            Expr::detail(1).lt(Expr::lit(-500.0)),
            Expr::detail(1).eq(Expr::lit(-0.0)),
        ] {
            let op = GmdjOp::new(vec![GmdjBlock::new(
                vec![AggSpec::count_star("c")],
                Expr::base(0).eq(Expr::detail(0)).and(theta_extra),
            )]);
            let opts = EvalOptions::default();
            let (mem, _) = eval_gmdj_full(&b, &t, &schema, &op, &opts).unwrap();
            let (seg, _, _) = eval_gmdj_full_segments(&b, &file, &op, &opts, true, None).unwrap();
            assert_eq!(seg.sorted(), mem.sorted());
        }
    }

    #[test]
    fn empty_detail_yields_identity_aggregates() {
        let t = Table::empty(detail_schema());
        let (out, stats) = eval_gmdj_full(
            &base(),
            &t,
            &detail_schema(),
            &count_sum_op(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        for r in out.rows() {
            assert_eq!(r[2], Value::Int(0));
            assert_eq!(r[3], Value::Null);
        }
        assert_eq!(stats.matches, 0);
    }
}
