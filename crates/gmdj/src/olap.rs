//! Classical OLAP query forms, expressed as GMDJ expressions.
//!
//! The paper's §1/§2 argue that the GMDJ uniformly captures the OLAP
//! constructs proposed in the literature — Gray et al.'s `CUBE BY` \[12],
//! the `unpivot` operator used for marginal distributions \[11], and
//! multi-feature queries \[18]. This module provides constructors that
//! build those query shapes so they can be evaluated by any Skalla
//! evaluator (centralized or distributed):
//!
//! * [`cube_expr`] / [`rollup_expr`] — a data cube / rollup over a set of
//!   dimensions. The base-values relation enumerates every grouping
//!   combination with `NULL` as the `ALL` marker (exactly Gray et al.'s
//!   representation), and a *single* GMDJ with the condition
//!   `⋀ᵢ (b.dᵢ IS NULL OR b.dᵢ = r.dᵢ)` computes every cell.
//! * [`unpivot_expr`] — the marginal distribution of a set of attributes:
//!   one row per (attribute, value) pair with a count, built as a GMDJ per
//!   attribute over an explicit base.
//! * [`multi_feature_expr`] — the Ross/Srivastava/Chatziantoniou shape:
//!   per group, aggregates at several granularities that reference each
//!   other (a chain of correlated GMDJs).

use std::collections::BTreeSet;
use std::sync::Arc;

use skalla_expr::Expr;
use skalla_types::{Relation, Result, Row, Schema, SkallaError, Value};

use crate::agg::AggSpec;
use crate::eval::DetailSource;
use crate::op::{BaseSpec, GmdjBlock, GmdjExpr, GmdjOp};

/// Build the cube base-values relation: for every subset of `dims`, the
/// distinct value combinations present in `detail`, with `NULL` (= `ALL`)
/// in the positions outside the subset.
///
/// The relation has one row per cube cell and schema = the dimension
/// columns of `detail` (in `dims` order).
pub fn build_cube_base<D: DetailSource>(
    detail: &D,
    detail_schema: &Schema,
    dims: &[usize],
) -> Result<Relation> {
    let fields: Vec<_> =
        dims.iter()
            .map(|&d| {
                detail_schema.fields().get(d).cloned().ok_or_else(|| {
                    SkallaError::schema(format!("dimension column {d} out of range"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
    let schema = Arc::new(Schema::new(fields)?);

    // Distinct full-dimensional combinations first.
    let mut full: BTreeSet<Row> = BTreeSet::new();
    for i in 0..detail.num_rows() {
        let row = detail.get_row(i);
        full.insert(dims.iter().map(|&d| row[d].clone()).collect());
    }

    // Project each combination onto every subset (ALL = NULL elsewhere).
    let mut cells: BTreeSet<Row> = BTreeSet::new();
    let n = dims.len();
    for mask in 0..(1u32 << n) {
        for combo in &full {
            let cell: Row = (0..n)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        combo[i].clone()
                    } else {
                        Value::Null
                    }
                })
                .collect();
            cells.insert(cell);
        }
    }
    Relation::new(schema, cells.into_iter().collect())
}

/// Build a rollup base: like [`build_cube_base`] but only the hierarchical
/// prefixes (`(d₁, …, dₖ, ALL, …, ALL)` for every `k`).
pub fn build_rollup_base<D: DetailSource>(
    detail: &D,
    detail_schema: &Schema,
    dims: &[usize],
) -> Result<Relation> {
    let fields: Vec<_> =
        dims.iter()
            .map(|&d| {
                detail_schema.fields().get(d).cloned().ok_or_else(|| {
                    SkallaError::schema(format!("dimension column {d} out of range"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
    let schema = Arc::new(Schema::new(fields)?);

    let mut full: BTreeSet<Row> = BTreeSet::new();
    for i in 0..detail.num_rows() {
        let row = detail.get_row(i);
        full.insert(dims.iter().map(|&d| row[d].clone()).collect());
    }
    let n = dims.len();
    let mut cells: BTreeSet<Row> = BTreeSet::new();
    for k in 0..=n {
        for combo in &full {
            let cell: Row = (0..n)
                .map(|i| if i < k { combo[i].clone() } else { Value::Null })
                .collect();
            cells.insert(cell);
        }
    }
    Relation::new(schema, cells.into_iter().collect())
}

/// The cube matching condition: `⋀ᵢ (b.i IS NULL OR b.i = r.dims[i])`.
///
/// A `NULL` (`ALL`) dimension matches every detail tuple; a concrete value
/// matches by equality. Note this deliberately exploits the GMDJ's
/// overlapping-`RNG` semantics: a detail tuple contributes to *every* cell
/// that covers it.
pub fn cube_theta(dims: &[usize]) -> Expr {
    Expr::conjunction(dims.iter().enumerate().map(|(i, &d)| {
        Expr::base(i)
            .is_null()
            .or(Expr::base(i).eq(Expr::detail(d)))
    }))
}

/// A full data cube over `dims` of the named detail relation, computing
/// `aggs` in every cell. The base relation must be built with
/// [`build_cube_base`] (the coordinator holds it; cube cells are not a
/// distinct projection of the detail relation).
pub fn cube_expr(
    base: Relation,
    detail_name: impl Into<String>,
    dims: &[usize],
    aggs: Vec<AggSpec>,
) -> Result<GmdjExpr> {
    let key: Vec<usize> = (0..dims.len()).collect();
    let op = GmdjOp::new(vec![GmdjBlock::new(aggs, cube_theta(dims))]);
    GmdjExpr::new(BaseSpec::Relation(base), detail_name, vec![op], key)
}

/// A rollup over `dims`: same operator as the cube, hierarchical base.
pub fn rollup_expr(
    base: Relation,
    detail_name: impl Into<String>,
    dims: &[usize],
    aggs: Vec<AggSpec>,
) -> Result<GmdjExpr> {
    cube_expr(base, detail_name, dims, aggs)
}

/// An unpivot/marginal-distribution query: for each listed attribute, the
/// count of each of its values. The base has schema `(attr UTF8, value)`
/// where `value` must share one type across attributes; one GMDJ block per
/// attribute guards the count.
///
/// Returns the expression and the base relation (held at the coordinator).
pub fn unpivot_expr<D: DetailSource>(
    detail: &D,
    detail_schema: &Schema,
    detail_name: impl Into<String>,
    attrs: &[usize],
) -> Result<(GmdjExpr, Relation)> {
    if attrs.is_empty() {
        return Err(SkallaError::plan("unpivot needs at least one attribute"));
    }
    let vtype = detail_schema.field(attrs[0]).dtype;
    for &a in attrs {
        if detail_schema.field(a).dtype != vtype {
            return Err(SkallaError::plan(
                "unpivot attributes must share one value type",
            ));
        }
    }
    let schema = Arc::new(Schema::from_pairs([
        ("attr", skalla_types::DataType::Utf8),
        ("value", vtype),
    ])?);

    let mut rows: BTreeSet<Row> = BTreeSet::new();
    for i in 0..detail.num_rows() {
        let row = detail.get_row(i);
        for &a in attrs {
            rows.insert(vec![
                Value::str(detail_schema.field(a).name.clone()),
                row[a].clone(),
            ]);
        }
    }
    let base = Relation::new(schema, rows.into_iter().collect())?;

    // One block per attribute: count detail rows whose attribute value
    // matches, guarded by the attr-name discriminator.
    let blocks: Vec<GmdjBlock> = attrs
        .iter()
        .map(|&a| {
            GmdjBlock::new(
                vec![AggSpec::count_star(format!(
                    "cnt_{}",
                    detail_schema.field(a).name
                ))],
                Expr::base(0)
                    .eq(Expr::lit(detail_schema.field(a).name.as_str()))
                    .and(Expr::base(1).eq(Expr::detail(a))),
            )
        })
        .collect();
    let expr = GmdjExpr::new(
        BaseSpec::Relation(base.clone()),
        detail_name,
        vec![GmdjOp::new(blocks)],
        vec![0, 1],
    )?;
    Ok((expr, base))
}

/// A multi-feature query (paper ref \[18]): per group, a chain of
/// aggregates where each stage's condition may reference earlier results.
/// `stages` supplies, per stage, the aggregates and a θ builder receiving
/// the index where that stage's base columns start.
pub fn multi_feature_expr(
    group_cols: Vec<usize>,
    detail_name: impl Into<String>,
    stages: Vec<(Vec<AggSpec>, Expr)>,
) -> Result<GmdjExpr> {
    if stages.is_empty() {
        return Err(SkallaError::plan("multi-feature query needs stages"));
    }
    let key: Vec<usize> = (0..group_cols.len()).collect();
    let ops = stages
        .into_iter()
        .map(|(aggs, theta)| GmdjOp::new(vec![GmdjBlock::new(aggs, theta)]))
        .collect();
    GmdjExpr::new(
        BaseSpec::DistinctProject { cols: group_cols },
        detail_name,
        ops,
        key,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::eval_expr_centralized;
    use skalla_storage::{Catalog, Table};
    use skalla_types::DataType;

    fn sales() -> (Table, Catalog) {
        let schema = Schema::from_pairs([
            ("region", DataType::Utf8),
            ("product", DataType::Utf8),
            ("amount", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        let rows = vec![
            vec![Value::str("east"), Value::str("ale"), Value::Int(10)],
            vec![Value::str("east"), Value::str("ale"), Value::Int(20)],
            vec![Value::str("east"), Value::str("rye"), Value::Int(5)],
            vec![Value::str("west"), Value::str("ale"), Value::Int(7)],
        ];
        let t = Table::from_rows(schema, &rows).unwrap();
        let mut c = Catalog::new();
        c.register("sales", t.clone());
        (t, c)
    }

    #[test]
    fn cube_base_enumerates_all_cells() {
        let (t, _) = sales();
        let base = build_cube_base(&t, t.schema(), &[0, 1]).unwrap();
        // Cells: (ALL,ALL); (east,ALL),(west,ALL); (ALL,ale),(ALL,rye);
        // (east,ale),(east,rye),(west,ale) = 8.
        assert_eq!(base.len(), 8);
        assert!(base.rows().contains(&vec![Value::Null, Value::Null]));
        assert!(base.rows().contains(&vec![Value::str("west"), Value::Null]));
        // (west, rye) never occurs in the data → not a cell.
        assert!(!base
            .rows()
            .contains(&vec![Value::str("west"), Value::str("rye")]));
    }

    #[test]
    fn cube_totals_are_correct() {
        let (t, c) = sales();
        let base = build_cube_base(&t, t.schema(), &[0, 1]).unwrap();
        let expr = cube_expr(
            base,
            "sales",
            &[0, 1],
            vec![
                AggSpec::count_star("cnt"),
                AggSpec::sum(Expr::detail(2), "total").unwrap(),
            ],
        )
        .unwrap();
        let out = eval_expr_centralized(&expr, &c).unwrap();
        let get = |region: Value, product: Value| -> (i64, i64) {
            let row = out
                .rows()
                .iter()
                .find(|r| r[0] == region && r[1] == product)
                .unwrap();
            (row[2].as_int().unwrap(), row[3].as_int().unwrap())
        };
        assert_eq!(get(Value::Null, Value::Null), (4, 42)); // grand total
        assert_eq!(get(Value::str("east"), Value::Null), (3, 35));
        assert_eq!(get(Value::Null, Value::str("ale")), (3, 37));
        assert_eq!(get(Value::str("east"), Value::str("ale")), (2, 30));
        assert_eq!(get(Value::str("west"), Value::str("ale")), (1, 7));
    }

    #[test]
    fn rollup_base_is_hierarchical() {
        let (t, _) = sales();
        let base = build_rollup_base(&t, t.schema(), &[0, 1]).unwrap();
        // (ALL,ALL); (east,ALL),(west,ALL); 3 full combos = 6 cells.
        assert_eq!(base.len(), 6);
        assert!(!base.rows().contains(&vec![Value::Null, Value::str("ale")]));
    }

    #[test]
    fn rollup_totals_match_cube_on_shared_cells() {
        let (t, c) = sales();
        let cube_base = build_cube_base(&t, t.schema(), &[0, 1]).unwrap();
        let rollup_base = build_rollup_base(&t, t.schema(), &[0, 1]).unwrap();
        let aggs = || vec![AggSpec::sum(Expr::detail(2), "total").unwrap()];
        let cube =
            eval_expr_centralized(&cube_expr(cube_base, "sales", &[0, 1], aggs()).unwrap(), &c)
                .unwrap();
        let rollup = eval_expr_centralized(
            &rollup_expr(rollup_base, "sales", &[0, 1], aggs()).unwrap(),
            &c,
        )
        .unwrap();
        for r in rollup.rows() {
            assert!(
                cube.rows().contains(r),
                "rollup cell {r:?} missing from cube"
            );
        }
    }

    #[test]
    fn unpivot_counts_marginals() {
        let (t, c) = sales();
        let (expr, base) = unpivot_expr(&t, t.schema(), "sales", &[0, 1]).unwrap();
        // attr/value pairs: (region,east),(region,west),(product,ale),(product,rye)
        assert_eq!(base.len(), 4);
        let out = eval_expr_centralized(&expr, &c).unwrap();
        // Block guards are disjoint: exactly one count column is non-zero
        // per row; the right one carries the marginal frequency.
        let find = |attr: &str, value: &str| -> Vec<i64> {
            let row = out
                .rows()
                .iter()
                .find(|r| r[0] == Value::str(attr) && r[1] == Value::str(value))
                .unwrap();
            vec![row[2].as_int().unwrap(), row[3].as_int().unwrap()]
        };
        assert_eq!(find("region", "east"), vec![3, 0]);
        assert_eq!(find("region", "west"), vec![1, 0]);
        assert_eq!(find("product", "ale"), vec![0, 3]);
        assert_eq!(find("product", "rye"), vec![0, 1]);
    }

    #[test]
    fn unpivot_rejects_mixed_types_and_empty() {
        let (t, _) = sales();
        assert!(unpivot_expr(&t, t.schema(), "sales", &[0, 2]).is_err());
        assert!(unpivot_expr(&t, t.schema(), "sales", &[]).is_err());
    }

    #[test]
    fn multi_feature_chain() {
        let (_, c) = sales();
        // Per region: max amount, then the count of sales at that max.
        let stage1 = (
            vec![AggSpec::max(Expr::detail(2), "mx").unwrap()],
            Expr::base(0).eq(Expr::detail(0)),
        );
        // After stage 1 the base is (region, mx): mx is base col 1.
        let stage2 = (
            vec![AggSpec::count_star("at_max")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::detail(2).eq(Expr::base(1))),
        );
        let expr = multi_feature_expr(vec![0], "sales", vec![stage1, stage2]).unwrap();
        let out = eval_expr_centralized(&expr, &c).unwrap().sorted();
        assert_eq!(
            out.row(0),
            &vec![Value::str("east"), Value::Int(20), Value::Int(1)]
        );
        assert_eq!(
            out.row(1),
            &vec![Value::str("west"), Value::Int(7), Value::Int(1)]
        );
        assert!(multi_feature_expr(vec![0], "sales", vec![]).is_err());
    }
}
