#![warn(missing_docs)]

//! # skalla-gmdj
//!
//! The GMDJ (Generalized Multi-Dimensional Join) operator — the algebraic
//! workhorse of Skalla (paper §2.2, Definition 1) — together with:
//!
//! * [`agg`] — aggregate functions (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`)
//!   with the *sub-aggregate / super-aggregate* decomposition of Theorem 1
//!   (following Gray et al.): sites accumulate sub-aggregate state, the
//!   coordinator merges state, and final values are produced by `finalize`.
//! * [`op`] — the [`GmdjBlock`] (one `(lᵢ, θᵢ)` pair), the [`GmdjOp`]
//!   (one `MD` application), and the chained [`GmdjExpr`]
//!   (`MDₙ(⋯MD₁(B₀, R, …)⋯)`).
//! * [`eval`] — local evaluation of one GMDJ over a columnar detail table,
//!   with a hash strategy for equi-join conditions and a nested-loop
//!   fallback, in either *sub-aggregate* mode (for distributed rounds) or
//!   *full* mode (finalized outputs).
//! * [`centralized`] — a single-site reference evaluator for whole GMDJ
//!   expressions; the distributed executor is tested for equivalence
//!   against it (Theorem 3).
//! * [`coalesce`] — the GMDJ coalescing transformation of §4.3: adjacent
//!   GMDJs merge into one when the outer conditions do not reference the
//!   inner operator's outputs.
//! * [`slots`] — typed per-group state columns ([`AggSlot`]) for the
//!   coordinator's Theorem 1 merge path, bit-for-bit equivalent to
//!   [`AggSpec::merge`](agg::AggSpec::merge).

pub mod agg;
pub mod centralized;
pub mod coalesce;
mod compiled;
pub mod eval;
pub mod olap;
pub mod op;
pub mod slots;
pub mod sql;

pub use agg::{AggFunc, AggSpec};
pub use centralized::eval_expr_centralized;
pub use coalesce::{coalesce_chain, try_coalesce};
pub use eval::{
    eval_gmdj_dual, eval_gmdj_dual_segments, eval_gmdj_full, eval_gmdj_full_segments,
    eval_gmdj_sub, eval_gmdj_sub_segments, DualResult, EvalOptions, EvalStats, LocalStrategy,
    SegScanStats,
};
pub use olap::{
    build_cube_base, build_rollup_base, cube_expr, cube_theta, multi_feature_expr, rollup_expr,
    unpivot_expr,
};
pub use op::{BaseSpec, GmdjBlock, GmdjExpr, GmdjOp, MATCH_COUNT_COL};
pub use slots::{slots_for_specs, AggSlot, MergeScratch};
pub use sql::to_sql;
