//! Reduction of GMDJ expressions to standard SQL.
//!
//! The paper's companion work (ref \[2], *"Generalized MD-joins: Evaluation
//! and reduction to SQL"*) shows every GMDJ expression can be rewritten
//! into plain SQL; Skalla's local warehouses could therefore be any SQL
//! DBMS (the paper uses Daytona). This module renders a [`GmdjExpr`] as a
//! portable SQL statement — one CTE per evaluation stage, with each
//! aggregate computed by a correlated scalar subquery (the direct
//! transcription of Definition 1's `f{{t[c] | t ∈ RNG(b, R, θ)}}`):
//!
//! ```sql
//! WITH b0 AS (SELECT DISTINCT sas, das FROM flow),
//! b1 AS (
//!   SELECT b.*,
//!     (SELECT COUNT(*) FROM flow r WHERE (b.sas = r.sas)) AS cnt1
//!   FROM b0 b
//! )
//! SELECT * FROM b1
//! ```
//!
//! The output is valid against SQLite/PostgreSQL-class engines and is used
//! for interop, debugging, and documentation; Skalla itself evaluates the
//! algebra natively.

use std::fmt::Write;

use skalla_expr::{BinOp, Expr, UnOp};
use skalla_types::{Result, Schema, SkallaError, Value};

use crate::agg::{AggFunc, AggSpec};
use crate::op::{BaseSpec, GmdjExpr};

/// Render a whole GMDJ expression as a SQL statement.
///
/// `detail_schema` supplies column names for the detail relation; base
/// column names evolve with the computed aggregates exactly as in
/// [`GmdjExpr::base_schema_after`].
pub fn to_sql(expr: &GmdjExpr, detail_schema: &Schema) -> Result<String> {
    let mut out = String::new();

    // Stage 0: the base-values relation.
    let base_schema = expr.base_schema(detail_schema)?;
    match &expr.base {
        BaseSpec::DistinctProject { cols } => {
            let names: Vec<&str> = cols
                .iter()
                .map(|&c| detail_schema.field(c).name.as_str())
                .collect();
            let _ = write!(
                out,
                "WITH b0 AS (SELECT DISTINCT {} FROM {})",
                names.join(", "),
                expr.detail_name
            );
        }
        BaseSpec::Relation(rel) => {
            // Inline the explicit base as a VALUES list.
            if rel.is_empty() {
                return Err(SkallaError::plan(
                    "cannot render an empty explicit base relation as SQL",
                ));
            }
            let cols = rel.schema().names().join(", ");
            let mut values = Vec::with_capacity(rel.len());
            for row in rel.rows() {
                let rendered: Vec<String> = row.iter().map(sql_value).collect();
                values.push(format!("({})", rendered.join(", ")));
            }
            let _ = write!(out, "WITH b0({cols}) AS (VALUES {})", values.join(", "));
        }
    }

    // One CTE per GMDJ operator.
    let mut current = base_schema;
    for (k, op) in expr.ops.iter().enumerate() {
        let detail_name = expr.detail_for_op(k);
        let _ = write!(out, ",\nb{} AS (\n  SELECT b.*", k + 1);
        for block in &op.blocks {
            for agg in &block.aggs {
                let _ = write!(
                    out,
                    ",\n    ({}) AS {}",
                    scalar_subquery(agg, &block.theta, detail_name, &current, detail_schema)?,
                    agg.name
                );
            }
        }
        let _ = write!(out, "\n  FROM b{k} b\n)");
        current = current.extended(&op.output_fields(detail_schema)?)?;
    }

    let _ = write!(out, "\nSELECT * FROM b{}", expr.ops.len());
    Ok(out)
}

fn scalar_subquery(
    agg: &AggSpec,
    theta: &Expr,
    detail_name: &str,
    base: &Schema,
    detail: &Schema,
) -> Result<String> {
    let func = match agg.func {
        AggFunc::Count => "COUNT",
        AggFunc::Sum => "SUM",
        AggFunc::Avg => "AVG",
        AggFunc::Min => "MIN",
        AggFunc::Max => "MAX",
    };
    let arg = match &agg.arg {
        None => "*".to_string(),
        Some(e) => render_expr(e, base, detail)?,
    };
    Ok(format!(
        "SELECT {func}({arg}) FROM {detail_name} r WHERE {}",
        render_expr(theta, base, detail)?
    ))
}

/// Render a scalar expression with `b.`/`r.` correlation names.
pub fn render_expr(e: &Expr, base: &Schema, detail: &Schema) -> Result<String> {
    Ok(match e {
        Expr::Lit(v) => sql_value(v),
        Expr::BaseCol(i) => {
            let f = base
                .fields()
                .get(*i)
                .ok_or_else(|| SkallaError::schema(format!("base column {i} out of range")))?;
            format!("b.{}", f.name)
        }
        Expr::DetailCol(i) => {
            let f = detail
                .fields()
                .get(*i)
                .ok_or_else(|| SkallaError::schema(format!("detail column {i} out of range")))?;
            format!("r.{}", f.name)
        }
        Expr::Binary { op, lhs, rhs } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
            };
            format!(
                "({} {o} {})",
                render_expr(lhs, base, detail)?,
                render_expr(rhs, base, detail)?
            )
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => format!("(-{})", render_expr(expr, base, detail)?),
            UnOp::Not => format!("(NOT {})", render_expr(expr, base, detail)?),
            UnOp::IsNull => format!("({} IS NULL)", render_expr(expr, base, detail)?),
        },
        Expr::InSet { expr, set } => {
            if set.is_empty() {
                // SQL has no empty IN list; render the equivalent FALSE
                // (with NULL propagation preserved by the AND).
                return Ok(format!(
                    "({} IS NOT NULL AND 1 = 0)",
                    render_expr(expr, base, detail)?
                ));
            }
            let items: Vec<String> = set.iter().map(sql_value).collect();
            format!(
                "({} IN ({}))",
                render_expr(expr, base, detail)?,
                items.join(", ")
            )
        }
    })
}

fn sql_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{GmdjBlock, GmdjOp};
    use skalla_types::{DataType, Relation};
    use std::sync::Arc;

    fn detail() -> Schema {
        Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
    }

    fn example1() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::sum(Expr::detail(2), "sum1").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::base(1).eq(Expr::detail(1)))
                .and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2)))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn example1_renders_to_expected_sql() {
        let sql = to_sql(&example1(), &detail()).unwrap();
        let expected = "\
WITH b0 AS (SELECT DISTINCT sas, das FROM flow),
b1 AS (
  SELECT b.*,
    (SELECT COUNT(*) FROM flow r WHERE ((b.sas = r.sas) AND (b.das = r.das))) AS cnt1,
    (SELECT SUM(r.nb) FROM flow r WHERE ((b.sas = r.sas) AND (b.das = r.das))) AS sum1
  FROM b0 b
),
b2 AS (
  SELECT b.*,
    (SELECT COUNT(*) FROM flow r WHERE (((b.sas = r.sas) AND (b.das = r.das)) AND (r.nb >= (b.sum1 / b.cnt1)))) AS cnt2
  FROM b1 b
)
SELECT * FROM b2";
        assert_eq!(sql, expected);
    }

    #[test]
    fn explicit_base_becomes_values() {
        let base_schema = Schema::from_pairs([("k", DataType::Int64)]).unwrap();
        let base = Relation::new(
            Arc::new(base_schema),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let e = GmdjExpr::new(BaseSpec::Relation(base), "flow", vec![op], vec![0]).unwrap();
        let sql = to_sql(&e, &detail()).unwrap();
        assert!(sql.starts_with("WITH b0(k) AS (VALUES (1), (2))"));
        assert!(sql.contains("(SELECT COUNT(*) FROM flow r WHERE (b.k = r.sas)) AS c"));

        let empty = Relation::empty(
            Schema::from_pairs([("k", DataType::Int64)])
                .unwrap()
                .into_arc(),
        );
        let e = GmdjExpr::new(
            BaseSpec::Relation(empty),
            "flow",
            vec![GmdjOp::new(vec![GmdjBlock::new(
                vec![AggSpec::count_star("c")],
                Expr::lit(true),
            )])],
            vec![0],
        )
        .unwrap();
        assert!(to_sql(&e, &detail()).is_err());
    }

    #[test]
    fn values_escape_and_render() {
        assert_eq!(sql_value(&Value::Null), "NULL");
        assert_eq!(sql_value(&Value::Int(-3)), "-3");
        assert_eq!(sql_value(&Value::Float(2.5)), "2.5");
        assert_eq!(sql_value(&Value::Float(4.0)), "4.0");
        assert_eq!(sql_value(&Value::Bool(true)), "TRUE");
        assert_eq!(sql_value(&Value::str("it's")), "'it''s'");
    }

    #[test]
    fn operators_and_special_forms_render() {
        let d = detail();
        let b = Schema::from_pairs([("g", DataType::Int64)]).unwrap();
        let cases = [
            (Expr::base(0).ne(Expr::lit(1)), "(b.g <> 1)"),
            (Expr::detail(2).rem(Expr::lit(2)), "(r.nb % 2)"),
            (Expr::base(0).is_null(), "(b.g IS NULL)"),
            (Expr::base(0).not(), "(NOT b.g)"),
            (Expr::base(0).neg(), "(-b.g)"),
            (
                Expr::base(0).in_set([Value::Int(1), Value::str("x")]),
                "(b.g IN (1, 'x'))",
            ),
        ];
        for (e, want) in cases {
            assert_eq!(render_expr(&e, &b, &d).unwrap(), want);
        }
        // Empty IN set.
        let e = Expr::base(0).in_set([] as [Value; 0]);
        assert_eq!(
            render_expr(&e, &b, &d).unwrap(),
            "(b.g IS NOT NULL AND 1 = 0)"
        );
        // Out-of-range columns error.
        assert!(render_expr(&Expr::base(9), &b, &d).is_err());
        assert!(render_expr(&Expr::detail(9), &b, &d).is_err());
    }
}
