//! CRC32C (Castagnoli) — the block checksum of the segment store.
//!
//! Hand-rolled and std-only: the reflected Castagnoli polynomial
//! `0x82F63B78`, the same polynomial iSCSI, ext4, and most columnar
//! stores use for on-disk block integrity (its error-detection
//! properties for short burst errors are why). On x86-64 with SSE 4.2
//! the hardware `crc32` instruction does 8 bytes per cycle-ish; the
//! portable fallback is slice-by-8 (eight 256-entry tables built at
//! compile time, one table lookup per byte but eight bytes per
//! iteration), so verification cost stays well under the decode cost of
//! the chunk it guards on every target.

/// Reflected CRC32C polynomial (Castagnoli).
const POLY: u32 = 0x82F6_3B78;

/// Eight slice-by-8 tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` is the CRC contribution of byte `b` seen `k`
/// positions earlier in an 8-byte window.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC32C of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// standard Castagnoli parameterization, so test vectors from other
/// implementations match).
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Continue a CRC32C over more data: `crc32c_append(crc32c(a), b)` equals
/// `crc32c(a ‖ b)`.
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: guarded by the runtime SSE 4.2 check above.
        return unsafe { crc32c_hw(crc, data) };
    }
    crc32c_sw(crc, data)
}

/// Hardware path: the SSE 4.2 `crc32` instruction implements exactly the
/// reflected-Castagnoli step, 8 input bytes at a time.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut wide = u64::from(!crc);
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        wide = _mm_crc32_u64(wide, u64::from_le_bytes(ch.try_into().unwrap()));
    }
    let mut c = wide as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    !c
}

/// Portable path: slice-by-8 — fold one aligned 8-byte window per
/// iteration through the eight precomputed tables.
fn crc32c_sw(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        // 32 bytes of zeros (iSCSI test vector).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn software_path_matches_dispatch_at_every_length() {
        // Exercises all remainder lengths 0..8 on both sides of the
        // slice-by-8 window, and (on x86-64 hosts) pins the hardware
        // path to the portable one.
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in (0..64).chain([255, 256, 257, 1023, 1024]) {
            assert_eq!(
                crc32c_sw(0, &data[..len]),
                crc32c(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn append_composes() {
        let whole = crc32c(b"hello, segment store");
        let split = crc32c_append(crc32c(b"hello, seg"), b"ment store");
        assert_eq!(whole, split);
        // And through the software path explicitly.
        let split_sw = crc32c_sw(crc32c_sw(0, b"hello, seg"), b"ment store");
        assert_eq!(whole, split_sw);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let good = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32c(&bad), good, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
