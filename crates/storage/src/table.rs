//! The columnar [`Table`].

use std::sync::Arc;

use skalla_expr::{eval_detail, eval_predicate, Batch, Expr};
use skalla_types::{Relation, Result, Row, Schema, SkallaError, Value};

use crate::column::Column;

/// An append-only columnar table with a fixed schema.
///
/// Tables hold the *detail* (fact) data at each site. Base-values relations
/// and query results use the row-oriented [`Relation`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    len: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Table {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.dtype))
            .collect();
        Table {
            schema,
            columns,
            len: 0,
        }
    }

    /// Build a table directly from columns (lengths and types must agree
    /// with the schema).
    pub fn from_columns(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Table> {
        if columns.len() != schema.len() {
            return Err(SkallaError::schema(format!(
                "{} columns given, schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let mut len = None;
        for (c, f) in columns.iter().zip(schema.fields()) {
            if c.data_type() != f.dtype {
                return Err(SkallaError::schema(format!(
                    "column `{}` has type {}, got {}",
                    f.name,
                    f.dtype,
                    c.data_type()
                )));
            }
            match len {
                None => len = Some(c.len()),
                Some(l) if l != c.len() => {
                    return Err(SkallaError::schema(format!(
                        "column `{}` has {} rows, expected {}",
                        f.name,
                        c.len(),
                        l
                    )))
                }
                _ => {}
            }
        }
        Ok(Table {
            schema,
            columns,
            len: len.unwrap_or(0),
        })
    }

    /// Build a table from rows.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Row]) -> Result<Table> {
        let mut b = TableBuilder::new(schema);
        for r in rows {
            b.push_row(r)?;
        }
        Ok(b.finish())
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// A zero-copy [`Batch`] view of rows `start..start + len` across all
    /// columns, for the compiled kernel path.
    pub fn batch(&self, start: usize, len: usize) -> Batch<'_> {
        Batch::new(
            self.columns.iter().map(|c| c.batch(start, len)).collect(),
            len,
        )
    }

    /// Iterate over materialized rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(|i| self.row(i))
    }

    /// Row indices whose rows satisfy the (detail-only) predicate.
    pub fn filter_indices(&self, pred: &Expr) -> Result<Vec<u32>> {
        let mut out = Vec::new();
        let empty: Row = Vec::new();
        for i in 0..self.len {
            let row = self.row(i);
            if eval_predicate(pred, &empty, &row)? {
                out.push(i as u32);
            }
        }
        Ok(out)
    }

    /// A new table with only the rows at `indices`.
    pub fn take(&self, indices: &[u32]) -> Table {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
            len: indices.len(),
        }
    }

    /// A new table with the contiguous rows `start..end` — the
    /// materialization of a range-addressed partition fragment
    /// ([`crate::partition::PartFrag`]). Column payloads are sliced as
    /// typed vectors, so this is a straight memcpy per column.
    pub fn row_range(&self, start: usize, end: usize) -> Result<Table> {
        if start > end || end > self.len {
            return Err(SkallaError::exec(format!(
                "row range {start}..{end} out of bounds for table of {} rows",
                self.len
            )));
        }
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice_rows(start, end))
            .collect();
        Ok(Table {
            schema: self.schema.clone(),
            columns,
            len: end - start,
        })
    }

    /// A new table with the rows satisfying the (detail-only) predicate.
    pub fn filter(&self, pred: &Expr) -> Result<Table> {
        Ok(self.take(&self.filter_indices(pred)?))
    }

    /// Evaluate a detail-only scalar expression for every row.
    pub fn eval_column(&self, expr: &Expr) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            let row = self.row(i);
            out.push(eval_detail(expr, &row)?);
        }
        Ok(out)
    }

    /// Project onto columns `indices` as a (columnar) table.
    pub fn project(&self, indices: &[usize]) -> Result<Table> {
        let schema = Arc::new(self.schema.project(indices)?);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Ok(Table {
            schema,
            columns,
            len: self.len,
        })
    }

    /// The *distinct* projection onto `indices`, as a row-oriented
    /// [`Relation`] — this is how base-values relations such as
    /// `π_{SAS,DAS}(Flow)` (paper Example 1) are computed at each site.
    pub fn distinct_project(&self, indices: &[usize]) -> Result<Relation> {
        let schema = Arc::new(self.schema.project(indices)?);
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for i in 0..self.len {
            let key: Row = indices.iter().map(|&c| self.columns[c].get(i)).collect();
            if seen.insert(key.clone()) {
                rows.push(key);
            }
        }
        Ok(Relation::from_rows_unchecked(schema, rows))
    }

    /// Convert the whole table to a row-oriented [`Relation`].
    pub fn to_relation(&self) -> Relation {
        Relation::from_rows_unchecked(self.schema.clone(), self.iter_rows().collect())
    }

    /// Concatenate tables with identical schemas.
    pub fn concat(parts: &[Table]) -> Result<Table> {
        let first = parts
            .first()
            .ok_or_else(|| SkallaError::schema("concat of zero tables"))?;
        let total: usize = parts.iter().map(|p| p.len).sum();
        let mut columns: Vec<Column> = first
            .columns
            .iter()
            .map(|c| Column::with_capacity(c.data_type(), total))
            .collect();
        for p in parts {
            if *p.schema != *first.schema {
                return Err(SkallaError::schema("concat of mismatched schemas"));
            }
            for (out, src) in columns.iter_mut().zip(&p.columns) {
                out.append_range(src, 0, p.len)?;
            }
        }
        Ok(Table {
            schema: first.schema.clone(),
            columns,
            len: total,
        })
    }
}

/// Row-at-a-time builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    len: usize,
}

impl TableBuilder {
    /// A builder for the given schema.
    pub fn new(schema: Arc<Schema>) -> TableBuilder {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.dtype))
            .collect();
        TableBuilder {
            schema,
            columns,
            len: 0,
        }
    }

    /// A builder with reserved row capacity.
    pub fn with_capacity(schema: Arc<Schema>, cap: usize) -> TableBuilder {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, cap))
            .collect();
        TableBuilder {
            schema,
            columns,
            len: 0,
        }
    }

    /// Append one row (values cloned).
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(SkallaError::schema(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v.clone())?;
        }
        self.len += 1;
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finish into a [`Table`].
    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::DataType;

    #[test]
    fn row_range_slices_and_bounds_check() {
        let t = flow_table();
        let n = t.len();
        let mid = t.row_range(1, n).unwrap();
        assert_eq!(mid.len(), n - 1);
        assert_eq!(mid.row(0), t.row(1));
        let empty = t.row_range(2, 2).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.schema(), t.schema());
        assert!(t.row_range(0, n + 1).is_err());
        assert!(t.row_range(3, 2).is_err());
        // Concatenating the fragment slices reproduces the table exactly.
        let a = t.row_range(0, n / 2).unwrap();
        let b = t.row_range(n / 2, n).unwrap();
        let back = Table::concat(&[a, b]).unwrap();
        for i in 0..n {
            assert_eq!(back.row(i), t.row(i));
        }
    }

    fn flow_schema() -> Arc<Schema> {
        Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc()
    }

    fn flow_table() -> Table {
        Table::from_rows(
            flow_schema(),
            &[
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(1), Value::Int(10), Value::Int(300)],
                vec![Value::Int(2), Value::Int(20), Value::Int(50)],
                vec![Value::Int(1), Value::Int(20), Value::Int(75)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_access_rows() {
        let t = flow_table();
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.row(2),
            vec![Value::Int(2), Value::Int(20), Value::Int(50)]
        );
        assert_eq!(t.column_by_name("nb").unwrap().get(1), Value::Int(300));
        assert!(t.column_by_name("zz").is_err());
        assert!(!t.is_empty());
    }

    #[test]
    fn from_columns_validates() {
        let s = flow_schema();
        let cols = vec![
            Column::from_i64(vec![1]),
            Column::from_i64(vec![2]),
            Column::from_i64(vec![3]),
        ];
        let t = Table::from_columns(s.clone(), cols).unwrap();
        assert_eq!(t.len(), 1);

        // Arity mismatch.
        assert!(Table::from_columns(s.clone(), vec![Column::from_i64(vec![1])]).is_err());
        // Type mismatch.
        let bad = vec![
            Column::from_strs(["x"]),
            Column::from_i64(vec![2]),
            Column::from_i64(vec![3]),
        ];
        assert!(Table::from_columns(s.clone(), bad).is_err());
        // Length mismatch.
        let bad = vec![
            Column::from_i64(vec![1, 2]),
            Column::from_i64(vec![2]),
            Column::from_i64(vec![3]),
        ];
        assert!(Table::from_columns(s, bad).is_err());
    }

    #[test]
    fn filter_by_predicate() {
        let t = flow_table();
        // nb > 90
        let pred = Expr::detail(2).gt(Expr::lit(90));
        let f = t.filter(&pred).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.column(2).get(0), Value::Int(100));
        assert_eq!(f.column(2).get(1), Value::Int(300));
    }

    #[test]
    fn distinct_project_builds_base_values() {
        let t = flow_table();
        let b = t.distinct_project(&[0, 1]).unwrap();
        assert_eq!(b.len(), 3); // (1,10), (2,20), (1,20)
        assert_eq!(b.schema().names(), vec!["sas", "das"]);
    }

    #[test]
    fn project_keeps_columnar_form() {
        let t = flow_table();
        let p = t.project(&[2]).unwrap();
        assert_eq!(p.schema().names(), vec!["nb"]);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn eval_column_computes_per_row() {
        let t = flow_table();
        let e = Expr::detail(2).mul(Expr::lit(2));
        let vs = t.eval_column(&e).unwrap();
        assert_eq!(vs[0], Value::Int(200));
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn concat_appends_and_checks_schema() {
        let t = flow_table();
        let c = Table::concat(&[t.clone(), t.clone()]).unwrap();
        assert_eq!(c.len(), 8);
        assert!(Table::concat(&[]).is_err());

        let other = Table::empty(
            Schema::from_pairs([("x", DataType::Int64)])
                .unwrap()
                .into_arc(),
        );
        assert!(Table::concat(&[t, other]).is_err());
    }

    #[test]
    fn to_relation_round_trip() {
        let t = flow_table();
        let r = t.to_relation();
        assert_eq!(r.len(), t.len());
        assert_eq!(r.row(3), &t.row(3));
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let mut b = TableBuilder::with_capacity(flow_schema(), 8);
        assert!(b.is_empty());
        assert!(b.push_row(&[Value::Int(1)]).is_err());
        assert!(b
            .push_row(&[Value::Int(1), Value::Int(2), Value::str("x")])
            .is_err());
        assert!(b
            .push_row(&[Value::Int(1), Value::Int(2), Value::Int(3)])
            .is_ok());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn take_reorders_rows() {
        let t = flow_table();
        let t2 = t.take(&[3, 0]);
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.row(0), t.row(3));
        assert_eq!(t2.row(1), t.row(0));
    }
}
