//! Partitioning a fact relation across sites.
//!
//! The paper assumes the conceptual fact relation is the union of the tuples
//! captured at each collection point (§2.1): `RouterId` — or in the TPC-R
//! experiments, `NationKey` — is a *partition attribute* (Definition 2).
//! This module provides the partitioning schemes used to set up experiments
//! and tests, and extracts the per-partition [`SiteConstraint`]s (`φᵢ`) that
//! the distribution-aware optimizations consume.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use skalla_expr::{Interval, SiteConstraint};
use skalla_types::{Result, SkallaError, Value};

use crate::catalog::Catalog;
use crate::table::Table;

/// A partitioning of one table into per-site tables, with optional
/// distribution knowledge.
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// The per-site tables, in site order.
    pub parts: Vec<Table>,
    /// The column index the table was partitioned on, if the partitioning
    /// was attribute-based (hash/range/value).
    pub partition_col: Option<usize>,
}

impl Partitioning {
    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.parts.len()
    }

    /// Total rows across all parts.
    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(Table::len).sum()
    }

    /// Exact per-site constraints: for each part, the set of distinct values
    /// of the partition column present there. This is the strongest `φᵢ`
    /// obtainable by inspection and what a catalog of distribution knowledge
    /// would record.
    pub fn site_constraints(&self) -> Vec<SiteConstraint> {
        let Some(col) = self.partition_col else {
            return vec![SiteConstraint::none(); self.parts.len()];
        };
        self.parts
            .iter()
            .map(|t| {
                let values: BTreeSet<Value> = (0..t.len()).map(|i| t.column(col).get(i)).collect();
                SiteConstraint::none().with_values(col, values)
            })
            .collect()
    }

    /// Exact per-site constraints over an explicit set of columns (not just
    /// the partition column): for each part and each listed column, the set
    /// of distinct values present. This is what lets the optimizer discover
    /// *derived* partition attributes — columns functionally dependent on
    /// the partitioning (e.g. `custname` when partitioning on `nationkey`).
    pub fn site_constraints_for(&self, cols: &[usize]) -> Vec<SiteConstraint> {
        self.parts
            .iter()
            .map(|t| {
                let mut sc = SiteConstraint::none();
                for &col in cols {
                    let values: BTreeSet<Value> =
                        (0..t.len()).map(|i| t.column(col).get(i)).collect();
                    sc = sc.with_values(col, values);
                }
                sc
            })
            .collect()
    }

    /// Interval-style per-site constraints (weaker than
    /// [`Self::site_constraints`] but cheaper to represent): the min/max of
    /// the partition column per site. Only valid for numeric columns.
    pub fn site_range_constraints(&self) -> Result<Vec<SiteConstraint>> {
        let Some(col) = self.partition_col else {
            return Ok(vec![SiteConstraint::none(); self.parts.len()]);
        };
        self.parts
            .iter()
            .map(|t| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for i in 0..t.len() {
                    let x = t.column(col).get(i).as_f64()?;
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                if t.is_empty() {
                    Ok(SiteConstraint::none()
                        .with_range(col, Interval::closed(1.0, 0.0) /* empty */))
                } else {
                    Ok(SiteConstraint::none().with_range(col, Interval::closed(lo, hi)))
                }
            })
            .collect()
    }

    /// `true` if the partition column's value sets are pairwise disjoint —
    /// i.e. the column is a *partition attribute* in the sense of the
    /// paper's Definition 2.
    pub fn is_partition_attribute(&self) -> bool {
        let Some(col) = self.partition_col else {
            return false;
        };
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        for t in &self.parts {
            let mut local: BTreeSet<Value> = BTreeSet::new();
            for i in 0..t.len() {
                local.insert(t.column(col).get(i));
            }
            if local.iter().any(|v| seen.contains(v)) {
                return false;
            }
            seen.extend(local);
        }
        true
    }
}

/// The catalog name under which partition `part` of `table` is registered at
/// every site that hosts a copy of it (primary or replica). The plain table
/// name continues to refer to the site's *primary* partition only, so code
/// that is unaware of replication sees exactly the unreplicated layout.
pub fn partition_table_name(table: &str, part: usize) -> String {
    format!("__part::{table}::{part}")
}

/// An r-way replica placement of one table's partitions across sites.
///
/// `hosts[p]` lists the sites holding a copy of partition `p`, primary
/// first. Placement is a ring: partition `p` lives at sites
/// `p, p+1, …, p+r−1 (mod n)`, so every site primary-hosts exactly one
/// partition and replica-hosts `r − 1` others. Because a replica is a
/// bit-identical copy of the partition table, any host recomputes exactly
/// the same sub-aggregates — which is what lets the coordinator's failover
/// reassign a dead site's partitions and still synchronize a result
/// identical to the fault-free run (Theorem 1 is indifferent to *which*
/// site computed a sub-aggregate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMap {
    /// Name of the replicated table.
    pub table: String,
    /// For each partition, the hosting sites in preference order (primary
    /// first). Site indices are 0-based catalog positions.
    pub hosts: Vec<Vec<usize>>,
}

impl ReplicaMap {
    /// Ring placement of `num_parts` partitions at replication factor `r`
    /// over `num_parts` sites (partition `p`'s primary is site `p`).
    pub fn ring(table: impl Into<String>, num_parts: usize, r: usize) -> Result<ReplicaMap> {
        if r == 0 {
            return Err(SkallaError::plan("replication factor must be at least 1"));
        }
        if r > num_parts {
            return Err(SkallaError::plan(format!(
                "replication factor {r} exceeds site count {num_parts}"
            )));
        }
        let hosts = (0..num_parts)
            .map(|p| (0..r).map(|j| (p + j) % num_parts).collect())
            .collect();
        Ok(ReplicaMap {
            table: table.into(),
            hosts,
        })
    }

    /// Number of partitions covered by the map.
    pub fn num_parts(&self) -> usize {
        self.hosts.len()
    }

    /// The replication factor (number of hosts of partition 0; ring
    /// placement gives every partition the same count).
    pub fn replication(&self) -> usize {
        self.hosts.first().map_or(0, Vec::len)
    }

    /// The primary site of partition `part`.
    pub fn primary(&self, part: usize) -> usize {
        self.hosts[part][0]
    }

    /// All sites hosting partition `part`, primary first.
    pub fn hosts_of(&self, part: usize) -> &[usize] {
        &self.hosts[part]
    }

    /// Partitions hosted (as primary or replica) by `site`, ascending.
    pub fn parts_hosted_by(&self, site: usize) -> Vec<usize> {
        (0..self.hosts.len())
            .filter(|&p| self.hosts[p].contains(&site))
            .collect()
    }
}

/// A range-addressed fragment of one partition: slice `frag` of `of` equal
/// row ranges of partition `part`'s detail table.
///
/// Replicas are bit-identical copies of the partition table (same rows in
/// the same order — see [`replicate_catalogs`]), so a fragment denotes
/// exactly the same detail rows on every host of `part`. `of == 1` is the
/// whole partition; the degenerate form every pre-skew request reduces to.
/// Fragments are what let the coordinator split a *hot* partition's scan
/// across its ring replicas while keeping answers bit-for-bit exact: the
/// row ranges are disjoint and cover the partition, so per-group
/// sub-aggregate states merge additively, exactly like cross-site merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartFrag {
    /// Partition index.
    pub part: u32,
    /// Fragment index, `0 ≤ frag < of`.
    pub frag: u32,
    /// Total fragments the partition is split into (`1` = whole).
    pub of: u32,
}

impl PartFrag {
    /// The whole of partition `part` (the unsplit work item).
    pub fn whole(part: u32) -> PartFrag {
        PartFrag {
            part,
            frag: 0,
            of: 1,
        }
    }

    /// `true` when this fragment covers the entire partition.
    pub fn is_whole(&self) -> bool {
        self.of <= 1
    }

    /// The `[start, end)` row range this fragment denotes in a partition
    /// table of `len` rows. Ranges of the `of` fragments are disjoint and
    /// cover `0..len` exactly.
    pub fn row_bounds(&self, len: usize) -> (usize, usize) {
        let of = u64::from(self.of.max(1));
        let start = (len as u64) * u64::from(self.frag) / of;
        let end = (len as u64) * (u64::from(self.frag) + 1) / of;
        (start as usize, end as usize)
    }
}

/// Build per-site catalogs carrying an r-way replicated copy of `parts`.
///
/// Site `i`'s catalog registers its primary partition under the plain
/// `table` name (so replication-unaware paths — ship-all, legacy rounds —
/// behave exactly as before) and every hosted partition, primary included,
/// under [`partition_table_name`]. Partition tables are `Arc`-shared, not
/// copied, so the extra memory cost is bookkeeping only.
pub fn replicate_catalogs(
    table: &str,
    parts: &Partitioning,
    r: usize,
) -> Result<(Vec<Catalog>, ReplicaMap)> {
    let n = parts.num_sites();
    let map = ReplicaMap::ring(table, n, r)?;
    let shared: Vec<std::sync::Arc<Table>> = parts
        .parts
        .iter()
        .map(|t| std::sync::Arc::new(t.clone()))
        .collect();
    let catalogs = (0..n)
        .map(|site| {
            let mut c = Catalog::new();
            c.register_arc(table, shared[site].clone());
            for p in map.parts_hosted_by(site) {
                c.register_arc(partition_table_name(table, p), shared[p].clone());
            }
            c
        })
        .collect();
    Ok((catalogs, map))
}

fn hash_value(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Partition `table` into `n` parts by hashing the values of column `col`.
/// Every row with the same value lands on the same site, so `col` is a
/// partition attribute of the result.
pub fn partition_by_hash(table: &Table, col: usize, n: usize) -> Result<Partitioning> {
    if n == 0 {
        return Err(SkallaError::plan("cannot partition into 0 sites"));
    }
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..table.len() {
        let v = table.column(col).get(i);
        let b = (hash_value(&v) % n as u64) as usize;
        buckets[b].push(i as u32);
    }
    Ok(Partitioning {
        parts: buckets.iter().map(|idx| table.take(idx)).collect(),
        partition_col: Some(col),
    })
}

/// Partition by numeric ranges: row goes to the first site whose
/// `boundaries[i] > value`; values ≥ the last boundary go to the last site.
/// `boundaries` has `n - 1` entries for `n` sites and must be sorted.
pub fn partition_by_ranges(table: &Table, col: usize, boundaries: &[f64]) -> Result<Partitioning> {
    if boundaries.windows(2).any(|w| w[0] > w[1]) {
        return Err(SkallaError::plan("range boundaries must be sorted"));
    }
    let n = boundaries.len() + 1;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..table.len() {
        let x = table.column(col).get(i).as_f64()?;
        let b = boundaries.partition_point(|&bd| bd <= x);
        buckets[b].push(i as u32);
    }
    Ok(Partitioning {
        parts: buckets.iter().map(|idx| table.take(idx)).collect(),
        partition_col: Some(col),
    })
}

/// Partition by an explicit value → site assignment; rows whose value is not
/// listed are an error (the assignment must be total).
pub fn partition_by_values(
    table: &Table,
    col: usize,
    assignment: &[(Value, usize)],
    n: usize,
) -> Result<Partitioning> {
    let map: std::collections::HashMap<&Value, usize> =
        assignment.iter().map(|(v, s)| (v, *s)).collect();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..table.len() {
        let v = table.column(col).get(i);
        let site = *map
            .get(&v)
            .ok_or_else(|| SkallaError::plan(format!("no site assigned for value {v}")))?;
        if site >= n {
            return Err(SkallaError::plan(format!(
                "site {site} out of range (n={n})"
            )));
        }
        buckets[site].push(i as u32);
    }
    Ok(Partitioning {
        parts: buckets.iter().map(|idx| table.take(idx)).collect(),
        partition_col: Some(col),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema};

    #[test]
    fn frag_bounds_are_disjoint_and_cover() {
        for len in [0usize, 1, 7, 100, 101] {
            for of in 1u32..=5 {
                let mut next = 0usize;
                for frag in 0..of {
                    let f = PartFrag { part: 0, frag, of };
                    let (s, e) = f.row_bounds(len);
                    assert_eq!(s, next, "len {len} of {of} frag {frag}");
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, len, "len {len} of {of}");
            }
        }
        assert!(PartFrag::whole(3).is_whole());
        assert_eq!(PartFrag::whole(3).row_bounds(10), (0, 10));
    }

    fn table() -> Table {
        let schema = Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i % 10), Value::Int(i)])
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn hash_partition_is_partition_attribute() {
        let p = partition_by_hash(&table(), 0, 4).unwrap();
        assert_eq!(p.num_sites(), 4);
        assert_eq!(p.total_rows(), 100);
        assert!(p.is_partition_attribute());
    }

    #[test]
    fn hash_partition_rejects_zero_sites() {
        assert!(partition_by_hash(&table(), 0, 0).is_err());
    }

    #[test]
    fn range_partition_routes_by_boundary() {
        let p = partition_by_ranges(&table(), 0, &[3.0, 7.0]).unwrap();
        assert_eq!(p.num_sites(), 3);
        assert_eq!(p.total_rows(), 100);
        // Site 0: k in 0..3, site 1: 3..7, site 2: 7..10.
        for i in 0..p.parts[0].len() {
            assert!(p.parts[0].column(0).get(i).as_int().unwrap() < 3);
        }
        for i in 0..p.parts[1].len() {
            let k = p.parts[1].column(0).get(i).as_int().unwrap();
            assert!((3..7).contains(&k));
        }
        assert!(p.is_partition_attribute());
        assert!(partition_by_ranges(&table(), 0, &[5.0, 1.0]).is_err());
    }

    #[test]
    fn value_partition_uses_assignment() {
        let assignment: Vec<(Value, usize)> =
            (0..10).map(|k| (Value::Int(k), (k % 2) as usize)).collect();
        let p = partition_by_values(&table(), 0, &assignment, 2).unwrap();
        assert_eq!(p.total_rows(), 100);
        assert!(p.is_partition_attribute());

        // Missing value in the assignment is an error.
        let partial = vec![(Value::Int(0), 0usize)];
        assert!(partition_by_values(&table(), 0, &partial, 2).is_err());
        // Out-of-range site is an error.
        let bad: Vec<(Value, usize)> = (0..10).map(|k| (Value::Int(k), 5usize)).collect();
        assert!(partition_by_values(&table(), 0, &bad, 2).is_err());
    }

    #[test]
    fn site_constraints_capture_exact_values() {
        let p = partition_by_ranges(&table(), 0, &[5.0]).unwrap();
        let cs = p.site_constraints();
        assert_eq!(cs.len(), 2);
        // Site 0 has k ∈ {0..4}: its constraint excludes 7.
        let c0 = cs[0].get(0).unwrap();
        match c0 {
            skalla_expr::ColumnConstraint::OneOf(set) => {
                assert!(set.contains(&Value::Int(0)));
                assert!(!set.contains(&Value::Int(7)));
            }
            other => panic!("expected OneOf, got {other:?}"),
        }
    }

    #[test]
    fn site_constraints_for_covers_multiple_columns() {
        let p = partition_by_ranges(&table(), 0, &[5.0]).unwrap();
        let cs = p.site_constraints_for(&[0, 1]);
        assert_eq!(cs.len(), 2);
        for (i, sc) in cs.iter().enumerate() {
            assert!(sc.get(0).is_some(), "site {i} missing col 0");
            assert!(sc.get(1).is_some(), "site {i} missing col 1");
        }
    }

    #[test]
    fn site_range_constraints_capture_min_max() {
        let p = partition_by_ranges(&table(), 0, &[5.0]).unwrap();
        let cs = p.site_range_constraints().unwrap();
        assert_eq!(cs[0].interval_of(0), Interval::closed(0.0, 4.0));
        assert_eq!(cs[1].interval_of(0), Interval::closed(5.0, 9.0));
    }

    #[test]
    fn ring_replica_map_places_r_hosts() {
        let m = ReplicaMap::ring("flow", 4, 2).unwrap();
        assert_eq!(m.num_parts(), 4);
        assert_eq!(m.replication(), 2);
        assert_eq!(m.hosts_of(0), &[0, 1]);
        assert_eq!(m.hosts_of(3), &[3, 0]);
        assert_eq!(m.primary(2), 2);
        // Site 0 hosts its primary partition 0 plus partition 3's replica.
        assert_eq!(m.parts_hosted_by(0), vec![0, 3]);
        assert!(ReplicaMap::ring("flow", 4, 0).is_err());
        assert!(ReplicaMap::ring("flow", 4, 5).is_err());
    }

    #[test]
    fn replicate_catalogs_registers_primary_and_replicas() {
        let p = partition_by_hash(&table(), 0, 4).unwrap();
        let (catalogs, map) = replicate_catalogs("flow", &p, 2).unwrap();
        assert_eq!(catalogs.len(), 4);
        for (site, c) in catalogs.iter().enumerate() {
            // Plain name is exactly the primary partition.
            let primary = c.get("flow").unwrap();
            assert_eq!(primary.len(), p.parts[site].len());
            // Every hosted partition is registered under its mangled name
            // and shares storage with the primary copy.
            for part in map.parts_hosted_by(site) {
                let t = c.get(&partition_table_name("flow", part)).unwrap();
                assert_eq!(t.len(), p.parts[part].len());
            }
            assert_eq!(c.len(), 1 + map.parts_hosted_by(site).len());
        }
        // r = 1 degenerates to the unreplicated layout plus mangled aliases.
        let (solo, m1) = replicate_catalogs("flow", &p, 1).unwrap();
        assert_eq!(m1.replication(), 1);
        assert_eq!(solo[2].len(), 2);
    }

    #[test]
    fn non_partition_attribute_detected() {
        // Splitting by row position duplicates k values across sites
        // (both halves contain every k in 0..10).
        let t = table();
        let first: Vec<u32> = (0..50).collect();
        let second: Vec<u32> = (50..t.len() as u32).collect();
        let p = Partitioning {
            parts: vec![t.take(&first), t.take(&second)],
            partition_col: Some(0),
        };
        assert!(!p.is_partition_attribute());

        let p = Partitioning {
            parts: vec![t.clone()],
            partition_col: None,
        };
        assert!(!p.is_partition_attribute());
        assert_eq!(p.site_constraints()[0], SiteConstraint::none());
    }
}
