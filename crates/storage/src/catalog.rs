//! Per-site table catalogs.

use std::collections::HashMap;
use std::sync::Arc;

use skalla_types::{Result, Schema, SkallaError};

use crate::segment::SegmentFile;
use crate::table::Table;

/// A name → table map. Each Skalla site owns one catalog holding its local
/// partitions of the warehouse's fact relations. A name can additionally be
/// backed by an on-disk [`SegmentFile`] (out-of-core mode): scans then
/// stream segments from disk instead of touching an in-memory table.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    segments: HashMap<String, Arc<SegmentFile>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table under `name`, replacing any previous entry
    /// (including a segment-backed one).
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        let name = name.into();
        self.segments.remove(&name);
        self.tables.insert(name, Arc::new(table));
    }

    /// Register an already-shared table.
    pub fn register_arc(&mut self, name: impl Into<String>, table: Arc<Table>) {
        let name = name.into();
        self.segments.remove(&name);
        self.tables.insert(name, table);
    }

    /// Look up a table by name. A segment-backed name is materialized in
    /// full — the compatibility fallback for callers that need the whole
    /// table; scan paths should check [`Catalog::get_segments`] first and
    /// stream instead.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        if let Some(t) = self.tables.get(name) {
            return Ok(t.clone());
        }
        if let Some(f) = self.segments.get(name) {
            return Ok(Arc::new(f.read_all()?));
        }
        Err(SkallaError::not_found(format!("table `{name}`")))
    }

    /// Schema of a registered name — from footer metadata for
    /// segment-backed names, so out-of-core tables are never materialized
    /// just to learn their shape.
    pub fn schema_of(&self, name: &str) -> Result<Arc<Schema>> {
        if let Some(t) = self.tables.get(name) {
            return Ok(t.schema().clone());
        }
        if let Some(f) = self.segments.get(name) {
            return Ok(f.schema().clone());
        }
        Err(SkallaError::not_found(format!("table `{name}`")))
    }

    /// Back `name` with an on-disk segment file. Any in-memory table under
    /// the same name is dropped — the segment store is now authoritative,
    /// so a stale copy cannot shadow it.
    pub fn register_segments(&mut self, name: impl Into<String>, file: Arc<SegmentFile>) {
        let name = name.into();
        self.tables.remove(&name);
        self.segments.insert(name, file);
    }

    /// The segment file backing `name`, if it is segment-backed.
    pub fn get_segments(&self, name: &str) -> Option<Arc<SegmentFile>> {
        self.segments.get(name).cloned()
    }

    /// Drop `name` entirely (in-memory and/or segment-backed). Used by the
    /// scrub path to quarantine a corrupt segment file: once unregistered,
    /// queries fail with `NotFound` instead of re-reading bad bytes.
    pub fn unregister(&mut self, name: &str) {
        self.tables.remove(name);
        self.segments.remove(name);
    }

    /// `true` if `name` is registered (in-memory or segment-backed).
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name) || self.segments.contains_key(name)
    }

    /// Names of all registered tables (in-memory and segment-backed), sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .tables
            .keys()
            .chain(self.segments.keys())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len() + self.segments.len()
    }

    /// `true` if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema};

    fn tiny() -> Table {
        Table::empty(
            Schema::from_pairs([("a", DataType::Int64)])
                .unwrap()
                .into_arc(),
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("flow", tiny());
        assert!(c.contains("flow"));
        assert!(c.get("flow").is_ok());
        assert!(c.get("other").is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn register_replaces() {
        let mut c = Catalog::new();
        c.register("t", tiny());
        let shared = Arc::new(tiny());
        c.register_arc("t", shared.clone());
        assert!(Arc::ptr_eq(&c.get("t").unwrap(), &shared));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register("b", tiny());
        c.register("a", tiny());
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }
}
