//! Per-site table catalogs.

use std::collections::HashMap;
use std::sync::Arc;

use skalla_types::{Result, SkallaError};

use crate::table::Table;

/// A name → table map. Each Skalla site owns one catalog holding its local
/// partitions of the warehouse's fact relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table under `name`, replacing any previous entry.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), Arc::new(table));
    }

    /// Register an already-shared table.
    pub fn register_arc(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| SkallaError::not_found(format!("table `{name}`")))
    }

    /// `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema};

    fn tiny() -> Table {
        Table::empty(
            Schema::from_pairs([("a", DataType::Int64)])
                .unwrap()
                .into_arc(),
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register("flow", tiny());
        assert!(c.contains("flow"));
        assert!(c.get("flow").is_ok());
        assert!(c.get("other").is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn register_replaces() {
        let mut c = Catalog::new();
        c.register("t", tiny());
        let shared = Arc::new(tiny());
        c.register_arc("t", shared.clone());
        assert!(Arc::ptr_eq(&c.get("t").unwrap(), &shared));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register("b", tiny());
        c.register("a", tiny());
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }
}
