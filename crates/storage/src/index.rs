//! Hash indexes over table key columns.
//!
//! The coordinator's base-result structure is "indexed on K, which allows us
//! to efficiently determine RNG(X, t, θ_K) for any tuple t" (paper §3.2).
//! The same structure accelerates local GMDJ evaluation when θ contains
//! equi-join conjuncts.

use std::collections::HashMap;

use skalla_types::{Row, Value};

use crate::table::Table;

/// A multimap from key-column values to row indices.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: HashMap<Row, Vec<u32>>,
}

impl HashIndex {
    /// Build an index on `key_cols` of `table`.
    pub fn build(table: &Table, key_cols: &[usize]) -> HashIndex {
        let mut map: HashMap<Row, Vec<u32>> = HashMap::with_capacity(table.len());
        for i in 0..table.len() {
            let key: Row = key_cols.iter().map(|&c| table.column(c).get(i)).collect();
            map.entry(key).or_default().push(i as u32);
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
        }
    }

    /// Build an index over generic rows (used for base-values relations).
    pub fn build_from_rows<'a>(
        rows: impl IntoIterator<Item = &'a Row>,
        key_cols: &[usize],
    ) -> HashIndex {
        let mut map: HashMap<Row, Vec<u32>> = HashMap::new();
        for (i, row) in rows.into_iter().enumerate() {
            let key: Row = key_cols.iter().map(|&c| row[c].clone()).collect();
            map.entry(key).or_default().push(i as u32);
        }
        HashIndex {
            key_cols: key_cols.to_vec(),
            map,
        }
    }

    /// The key columns the index was built on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row indices matching `key` (empty slice when absent).
    pub fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(key, row indices)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, &Vec<u32>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs([("a", DataType::Int64), ("b", DataType::Utf8)])
            .unwrap()
            .into_arc();
        Table::from_rows(
            schema,
            &[
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
                vec![Value::Int(1), Value::str("z")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_column_lookup() {
        let idx = HashIndex::build(&table(), &[0]);
        assert_eq!(idx.get(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(idx.get(&[Value::Int(2)]), &[1]);
        assert_eq!(idx.get(&[Value::Int(9)]), &[] as &[u32]);
        assert_eq!(idx.num_keys(), 2);
        assert_eq!(idx.key_cols(), &[0]);
    }

    #[test]
    fn composite_key_lookup() {
        let idx = HashIndex::build(&table(), &[0, 1]);
        assert_eq!(idx.get(&[Value::Int(1), Value::str("z")]), &[2]);
        assert_eq!(idx.num_keys(), 3);
    }

    #[test]
    fn build_from_rows_matches_table_build() {
        let t = table();
        let rows: Vec<Row> = t.iter_rows().collect();
        let idx = HashIndex::build_from_rows(rows.iter(), &[0]);
        assert_eq!(idx.get(&[Value::Int(1)]), &[0, 2]);
        let total: usize = idx.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3);
    }
}
