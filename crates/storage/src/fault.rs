//! Deterministic disk-fault injection for the segment store.
//!
//! A [`DiskFaultPlan`] mirrors `skalla-net`'s `FaultPlan`, one layer down:
//! instead of dropping messages it corrupts segment files. Every decision
//! is a pure function of `(seed, fault kind, path, segment index)`, so a
//! run with the same plan and the same file paths is bit-for-bit
//! reproducible — and a corruption, once decided, is *persistent*: every
//! read of the same path sees the same damage, which is what lets `\scrub`
//! find exactly what queries trip over. A repaired file is written to a
//! fresh path (new generation suffix), so it rolls fresh fault dice — the
//! same way a real re-write lands on different sectors.
//!
//! Fault kinds:
//!
//! * **bit-flip** (write path) — one bit of an encoded column chunk is
//!   flipped before it reaches the disk; the chunk CRC catches it on read.
//! * **torn write** (write path) — the footer's final bytes never make it
//!   to disk, as if power was lost mid-`write`; the footer CRC or tail
//!   frame catches it on open.
//! * **short read** (read path) — a `pread` of a segment body comes back
//!   zero-filled past a point, as if the kernel returned a short count;
//!   the chunk CRC catches it.
//! * **stale footer** (read path) — the footer read returns stale bytes
//!   (a firmware cache serving an old version); the footer CRC catches it.
//!
//! The plan is consulted through a process-global registry
//! ([`DiskFaultPlan::install`]) so the storage layer's writers and readers
//! need no plumbing; each installed plan is *scoped* to a path prefix, so
//! parallel tests with separate temp dirs never cross-contaminate.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A deterministic description of the disk faults the segment store
/// injects. Rates are probabilities in `[0, 1]`; decisions are evaluated
/// independently per (kind, path, segment) from the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskFaultPlan {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability a written column chunk has one bit flipped (per
    /// segment).
    pub bitflip_rate: f64,
    /// Probability a file's footer write is torn (per file).
    pub torn_write_rate: f64,
    /// Probability a segment-body read comes back short (per segment,
    /// stable across reads of the same path).
    pub short_read_rate: f64,
    /// Probability a footer read returns stale bytes (per file, stable
    /// across opens of the same path).
    pub stale_footer_rate: f64,
}

impl Default for DiskFaultPlan {
    fn default() -> Self {
        DiskFaultPlan::none()
    }
}

impl DiskFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> DiskFaultPlan {
        DiskFaultPlan {
            seed: 0,
            bitflip_rate: 0.0,
            torn_write_rate: 0.0,
            short_read_rate: 0.0,
            stale_footer_rate: 0.0,
        }
    }

    /// A fault-free plan with the given decision seed (rates start at
    /// zero; chain the `with_*` builders to enable faults).
    pub fn seeded(seed: u64) -> DiskFaultPlan {
        DiskFaultPlan {
            seed,
            ..DiskFaultPlan::none()
        }
    }

    /// Set the per-segment write-path bit-flip probability.
    pub fn with_bitflip_rate(mut self, rate: f64) -> DiskFaultPlan {
        self.bitflip_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the per-file torn-footer-write probability.
    pub fn with_torn_write_rate(mut self, rate: f64) -> DiskFaultPlan {
        self.torn_write_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the per-segment short-read probability.
    pub fn with_short_read_rate(mut self, rate: f64) -> DiskFaultPlan {
        self.short_read_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the per-file stale-footer-read probability.
    pub fn with_stale_footer_rate(mut self, rate: f64) -> DiskFaultPlan {
        self.stale_footer_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// `true` when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.bitflip_rate == 0.0
            && self.torn_write_rate == 0.0
            && self.short_read_rate == 0.0
            && self.stale_footer_rate == 0.0
    }

    /// Should the chunk written for segment `seg` of `path` have a bit
    /// flipped? Returns the bit index to flip within the segment body,
    /// reduced modulo the body's bit length by the caller.
    pub fn bitflip_for(&self, path: &Path, seg: usize) -> Option<u64> {
        if self.decide(SALT_BITFLIP, path, seg as u64) < self.bitflip_rate {
            Some(splitmix64(
                self.seed ^ SALT_BITPOS ^ path_hash(path) ^ (seg as u64).wrapping_mul(0x9E37),
            ))
        } else {
            None
        }
    }

    /// Should `path`'s footer write be torn? Returns how many tail bytes
    /// to drop (1..=16).
    pub fn torn_write_for(&self, path: &Path) -> Option<usize> {
        if self.decide(SALT_TORN, path, 0) < self.torn_write_rate {
            let k = splitmix64(self.seed ^ SALT_TORNLEN ^ path_hash(path)) % 16 + 1;
            Some(k as usize)
        } else {
            None
        }
    }

    /// Should the body read of segment `seg` of `path` come back short?
    /// Returns the fraction (per-mille) of the body that *does* arrive.
    pub fn short_read_for(&self, path: &Path, seg: usize) -> Option<u64> {
        if self.decide(SALT_SHORT, path, seg as u64) < self.short_read_rate {
            Some(splitmix64(self.seed ^ SALT_SHORTLEN ^ path_hash(path) ^ seg as u64) % 1000)
        } else {
            None
        }
    }

    /// Should `path`'s footer read return stale bytes?
    pub fn stale_footer_for(&self, path: &Path) -> bool {
        self.decide(SALT_STALE, path, 0) < self.stale_footer_rate
    }

    /// Uniform `[0, 1)` decision value for one (kind, path, segment)
    /// triple — same derivation as `skalla-net`'s link-fault decisions.
    fn decide(&self, salt: u64, path: &Path, seg: u64) -> f64 {
        let mut h = self.seed ^ salt;
        h = splitmix64(h ^ path_hash(path));
        h = splitmix64(h ^ seg);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Install this plan for every segment file whose path starts with
    /// `scope`. Returns a guard; the plan is removed when the guard drops,
    /// so parallel tests each scoped to their own temp dir never see each
    /// other's faults.
    pub fn install(self, scope: impl Into<std::path::PathBuf>) -> DiskFaultGuard {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let entry = InstalledPlan {
            id,
            scope: scope.into(),
            plan: Arc::new(self),
        };
        let mut reg = registry().write().expect("disk-fault registry poisoned");
        reg.push(entry);
        ANY_INSTALLED.store(true, Ordering::Release);
        DiskFaultGuard { id }
    }
}

/// FNV-1a over the path's bytes: stable within a run, independent of the
/// segment index mixing.
fn path_hash(path: &Path) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_os_str().as_encoded_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const SALT_BITFLIP: u64 = 0x0000_D15C_FA17_0001;
const SALT_BITPOS: u64 = 0x0000_D15C_FA17_0002;
const SALT_TORN: u64 = 0x0000_D15C_FA17_0003;
const SALT_TORNLEN: u64 = 0x0000_D15C_FA17_0004;
const SALT_SHORT: u64 = 0x0000_D15C_FA17_0005;
const SALT_SHORTLEN: u64 = 0x0000_D15C_FA17_0006;
const SALT_STALE: u64 = 0x0000_D15C_FA17_0007;

/// SplitMix64 mixing step (same construction as `skalla-net::fault`).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Process-global scoped registry.

struct InstalledPlan {
    id: u64,
    scope: std::path::PathBuf,
    plan: Arc<DiskFaultPlan>,
}

static ANY_INSTALLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: RwLock<Vec<InstalledPlan>> = RwLock::new(Vec::new());

fn registry() -> &'static RwLock<Vec<InstalledPlan>> {
    &REGISTRY
}

/// The installed plan governing `path`, if any. The common no-faults case
/// is a single relaxed atomic load.
pub fn disk_faults_for(path: &Path) -> Option<Arc<DiskFaultPlan>> {
    if !ANY_INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    let reg = registry().read().expect("disk-fault registry poisoned");
    reg.iter()
        .rev() // most recent install wins on nested scopes
        .find(|e| path.starts_with(&e.scope))
        .map(|e| e.plan.clone())
}

/// Removes its plan from the registry on drop.
#[must_use = "dropping the guard immediately uninstalls the fault plan"]
pub struct DiskFaultGuard {
    id: u64,
}

impl Drop for DiskFaultGuard {
    fn drop(&mut self) {
        let mut reg = registry().write().expect("disk-fault registry poisoned");
        reg.retain(|e| e.id != self.id);
        if reg.is_empty() {
            ANY_INSTALLED.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn decisions_are_deterministic_and_path_scoped() {
        let a = DiskFaultPlan::seeded(7).with_bitflip_rate(0.5);
        let b = DiskFaultPlan::seeded(7).with_bitflip_rate(0.5);
        let p1 = PathBuf::from("/tmp/x/file1.seg");
        let p2 = PathBuf::from("/tmp/x/file2.seg");
        for seg in 0..64 {
            assert_eq!(a.bitflip_for(&p1, seg), b.bitflip_for(&p1, seg));
        }
        // Different paths see different fault patterns.
        let v1: Vec<bool> = (0..64).map(|s| a.bitflip_for(&p1, s).is_some()).collect();
        let v2: Vec<bool> = (0..64).map(|s| a.bitflip_for(&p2, s).is_some()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn zero_rates_never_fire_and_one_always_does() {
        let silent = DiskFaultPlan::seeded(3);
        let noisy = DiskFaultPlan::seeded(3)
            .with_bitflip_rate(1.0)
            .with_torn_write_rate(1.0)
            .with_short_read_rate(1.0)
            .with_stale_footer_rate(1.0);
        let p = PathBuf::from("/tmp/f.seg");
        for seg in 0..32 {
            assert!(silent.bitflip_for(&p, seg).is_none());
            assert!(silent.short_read_for(&p, seg).is_none());
            assert!(noisy.bitflip_for(&p, seg).is_some());
            assert!(noisy.short_read_for(&p, seg).is_some());
        }
        assert!(silent.torn_write_for(&p).is_none());
        assert!(!silent.stale_footer_for(&p));
        assert!(noisy.torn_write_for(&p).is_some());
        assert!(noisy.stale_footer_for(&p));
        assert!(silent.is_noop());
        assert!(!noisy.is_noop());
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = DiskFaultPlan::seeded(11).with_short_read_rate(0.25);
        let hits = (0..4000)
            .filter(|&s| plan.short_read_for(Path::new("/tmp/r.seg"), s).is_some())
            .count();
        assert!((600..1400).contains(&hits), "hit {hits}/4000");
    }

    #[test]
    fn registry_scoping_and_guard_removal() {
        let scope_a = PathBuf::from("/tmp/disk-fault-test-scope-a");
        let scope_b = PathBuf::from("/tmp/disk-fault-test-scope-b");
        let guard_a = DiskFaultPlan::seeded(1)
            .with_bitflip_rate(1.0)
            .install(&scope_a);
        {
            let guard_b = DiskFaultPlan::seeded(2)
                .with_bitflip_rate(1.0)
                .install(&scope_b);
            assert!(disk_faults_for(&scope_a.join("f.seg")).is_some());
            assert!(disk_faults_for(&scope_b.join("f.seg")).is_some());
            assert!(disk_faults_for(Path::new("/tmp/disk-fault-test-elsewhere/f.seg")).is_none());
            let got_b = disk_faults_for(&scope_b.join("f.seg")).unwrap();
            assert_eq!(got_b.seed, 2);
            drop(guard_b);
        }
        assert!(disk_faults_for(&scope_b.join("f.seg")).is_none());
        assert!(disk_faults_for(&scope_a.join("f.seg")).is_some());
        drop(guard_a);
        assert!(disk_faults_for(&scope_a.join("f.seg")).is_none());
    }
}
