//! Table statistics.
//!
//! Warehouse coordinators keep per-table statistics (row counts, column
//! ranges, distinct-value counts) as part of their distribution catalog.
//! Egil's cost-based plan selection (`skalla-planner::cost`) consumes these
//! to estimate group counts and per-round transfer volumes.

use std::collections::HashSet;

use skalla_types::{total_cmp_f64, Value};

use crate::column::Column;
use crate::table::Table;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value, if any non-null value exists.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Exact number of distinct non-null values.
    pub distinct: usize,
    /// Number of NULLs.
    pub null_count: usize,
}

impl ColumnStats {
    /// Collect exact statistics for one column in a single typed pass.
    ///
    /// This is the zone-map builder used by the segment store: every type
    /// is covered (strings and nullable columns included), and the min/max
    /// semantics are exactly those of [`Value`]'s total order — floats use
    /// `total_cmp_f64` (NaN equals itself and sorts last, `-0.0` is
    /// identified with `0.0`), so `Value`-level code and raw-slice code
    /// agree on which value is the extremum.
    pub fn collect(col: &Column) -> ColumnStats {
        let nulls = col.null_mask();
        let is_null = |i: usize| nulls.is_some_and(|n| n[i]);
        let null_count = nulls.map_or(0, |n| n.iter().filter(|&&b| b).count());

        if let Some(vs) = col.raw_i64s() {
            let mut distinct: HashSet<i64> = HashSet::new();
            let mut min: Option<i64> = None;
            let mut max: Option<i64> = None;
            for (i, &v) in vs.iter().enumerate() {
                if is_null(i) {
                    continue;
                }
                if min.is_none_or(|m| v < m) {
                    min = Some(v);
                }
                if max.is_none_or(|m| v > m) {
                    max = Some(v);
                }
                distinct.insert(v);
            }
            return ColumnStats {
                min: min.map(Value::Int),
                max: max.map(Value::Int),
                distinct: distinct.len(),
                null_count,
            };
        }
        if let Some(vs) = col.raw_f64s() {
            // Distinct-value identity matches `Value`'s: all NaNs are one
            // value, and -0.0 is the same value as 0.0.
            let key = |v: f64| -> u64 {
                if v == 0.0 {
                    0.0f64.to_bits()
                } else if v.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    v.to_bits()
                }
            };
            let mut distinct: HashSet<u64> = HashSet::new();
            let mut min: Option<f64> = None;
            let mut max: Option<f64> = None;
            for (i, &v) in vs.iter().enumerate() {
                if is_null(i) {
                    continue;
                }
                // Strict-less updates keep the first-seen of equal values,
                // mirroring the Value-at-a-time collection path.
                if min.is_none_or(|m| total_cmp_f64(v, m).is_lt()) {
                    min = Some(v);
                }
                if max.is_none_or(|m| total_cmp_f64(v, m).is_gt()) {
                    max = Some(v);
                }
                distinct.insert(key(v));
            }
            return ColumnStats {
                min: min.map(Value::Float),
                max: max.map(Value::Float),
                distinct: distinct.len(),
                null_count,
            };
        }
        if let Some(vs) = col.raw_strs() {
            let mut distinct: HashSet<&str> = HashSet::new();
            let mut min: Option<&std::sync::Arc<str>> = None;
            let mut max: Option<&std::sync::Arc<str>> = None;
            for (i, v) in vs.iter().enumerate() {
                if is_null(i) {
                    continue;
                }
                if min.is_none_or(|m| **v < **m) {
                    min = Some(v);
                }
                if max.is_none_or(|m| **v > **m) {
                    max = Some(v);
                }
                distinct.insert(v);
            }
            return ColumnStats {
                min: min.map(|s| Value::Str(s.clone())),
                max: max.map(|s| Value::Str(s.clone())),
                distinct: distinct.len(),
                null_count,
            };
        }
        let vs = col.raw_bools().expect("exhaustive column types");
        let mut seen = [false, false];
        for (i, &v) in vs.iter().enumerate() {
            if !is_null(i) {
                seen[usize::from(v)] = true;
            }
        }
        let min = if seen[0] {
            Some(Value::Bool(false))
        } else if seen[1] {
            Some(Value::Bool(true))
        } else {
            None
        };
        let max = if seen[1] {
            Some(Value::Bool(true))
        } else if seen[0] {
            Some(Value::Bool(false))
        } else {
            None
        };
        ColumnStats {
            min,
            max,
            distinct: usize::from(seen[0]) + usize::from(seen[1]),
            null_count,
        }
    }
}

impl ColumnStats {
    /// Merge statistics of the same column collected over disjoint row
    /// chunks (e.g. the zone maps of a segment file). `min`, `max`, and
    /// `null_count` merge exactly; `distinct` becomes an upper bound —
    /// chunks may share values — so merged statistics are for estimation,
    /// not for zone-map pruning.
    pub fn merge(&mut self, other: &ColumnStats) {
        self.min = match (self.min.take(), &other.min) {
            (None, m) => m.clone(),
            (m, None) => m,
            (Some(a), Some(b)) => Some(if *b < a { b.clone() } else { a }),
        };
        self.max = match (self.max.take(), &other.max) {
            (None, m) => m.clone(),
            (m, None) => m,
            (Some(a), Some(b)) => Some(if *b > a { b.clone() } else { a }),
        };
        self.distinct = self.distinct.saturating_add(other.distinct);
        self.null_count = self.null_count.saturating_add(other.null_count);
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect exact statistics with one typed pass per column (see
    /// [`ColumnStats::collect`]).
    ///
    /// Distinct counts are exact (hash-set based); at warehouse-catalog
    /// build time this is a one-off O(rows × columns) scan.
    pub fn collect(table: &Table) -> TableStats {
        let columns = (0..table.schema().len())
            .map(|c| ColumnStats::collect(table.column(c)))
            .collect();
        TableStats {
            rows: table.len(),
            columns,
        }
    }

    /// Merge statistics of a disjoint row chunk of the same table (same
    /// caveats as [`ColumnStats::merge`]: `distinct` becomes an upper
    /// bound, capped at the merged row count).
    pub fn merge(&mut self, other: &TableStats) {
        self.rows += other.rows;
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.merge(b);
        }
        for c in &mut self.columns {
            c.distinct = c.distinct.min(self.rows);
        }
    }

    /// Estimated number of distinct combinations of the given columns:
    /// the product of per-column distinct counts, capped by the row count
    /// (the standard independence assumption).
    pub fn estimate_group_count(&self, cols: &[usize]) -> usize {
        if cols.is_empty() {
            return 1;
        }
        let mut product: u128 = 1;
        for &c in cols {
            let d = self.columns.get(c).map_or(1, |s| s.distinct.max(1)) as u128;
            product = product.saturating_mul(d);
            if product >= self.rows as u128 {
                return self.rows;
            }
        }
        (product as usize).min(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs([
            ("k", DataType::Int64),
            ("s", DataType::Utf8),
            ("n", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i % 10),
                    Value::str(["a", "b", "c"][(i % 3) as usize]),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                ]
            })
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn collects_exact_stats() {
        let s = TableStats::collect(&table());
        assert_eq!(s.rows, 100);
        assert_eq!(s.columns[0].distinct, 10);
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert_eq!(s.columns[0].null_count, 0);
        assert_eq!(s.columns[1].distinct, 3);
        assert_eq!(s.columns[1].min, Some(Value::str("a")));
        // 0, 7, 14, …, 98 are NULL: 15 of them.
        assert_eq!(s.columns[2].null_count, 15);
        assert_eq!(s.columns[2].distinct, 85);
        assert_eq!(s.columns[2].min, Some(Value::Int(1)));
        assert_eq!(s.columns[2].max, Some(Value::Int(99)));
    }

    #[test]
    fn group_count_estimation() {
        let s = TableStats::collect(&table());
        assert_eq!(s.estimate_group_count(&[0]), 10);
        assert_eq!(s.estimate_group_count(&[1]), 3);
        // Independence estimate 10 × 3 = 30.
        assert_eq!(s.estimate_group_count(&[0, 1]), 30);
        // Capped by row count.
        assert_eq!(s.estimate_group_count(&[0, 2]), 100);
        assert_eq!(s.estimate_group_count(&[]), 1);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let s = TableStats::collect(&Table::empty(schema));
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns[0].distinct, 0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.estimate_group_count(&[0]), 0);
    }
}
