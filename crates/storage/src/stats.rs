//! Table statistics.
//!
//! Warehouse coordinators keep per-table statistics (row counts, column
//! ranges, distinct-value counts) as part of their distribution catalog.
//! Egil's cost-based plan selection (`skalla-planner::cost`) consumes these
//! to estimate group counts and per-round transfer volumes.

use std::collections::HashSet;

use skalla_types::Value;

use crate::table::Table;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest non-null value, if any non-null value exists.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Exact number of distinct non-null values.
    pub distinct: usize,
    /// Number of NULLs.
    pub null_count: usize,
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect exact statistics with one pass per column.
    ///
    /// Distinct counts are exact (hash-set based); at warehouse-catalog
    /// build time this is a one-off O(rows × columns) scan.
    pub fn collect(table: &Table) -> TableStats {
        let mut columns = Vec::with_capacity(table.schema().len());
        for c in 0..table.schema().len() {
            let col = table.column(c);
            let mut distinct: HashSet<Value> = HashSet::new();
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            let mut null_count = 0usize;
            for i in 0..table.len() {
                let v = col.get(i);
                if v.is_null() {
                    null_count += 1;
                    continue;
                }
                if min.as_ref().is_none_or(|m| v < *m) {
                    min = Some(v.clone());
                }
                if max.as_ref().is_none_or(|m| v > *m) {
                    max = Some(v.clone());
                }
                distinct.insert(v);
            }
            columns.push(ColumnStats {
                min,
                max,
                distinct: distinct.len(),
                null_count,
            });
        }
        TableStats {
            rows: table.len(),
            columns,
        }
    }

    /// Estimated number of distinct combinations of the given columns:
    /// the product of per-column distinct counts, capped by the row count
    /// (the standard independence assumption).
    pub fn estimate_group_count(&self, cols: &[usize]) -> usize {
        if cols.is_empty() {
            return 1;
        }
        let mut product: u128 = 1;
        for &c in cols {
            let d = self.columns.get(c).map_or(1, |s| s.distinct.max(1)) as u128;
            product = product.saturating_mul(d);
            if product >= self.rows as u128 {
                return self.rows;
            }
        }
        (product as usize).min(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::{DataType, Schema};

    fn table() -> Table {
        let schema = Schema::from_pairs([
            ("k", DataType::Int64),
            ("s", DataType::Utf8),
            ("n", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i % 10),
                    Value::str(["a", "b", "c"][(i % 3) as usize]),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                ]
            })
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn collects_exact_stats() {
        let s = TableStats::collect(&table());
        assert_eq!(s.rows, 100);
        assert_eq!(s.columns[0].distinct, 10);
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert_eq!(s.columns[0].null_count, 0);
        assert_eq!(s.columns[1].distinct, 3);
        assert_eq!(s.columns[1].min, Some(Value::str("a")));
        // 0, 7, 14, …, 98 are NULL: 15 of them.
        assert_eq!(s.columns[2].null_count, 15);
        assert_eq!(s.columns[2].distinct, 85);
        assert_eq!(s.columns[2].min, Some(Value::Int(1)));
        assert_eq!(s.columns[2].max, Some(Value::Int(99)));
    }

    #[test]
    fn group_count_estimation() {
        let s = TableStats::collect(&table());
        assert_eq!(s.estimate_group_count(&[0]), 10);
        assert_eq!(s.estimate_group_count(&[1]), 3);
        // Independence estimate 10 × 3 = 30.
        assert_eq!(s.estimate_group_count(&[0, 1]), 30);
        // Capped by row count.
        assert_eq!(s.estimate_group_count(&[0, 2]), 100);
        assert_eq!(s.estimate_group_count(&[]), 1);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let s = TableStats::collect(&Table::empty(schema));
        assert_eq!(s.rows, 0);
        assert_eq!(s.columns[0].distinct, 0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.estimate_group_count(&[0]), 0);
    }
}
