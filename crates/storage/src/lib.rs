#![warn(missing_docs)]

//! # skalla-storage
//!
//! Columnar storage for Skalla local data warehouses.
//!
//! Each Skalla *site* holds a partition of the conceptual fact relation in a
//! [`Table`]: an immutable-schema, append-only columnar store. The paper uses
//! AT&T's Daytona DBMS as the local warehouse engine; this crate (together
//! with the GMDJ evaluator in `skalla-gmdj`) is our from-scratch substitute.
//!
//! Modules:
//!
//! * [`mod@column`] — typed column vectors with null support.
//! * [`table`] — the columnar [`Table`], row accessors, filters, projections.
//! * [`partition`] — hash/range/value partitioning used to spread a fact
//!   relation across sites, plus extraction of per-partition value
//!   constraints (the `φᵢ` fed to the group-reduction analysis).
//! * [`index`] — hash indexes on key columns.
//! * [`catalog`] — a name → table map per site.
//! * [`sketch`] — per-partition cardinality + space-saving heavy-hitter
//!   sketches and the hot-partition fragment planner behind skew-aware
//!   round execution.
//! * [`segment`] — the persistent columnar segment store: compressed
//!   fixed-row-count segments (RLE/dictionary/raw) with per-segment
//!   zone-map footers, positioned-I/O readers, and the zone overlap
//!   checks behind out-of-core segment pruning. Every column chunk and
//!   the footer are CRC32C-sealed, and files publish atomically
//!   (tmp + fsync + rename).
//! * [`crc`] — hand-rolled std-only CRC32C, the block checksum.
//! * [`fault`] — seeded, deterministic disk-fault injection (bit-flips,
//!   torn writes, short reads, stale footers), the storage twin of
//!   `skalla-net::fault`.

pub mod catalog;
pub mod column;
pub mod crc;
pub mod fault;
pub mod index;
pub mod partition;
pub mod segment;
pub mod sketch;
pub mod stats;
pub mod table;

pub use catalog::Catalog;
pub use column::Column;
pub use crc::{crc32c, crc32c_append};
pub use fault::{disk_faults_for, DiskFaultGuard, DiskFaultPlan};
pub use index::HashIndex;
pub use partition::{
    partition_by_hash, partition_by_ranges, partition_by_values, partition_table_name,
    replicate_catalogs, PartFrag, Partitioning, ReplicaMap,
};
pub use segment::{
    write_segments, zone_may_contain_str, zone_may_overlap, SegmentFile, SegmentMeta,
    SegmentWriteSummary, SegmentWriter, DEFAULT_SEGMENT_ROWS,
};
pub use sketch::{load_imbalance, plan_splits, PartSketch, SpaceSaving};
pub use stats::{ColumnStats, TableStats};
pub use table::{Table, TableBuilder};
