//! Typed column vectors.

use std::sync::Arc;

use skalla_expr::compile::{ColSlice, ColumnBatch};
use skalla_types::{DataType, Result, SkallaError, Value};

/// The typed payload of a column.
#[derive(Debug, Clone, PartialEq)]
enum ColumnData {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<Arc<str>>),
    Bool(Vec<bool>),
}

/// A single column of a [`crate::Table`]: a typed vector plus an optional
/// null bitmap (absent when the column contains no nulls, which is the
/// common case for fact data).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    /// `nulls[i]` is `true` when row `i` is NULL. Lazily materialized.
    nulls: Option<Vec<bool>>,
}

impl Column {
    /// An empty column of type `dtype`.
    pub fn new(dtype: DataType) -> Column {
        let data = match dtype {
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        };
        Column { data, nulls: None }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Column {
        let data = match dtype {
            DataType::Int64 => ColumnData::Int64(Vec::with_capacity(cap)),
            DataType::Float64 => ColumnData::Float64(Vec::with_capacity(cap)),
            DataType::Utf8 => ColumnData::Utf8(Vec::with_capacity(cap)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
        };
        Column { data, nulls: None }
    }

    /// Build an Int64 column from values.
    pub fn from_i64(values: Vec<i64>) -> Column {
        Column {
            data: ColumnData::Int64(values),
            nulls: None,
        }
    }

    /// Build a Float64 column from values.
    pub fn from_f64(values: Vec<f64>) -> Column {
        Column {
            data: ColumnData::Float64(values),
            nulls: None,
        }
    }

    /// Build a Utf8 column from values.
    pub fn from_strs<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Column {
        Column {
            data: ColumnData::Utf8(values.into_iter().map(|s| Arc::from(s.as_ref())).collect()),
            nulls: None,
        }
    }

    /// Build a Utf8 column from already-interned strings (no reallocation;
    /// used by the segment decoder so dictionary entries stay shared).
    pub fn from_arc_strs(values: Vec<Arc<str>>) -> Column {
        Column {
            data: ColumnData::Utf8(values),
            nulls: None,
        }
    }

    /// Build a Bool column from values.
    pub fn from_bools(values: Vec<bool>) -> Column {
        Column {
            data: ColumnData::Bool(values),
            nulls: None,
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// `true` if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n[i])
    }

    /// The value at row `i` (cloned).
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int64(v) => Value::Int(v[i]),
            ColumnData::Float64(v) => Value::Float(v[i]),
            ColumnData::Utf8(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Append a value, which must match the column type or be NULL.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let idx = self.len();
        match (&mut self.data, &value) {
            (ColumnData::Int64(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Float64(v), Value::Float(x)) => v.push(*x),
            // Int literals are accepted into float columns for convenience.
            (ColumnData::Float64(v), Value::Int(x)) => v.push(*x as f64),
            (ColumnData::Utf8(v), Value::Str(s)) => v.push(s.clone()),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(*x),
            (_, Value::Null) => {
                self.push_default();
                let nulls = self.nulls.get_or_insert_with(|| vec![false; idx]);
                nulls.resize(idx, false);
                nulls.push(true);
                return Ok(());
            }
            (_, v) => {
                return Err(SkallaError::type_error(format!(
                    "cannot append {v} to {} column",
                    self.data_type()
                )))
            }
        }
        if let Some(nulls) = &mut self.nulls {
            nulls.push(false);
        }
        Ok(())
    }

    fn push_default(&mut self) {
        match &mut self.data {
            ColumnData::Int64(v) => v.push(0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Utf8(v) => v.push(Arc::from("")),
            ColumnData::Bool(v) => v.push(false),
        }
    }

    /// Direct access to Int64 data (fast path for aggregation), `None` if
    /// the column has a different type or contains nulls.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match (&self.data, &self.nulls) {
            (ColumnData::Int64(v), None) => Some(v),
            _ => None,
        }
    }

    /// Direct access to Float64 data, `None` on type mismatch or nulls.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match (&self.data, &self.nulls) {
            (ColumnData::Float64(v), None) => Some(v),
            _ => None,
        }
    }

    /// Raw Int64 storage including the default (`0`) slots that stand in
    /// for NULL rows — pair with [`Column::null_mask`] to reconstruct the
    /// column exactly. `None` on type mismatch only (unlike
    /// [`Column::as_i64_slice`], nulls do not disable this accessor).
    pub fn raw_i64s(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// Raw Float64 storage including NULL default slots (`0.0`); see
    /// [`Column::raw_i64s`].
    pub fn raw_f64s(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// Raw Utf8 storage including NULL default slots (`""`); see
    /// [`Column::raw_i64s`].
    pub fn raw_strs(&self) -> Option<&[Arc<str>]> {
        match &self.data {
            ColumnData::Utf8(v) => Some(v),
            _ => None,
        }
    }

    /// Raw Bool storage including NULL default slots (`false`); see
    /// [`Column::raw_i64s`].
    pub fn raw_bools(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The null bitmap (`mask[i]` = row `i` is NULL), absent when the
    /// column is null-free.
    pub fn null_mask(&self) -> Option<&[bool]> {
        self.nulls.as_deref()
    }

    /// Install a null bitmap over the existing raw storage (the inverse of
    /// `raw_*` + [`Column::null_mask`], used by the segment decoder). The
    /// mask must match the row count; an all-false mask is dropped so the
    /// reconstructed column is bit-identical to a never-null original.
    pub fn with_null_mask(mut self, mask: Option<Vec<bool>>) -> Result<Column> {
        match mask {
            None => {
                self.nulls = None;
            }
            Some(m) => {
                if m.len() != self.len() {
                    return Err(SkallaError::schema(format!(
                        "null mask of {} entries over column of {} rows",
                        m.len(),
                        self.len()
                    )));
                }
                self.nulls = Some(m).filter(|m| m.iter().any(|&b| b));
            }
        }
        Ok(self)
    }

    /// A zero-copy [`ColumnBatch`] view of rows `start..start + len`, for
    /// the compiled kernel path. The null mask is `None` when the whole
    /// column is null-free.
    pub fn batch(&self, start: usize, len: usize) -> ColumnBatch<'_> {
        let end = start + len;
        let data = match &self.data {
            ColumnData::Int64(v) => ColSlice::I64(&v[start..end]),
            ColumnData::Float64(v) => ColSlice::F64(&v[start..end]),
            ColumnData::Utf8(v) => ColSlice::Str(&v[start..end]),
            ColumnData::Bool(v) => ColSlice::Bool(&v[start..end]),
        };
        ColumnBatch {
            data,
            nulls: self.nulls.as_ref().map(|n| &n[start..end]),
        }
    }

    /// A new column containing the contiguous rows `start..end` (cheap
    /// typed-vector slice copies; no per-value dispatch).
    pub fn slice_rows(&self, start: usize, end: usize) -> Column {
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(v[start..end].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[start..end].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[start..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
        };
        let nulls = self
            .nulls
            .as_ref()
            .map(|n| n[start..end].to_vec())
            .filter(|n| n.iter().any(|&b| b));
        Column { data, nulls }
    }

    /// Append the contiguous rows `start..end` of `other`, which must
    /// have the same type (typed-vector bulk copies; no per-value
    /// dispatch).
    pub fn append_range(&mut self, other: &Column, start: usize, end: usize) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(SkallaError::schema("append of mismatched column types"));
        }
        if start > end || end > other.len() {
            return Err(SkallaError::exec(format!(
                "append range {start}..{end} out of bounds for column of {} rows",
                other.len()
            )));
        }
        let old_len = self.len();
        let added = end - start;
        let other_has_nulls = other
            .nulls
            .as_ref()
            .is_some_and(|n| n[start..end].iter().any(|&b| b));
        if self.nulls.is_some() || other_has_nulls {
            let nulls = self.nulls.get_or_insert_with(|| vec![false; old_len]);
            match &other.nulls {
                Some(n) => nulls.extend_from_slice(&n[start..end]),
                None => nulls.resize(old_len + added, false),
            }
        }
        match (&mut self.data, &other.data) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(&b[start..end]),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(&b[start..end]),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend_from_slice(&b[start..end]),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(&b[start..end]),
            _ => unreachable!("types checked above"),
        }
        Ok(())
    }

    /// A new column containing the rows at `indices`.
    pub fn take(&self, indices: &[u32]) -> Column {
        let mut out = Column::with_capacity(self.data_type(), indices.len());
        for &i in indices {
            // push of a matching value cannot fail.
            out.push(self.get(i as usize)).expect("same-typed push");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_push_and_get() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(7)).unwrap();
        c.push(Value::Int(-1)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(7));
        assert_eq!(c.get(1), Value::Int(-1));
        assert_eq!(c.data_type(), DataType::Int64);
        assert!(!c.is_empty());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Utf8);
        assert!(c.push(Value::Int(1)).is_err());
        assert!(c.push(Value::str("ok")).is_ok());
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::new(DataType::Float64);
        c.push(Value::Int(2)).unwrap();
        c.push(Value::Float(0.5)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
        assert_eq!(c.as_f64_slice().unwrap(), &[2.0, 0.5]);
    }

    #[test]
    fn nulls_lazily_materialize() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(1)).unwrap();
        assert!(c.as_i64_slice().is_some());
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(3));
        assert!(c.is_null(1));
        assert!(!c.is_null(2));
        // Fast path unavailable once a null exists.
        assert!(c.as_i64_slice().is_none());
    }

    #[test]
    fn from_constructors() {
        assert_eq!(Column::from_i64(vec![1, 2]).len(), 2);
        assert_eq!(Column::from_f64(vec![1.0]).data_type(), DataType::Float64);
        let c = Column::from_strs(["a", "b"]);
        assert_eq!(c.get(1), Value::str("b"));
        let c = Column::from_bools(vec![true]);
        assert_eq!(c.get(0), Value::Bool(true));
    }

    #[test]
    fn take_gathers_rows() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 0, 0]);
        assert_eq!(t.get(0), Value::Int(40));
        assert_eq!(t.get(1), Value::Int(10));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn take_preserves_nulls() {
        let mut c = Column::new(DataType::Utf8);
        c.push(Value::str("x")).unwrap();
        c.push(Value::Null).unwrap();
        let t = c.take(&[1, 0]);
        assert_eq!(t.get(0), Value::Null);
        assert_eq!(t.get(1), Value::str("x"));
    }
}
